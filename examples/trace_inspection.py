"""Generate, persist, and characterize a workload trace.

Run with::

    python examples/trace_inspection.py

Shows the trace tooling a researcher would use before any simulation:
generate a calibrated workload, save/load it, and reproduce the paper's
three characterization insights (Figure 5 similarity/reuse, Figure 6's
chunk-size ratio curve, Table 3 locality) directly from the trace.
"""

from __future__ import annotations

import statistics
import tempfile
from pathlib import Path

from repro import (
    APP_CATALOG,
    TraceGenerator,
    chunk_compress,
    get_compressor,
    load_trace,
    save_trace,
)
from repro.trace import (
    consecutive_probability,
    hot_similarity_series,
    reused_fraction_series,
)
from repro.units import KIB


def main() -> None:
    trace = TraceGenerator(seed=2025).generate_workload(
        profiles=APP_CATALOG[:3], n_sessions=5
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.trace"
        save_trace(trace, path)
        print(f"saved {path.stat().st_size // 1024} KiB trace; reloading...")
        trace = load_trace(path)

    print("\nInsight 1 — hot data is similar across relaunches:")
    for app in trace.apps:
        similarity = statistics.mean(hot_similarity_series(app))
        reuse = statistics.mean(reused_fraction_series(app))
        print(f"  {app.name:10s} similarity={similarity:.2f} reuse={reuse:.2f}")

    print("\nInsight 2 — bigger chunks compress better (LZO on YouTube):")
    codec = get_compressor("lzo")
    sample = b"".join(r.payload for r in trace.app("YouTube").pages[:96])
    for chunk_size in (128, 1 * KIB, 8 * KIB, 64 * KIB):
        ratio = chunk_compress(codec, sample, chunk_size).ratio
        label = f"{chunk_size // KIB}K" if chunk_size >= KIB else f"{chunk_size}B"
        print(f"  chunk {label:>4s}: ratio {ratio:.2f}")

    print("\nInsight 3 — relaunch accesses run through consecutive pages:")
    for app in trace.apps:
        index = {record.pfn: i for i, record in enumerate(app.pages)}
        p2_values = [
            consecutive_probability([index[p] for p in s.relaunch_pfns], 2)
            for s in app.sessions
        ]
        print(f"  {app.name:10s} P(2 consecutive) = {statistics.mean(p2_values):.2f}")


if __name__ == "__main__":
    main()
