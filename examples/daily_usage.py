"""A day of app switching: latency, CPU, energy, and flash wear.

Run with::

    python examples/daily_usage.py

The paper motivates Ariadne with users switching apps >100 times a day.
This example replays a switching scenario under each scheme and reports
the metrics a phone vendor would care about: relaunch latency
distribution, reclaim CPU, scenario energy, and NAND bytes written
(flash lifetime).
"""

from __future__ import annotations

import statistics

from repro import (
    APP_CATALOG,
    AriadneConfig,
    RelaunchScenario,
    TraceGenerator,
    make_system,
    pixel7_platform,
)
from repro.sim import run_light_scenario


def main() -> None:
    trace = TraceGenerator(seed=11).generate_workload(
        profiles=APP_CATALOG[:4], n_sessions=4
    )
    platform = pixel7_platform(dram_gb=1.05)

    print(
        f"{'scheme':28s} {'p50 ms':>7s} {'p95 ms':>7s} {'kswapd s':>9s} "
        f"{'energy J':>9s} {'NAND MB':>8s}"
    )
    print("-" * 75)
    for scheme_name, config in (
        ("DRAM", None),
        ("ZRAM", None),
        ("SWAP", None),
        ("Ariadne", AriadneConfig(scenario=RelaunchScenario.EHL)),
    ):
        system = make_system(
            scheme_name, trace, platform=platform, ariadne_config=config
        )
        result = run_light_scenario(system, duration_s=30.0)
        latencies = sorted(r.latency_ms for r in result.relaunches)
        p50 = statistics.median(latencies)
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        nand_mb = system.ctx.flash_device.nand_bytes_written / (1024 * 1024)
        print(
            f"{system.scheme.name:28s} {p50:7.1f} {p95:7.1f}"
            f" {result.kswapd_cpu_ns / 1e9:9.2f}"
            f" {result.energy.total_j:9.1f} {nand_mb:8.1f}"
        )
    print()
    print("SWAP trades CPU for flash wear and slow relaunches; ZRAM trades")
    print("flash wear for CPU; Ariadne takes the good half of both trades.")


if __name__ == "__main__":
    main()
