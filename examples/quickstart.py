"""Quickstart: compare Ariadne against stock ZRAM on one workload.

Run with::

    python examples/quickstart.py

Builds a three-app synthetic workload, replays the same relaunch under
the ZRAM baseline and under Ariadne, and prints where every page came
from (DRAM / zpool / flash / the PreDecomp staging buffer).
"""

from __future__ import annotations

from repro import (
    APP_CATALOG,
    AriadneConfig,
    RelaunchScenario,
    TraceGenerator,
    make_system,
    pixel7_platform,
)


def main() -> None:
    # One deterministic workload over four of the paper's apps.
    trace = TraceGenerator(seed=7).generate_workload(
        profiles=APP_CATALOG[:4], n_sessions=3
    )
    # A platform with the paper's ~1.9x memory oversubscription.
    platform = pixel7_platform(dram_gb=1.04)

    print("scheme                        latency    dram  zpool  flash  staged")
    print("-" * 72)
    for scheme_name, config in (
        ("DRAM", None),
        ("ZRAM", None),
        ("Ariadne", AriadneConfig(scenario=RelaunchScenario.EHL)),
        ("Ariadne", AriadneConfig(scenario=RelaunchScenario.AL)),
    ):
        system = make_system(
            scheme_name, trace, platform=platform, ariadne_config=config
        )
        system.launch_all()
        # Background the target the way the paper does, then measure.
        scenario = config.scenario if config else (
            None if scheme_name == "DRAM" else RelaunchScenario.AL
        )
        system.prepare_relaunch("YouTube", scenario)
        system.relaunch("Twitter")  # restore memory pressure
        result = system.relaunch("YouTube", 1)
        print(
            f"{system.scheme.name:28s}  {result.latency_ms:6.1f}ms"
            f"  {result.pages_from_dram:5d} {result.pages_from_zpool:5d}"
            f" {result.pages_from_flash:5d} {result.pages_from_staging:6d}"
        )
    print()
    print("DRAM is the paper's optimistic lower bound; Ariadne should sit")
    print("close to it while ZRAM pays decompression + on-demand compression.")


if __name__ == "__main__":
    main()
