"""Tune AdaptiveComp's chunk sizes for a workload.

Run with::

    python examples/chunk_size_tuning.py

Sweeps the paper's Table 5 parameter space (SmallSize x MediumSize x
LargeSize) over one workload and prints the relaunch-latency /
compression-ratio trade-off, reproducing the Section 6.3 sensitivity
reasoning as a practical tuning workflow.
"""

from __future__ import annotations

from repro import (
    APP_CATALOG,
    AriadneConfig,
    RelaunchScenario,
    TraceGenerator,
    make_system,
    pixel7_platform,
)
from repro.core.config import LARGE_SIZES, MEDIUM_SIZES, SMALL_SIZES


def evaluate(config: AriadneConfig, trace, platform) -> tuple[float, float]:
    """(relaunch latency ms, compression ratio) for one configuration."""
    system = make_system(
        "Ariadne", trace, platform=platform, ariadne_config=config
    )
    system.launch_all()
    system.prepare_relaunch("YouTube", config.scenario)
    system.relaunch("Twitter")
    result = system.relaunch("YouTube", 1)
    counters = system.ctx.counters
    stored = max(1, counters.get("bytes_stored"))
    ratio = counters.get("bytes_original") / stored
    return result.latency_ms, ratio


def main() -> None:
    trace = TraceGenerator(seed=3).generate_workload(
        profiles=APP_CATALOG[:3], n_sessions=3
    )
    platform = pixel7_platform(dram_gb=0.78)

    rows = []
    for small in SMALL_SIZES:
        for medium in MEDIUM_SIZES:
            for large in LARGE_SIZES:
                config = AriadneConfig(
                    small_size=small, medium_size=medium, large_size=large,
                    scenario=RelaunchScenario.AL,
                )
                latency_ms, ratio = evaluate(config, trace, platform)
                rows.append((config.label, latency_ms, ratio))

    print(f"{'configuration':30s} {'latency ms':>11s} {'ratio':>6s}")
    print("-" * 50)
    for label, latency_ms, ratio in sorted(rows, key=lambda r: r[1]):
        print(f"{label:30s} {latency_ms:11.1f} {ratio:6.2f}")

    fastest = min(rows, key=lambda r: r[1])
    densest = max(rows, key=lambda r: r[2])
    print()
    print(f"fastest relaunch : {fastest[0]} ({fastest[1]:.1f} ms)")
    print(f"best ratio       : {densest[0]} ({densest[2]:.2f}x)")
    print("Section 6.3's conclusion holds: small hot chunks buy latency,")
    print("large cold chunks buy ratio, and the defaults balance the two.")


if __name__ == "__main__":
    main()
