"""Codec microbenchmarks: wall-clock throughput of this repository's
pure-Python codecs (complementary to the modeled Pixel 7 latencies)."""

from __future__ import annotations

import random

import pytest

from repro.workload import PayloadGenerator, profile_by_name
from repro.compression import get_compressor


@pytest.fixture(scope="module")
def anon_sample() -> bytes:
    generator = PayloadGenerator(
        profile_by_name("YouTube"), random.Random(1234)
    )
    return b"".join(generator.generate_page()[0] for _ in range(32))


@pytest.mark.parametrize("codec_name", ["lz4", "lzo", "bdi"])
def test_bench_compress_throughput(benchmark, codec_name, anon_sample):
    codec = get_compressor(codec_name)
    blob = benchmark(codec.compress, anon_sample)
    assert len(blob) < len(anon_sample)


@pytest.mark.parametrize("codec_name", ["lz4", "lzo", "bdi"])
def test_bench_decompress_throughput(benchmark, codec_name, anon_sample):
    codec = get_compressor(codec_name)
    blob = codec.compress(anon_sample)
    restored = benchmark(codec.decompress, blob, len(anon_sample))
    assert restored == anon_sample


def test_bench_payload_generation(benchmark):
    generator = PayloadGenerator(
        profile_by_name("Twitter"), random.Random(42)
    )
    payload, _ = benchmark(generator.generate_page)
    assert len(payload) == 4096
