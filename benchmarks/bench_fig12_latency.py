"""Figure 12: trace-fed compression/decompression latency per scheme.

Paper shape (LZO): decompression latency drops ~60% (YouTube/Twitter) to
~90% (BangDream) under Ariadne-1K-2K-16K.
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig12(benchmark, request):
    result = run_measured(benchmark, request, "fig12")
    print()
    print(result.render())
    ehl = "Ariadne-EHL-1K-2K-16K"
    apps = {p.app for p in result.profiles}
    for app in apps:
        assert result.decomp_reduction(ehl, app) > 0.4
    # EHL (hot uncompressed) decompresses less than AL (hot at SmallSize).
    al = "Ariadne-AL-1K-2K-16K"
    for app in apps:
        assert result.profile(ehl, app).decomp_ms < result.profile(al, app).decomp_ms
