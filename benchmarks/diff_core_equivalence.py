"""CI gate: the object and columnar page-metadata cores must produce
bit-identical experiment outcomes.

Compares two quick-suite JSON documents (``python -m repro.experiments
all --quick --json``), one produced under ``REPRO_CORE=object`` and one
under ``REPRO_CORE=columnar``.  Every measured number — relaunch
latencies, CPU ledgers, compression ratios, counters, rendered tables —
must match exactly: the columnar core is a representation change, and
the equivalence contract (docs in src/repro/mem/columnar.py) says the
numbers may never notice it.

One normalization applies before comparing: fig6 is the only
``cacheable=False`` experiment, and its ``wall_comp_s``/``wall_decomp_s``
fields (and the two trailing wall columns of its rendered table) are
*live host wall clocks*, legitimately different on every run.  Those are
zeroed on both sides; everything else is compared raw.

Usage::

    python benchmarks/diff_core_equivalence.py columnar.json object.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Live wall-clock fields in fig6's points — the only non-deterministic
#: values in the whole quick-suite document.
_LIVE_WALL_KEYS = frozenset({"wall_comp_s", "wall_decomp_s"})

#: The two trailing columns of fig6's rendered table are those same live
#: walls, formatted; blank them without disturbing column structure.
_RENDERED_WALL = re.compile(r"\d+\.\d+ +\d+\.\d+ +$", re.M)


def normalize(doc: dict) -> dict:
    """Zero fig6's live wall clocks, everywhere they appear."""

    def walk(node: object) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if key in _LIVE_WALL_KEYS:
                    node[key] = 0.0
                elif (
                    key == "rendered"
                    and isinstance(value, str)
                    and "chunk-size sweep" in value
                ):
                    node[key] = _RENDERED_WALL.sub("W W", value)
                else:
                    walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(doc)
    return doc


def diff(a: dict, b: dict, label_a: str, label_b: str) -> list[str]:
    """Human-oriented mismatch report: which experiments differ."""
    failures = []
    exps_a = {e["id"]: e for e in a.get("experiments", [])}
    exps_b = {e["id"]: e for e in b.get("experiments", [])}
    if exps_a.keys() != exps_b.keys():
        failures.append(
            f"experiment sets differ: {sorted(exps_a)} vs {sorted(exps_b)}"
        )
    for exp_id in sorted(exps_a.keys() & exps_b.keys()):
        if exps_a[exp_id] != exps_b[exp_id]:
            failures.append(
                f"{exp_id}: outcomes differ between {label_a} and {label_b}"
            )
    # Anything outside the experiments list (errors, quick flag).
    rest_a = {k: v for k, v in a.items() if k != "experiments"}
    rest_b = {k: v for k, v in b.items() if k != "experiments"}
    if rest_a != rest_b:
        failures.append(f"document envelopes differ: {rest_a} vs {rest_b}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("columnar", help="quick-suite JSON from REPRO_CORE=columnar")
    parser.add_argument("object", help="quick-suite JSON from REPRO_CORE=object")
    args = parser.parse_args()
    with open(args.columnar) as f:
        doc_columnar = normalize(json.load(f))
    with open(args.object) as f:
        doc_object = normalize(json.load(f))
    failures = diff(doc_columnar, doc_object, "columnar", "object")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    n = len(doc_columnar.get("experiments", []))
    print(
        f"{n} experiments bit-identical between the columnar and object "
        "cores (fig6 live wall clocks normalized)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
