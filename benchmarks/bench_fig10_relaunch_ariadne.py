"""Figure 10: the headline result — Ariadne cuts relaunch latency ~50%
versus ZRAM and lands near the DRAM lower bound."""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig10(benchmark, request):
    result = run_measured(benchmark, request, "fig10")
    print()
    print(result.render())
    assert result.ariadne_reduction_vs_zram > 0.35   # paper: ~50%
    assert result.ariadne_over_dram < 1.35           # paper: <= 1.10x
    # Every Ariadne config beats ZRAM for every app.
    zram = result.latency_ms["ZRAM"]
    for column in result.columns:
        if column.startswith("Ariadne"):
            for app, latency in result.latency_ms[column].items():
                assert latency < zram[app]
