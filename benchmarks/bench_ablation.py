"""Ablation study: disable each Ariadne technique in turn.

Not a paper figure, but the design-choice check DESIGN.md calls out:
HotnessOrg, AdaptiveComp (size adaptivity), PreDecomp, and cold
writeback should each contribute to the relaunch-latency win.
"""

from __future__ import annotations

import statistics

from repro.core import AriadneConfig, RelaunchScenario
from repro.experiments.common import (
    FIGURE_APPS,
    build,
    measured_relaunch,
    render_table,
    workload_trace,
)
from repro.units import KIB
from conftest import run_once

VARIANTS: dict[str, AriadneConfig] = {
    "full": AriadneConfig(scenario=RelaunchScenario.AL),
    "no-hotnessorg": AriadneConfig(
        scenario=RelaunchScenario.AL, hotness_org_enabled=False
    ),
    "no-adaptivecomp": AriadneConfig(
        # Uniform one-page chunks everywhere: size adaptivity off.
        small_size=4 * KIB, medium_size=4 * KIB, large_size=4 * KIB,
        scenario=RelaunchScenario.AL,
    ),
    "no-predecomp": AriadneConfig(
        scenario=RelaunchScenario.AL, predecomp_enabled=False
    ),
    "no-writeback": AriadneConfig(
        scenario=RelaunchScenario.AL, writeback_enabled=False
    ),
}


def run_ablation() -> dict[str, float]:
    """Mean measured relaunch latency (ms) per Ariadne variant."""
    trace = workload_trace(n_apps=5)
    apps = FIGURE_APPS[:3]
    means: dict[str, float] = {}
    for label, config in VARIANTS.items():
        system = build("Ariadne", trace, config)
        system.launch_all()
        latencies = []
        for target in apps:
            pressure = [a for a in apps if a != target][:2]
            result = measured_relaunch(
                system, target, 1, config.scenario, pressure
            )
            latencies.append(result.latency_ms)
        means[label] = statistics.mean(latencies)
    return means


def test_bench_ablation(benchmark):
    means = run_once(benchmark, run_ablation)
    print()
    print(render_table(
        "Ablation: mean relaunch latency by disabled technique",
        ["Variant", "Latency (ms)"],
        [[label, f"{value:.1f}"] for label, value in means.items()],
    ))
    full = means["full"]
    # Each disabled technique should cost latency (or at minimum never
    # help); hotness-blindness must hurt the most.
    assert means["no-hotnessorg"] > full * 1.05
    assert means["no-predecomp"] >= full * 0.98
    assert means["no-adaptivecomp"] >= full * 0.98
