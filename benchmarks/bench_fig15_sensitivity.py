"""Figure 15: chunk-size sensitivity — very large cold chunks maximize
ratio, very small chunks minimize latency at a ratio cost."""

from __future__ import annotations

from conftest import run_measured

BIG = "Ariadne-AL-1K-4K-64K"
SMALL = "Ariadne-AL-256-1K-4K"


def test_bench_fig15(benchmark, request):
    result = run_measured(benchmark, request, "fig15")
    print()
    print(result.render())
    # The 64K-cold config buys the best ratio.
    assert result.mean_ratio(BIG) > result.mean_ratio("ZRAM")
    assert result.mean_ratio(BIG) > result.mean_ratio(SMALL)
    # The tiny-chunk config decompresses fastest but compresses worst.
    for app_profiles in zip(result.by_scheme(SMALL), result.by_scheme(BIG)):
        small_p, big_p = app_profiles
        assert small_p.decomp_ms < big_p.decomp_ms
