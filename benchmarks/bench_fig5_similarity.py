"""Figure 5: hot-data similarity (~70%) and reuse (~98%) across
consecutive relaunches."""

from __future__ import annotations

import pytest

from conftest import run_measured


def test_bench_fig5(benchmark, request):
    result = run_measured(benchmark, request, "fig5")
    print()
    print(result.render())
    assert result.mean_similarity == pytest.approx(0.70, abs=0.06)
    assert result.mean_reuse == pytest.approx(0.98, abs=0.03)
