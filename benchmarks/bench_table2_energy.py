"""Table 2: scenario energy under DRAM / ZRAM / SWAP.

Paper shape: ZRAM costs the most energy (+12.2% light / +19.5% heavy vs
DRAM); SWAP sits close to DRAM.
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_table2(benchmark, request):
    result = run_measured(benchmark, request, "table2")
    print()
    print(result.render())
    for workload in ("light", "heavy"):
        zram = result.normalized(workload, "ZRAM")
        swap = result.normalized(workload, "SWAP")
        assert zram > 1.02          # ZRAM visibly above DRAM
        assert zram > swap          # and above SWAP (paper ordering)
        assert swap < 1.10          # SWAP stays near DRAM
