"""Figure 4: hotness mix per compression-order part under ZRAM.

Paper shape: part 0 (the first-compressed data) already contains a
significant share of hot data — LRU is blind to hotness.
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig4(benchmark, request):
    result = run_measured(benchmark, request, "fig4")
    print()
    print(result.render())
    # Every app's first part contains hot data (the paper's headline).
    assert all(
        result.hot_share_in_first_part(app) > 0.3 for app in result.mixes
    )
