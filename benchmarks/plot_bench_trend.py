"""Assemble the CI wall-time trend from per-commit smoke artifacts.

Every CI run uploads ``BENCH_scenario-<sha>`` containing one
``BENCH_scenario.json`` (see ``benchmarks/smoke_scenario.py``).  Download
a batch of them (``gh run download`` / the Actions UI) into one
directory and point this script at it::

    python benchmarks/plot_bench_trend.py --artifacts ./artifacts \
        --out-md BENCH_trend.md --out-json BENCH_trend.json

The script discovers every artifact (a ``BENCH_scenario-<sha>``
directory or a ``BENCH_scenario-<sha>.json`` file), orders the commits
by ``git log`` history when the repo knows them (falling back to file
mtime for shas from other branches), and emits:

- a **markdown table** with an ASCII spark bar per commit — the
  at-a-glance trend line the ROADMAP asked for;
- a **JSON document** with the raw per-commit rows for downstream
  tooling (dashboards, regression bisection).

A correctness column flags any commit whose simulated echoes
(``simulated_wall_ns`` etc.) differ from the committed baseline —
a perf trend is only meaningful over bit-identical behavior.

Dependency-free by design (stdlib + ``git`` if available): CI and
laptops can both run it.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

#: Echo fields that must stay bit-identical for the trend to be
#: comparable (mirrors benchmarks/check_bench_regression.py).
ECHO_FIELDS = (
    "simulated_wall_ns",
    "relaunches",
    "compress_ops",
    "kswapd_cpu_ns",
)

_ARTIFACT_RE = re.compile(r"BENCH_scenario-(?P<sha>[0-9a-f]{7,40})(?:\.json)?$")


def discover_artifacts(root: Path) -> dict[str, Path]:
    """Map sha -> artifact JSON path under ``root``.

    Accepts both the downloaded-directory layout
    (``BENCH_scenario-<sha>/BENCH_scenario.json``) and flat renamed
    files (``BENCH_scenario-<sha>.json``).
    """
    found: dict[str, Path] = {}
    for entry in sorted(root.iterdir()):
        match = _ARTIFACT_RE.match(entry.name)
        if match is None:
            continue
        sha = match.group("sha")
        if entry.is_dir():
            payload = entry / "BENCH_scenario.json"
            if payload.is_file():
                found[sha] = payload
        elif entry.suffix == ".json":
            found[sha] = entry
    return found


def git_history_order(shas: list[str]) -> dict[str, int]:
    """Position of each sha in ``git log`` (older = smaller), when known."""
    try:
        out = subprocess.run(
            ["git", "log", "--format=%H"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent.parent,
        ).stdout.split()
    except (OSError, subprocess.CalledProcessError):
        return {}
    # git log is newest-first; invert so older commits sort first.
    position = {full: len(out) - index for index, full in enumerate(out)}
    order: dict[str, int] = {}
    for sha in shas:
        for full, pos in position.items():
            if full.startswith(sha):
                order[sha] = pos
                break
    return order


def load_rows(artifacts: dict[str, Path], baseline: dict | None) -> list[dict]:
    """One trend row per artifact, oldest first."""
    order = git_history_order(list(artifacts))
    rows = []
    for sha, path in artifacts.items():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        echoes_ok = baseline is None or all(
            payload.get(field) == baseline.get(field) for field in ECHO_FIELDS
        )
        # Commits the local repo knows sort by history position; unknown
        # shas (other branches, shallow clones) fall back to file mtime
        # *after* the known history — they must never displace the
        # "vs first" baseline row.
        sort_key = (
            (0, order[sha]) if sha in order else (1, path.stat().st_mtime)
        )
        rows.append(
            {
                "sha": sha,
                "wall_time_s": payload.get("wall_time_s"),
                "python": payload.get("python"),
                "machine": payload.get("machine"),
                "cpus": payload.get("cpus"),
                "echoes_match_baseline": echoes_ok,
                "sort_key": sort_key,
            }
        )
    rows.sort(key=lambda row: row["sort_key"])
    for row in rows:
        del row["sort_key"]
    return rows


def spark_bar(value: float, maximum: float, width: int = 30) -> str:
    """A proportional ASCII bar (the 'plot' in plot_bench_trend)."""
    if maximum <= 0:
        return ""
    filled = max(1, round(width * value / maximum))
    return "#" * filled


def render_markdown(rows: list[dict]) -> str:
    """The trend as a markdown table with spark bars."""
    lines = [
        "# Smoke-scenario wall-time trend",
        "",
        "One row per CI commit artifact, oldest first.  `echoes` flags",
        "whether the run's simulated numbers matched the committed",
        "baseline (a perf trend is only comparable over bit-identical",
        "behavior).",
        "",
        "| commit | wall (s) | vs first | echoes | trend |",
        "|---|---|---|---|---|",
    ]
    timed = [row for row in rows if row["wall_time_s"] is not None]
    slowest = max((row["wall_time_s"] for row in timed), default=0.0)
    first = timed[0]["wall_time_s"] if timed else None
    for row in rows:
        wall = row["wall_time_s"]
        if wall is None:
            lines.append(f"| `{row['sha'][:9]}` | ? | ? | ? | |")
            continue
        delta = f"{(wall / first - 1.0):+.0%}" if first else "n/a"
        echoes = "ok" if row["echoes_match_baseline"] else "**DRIFT**"
        lines.append(
            f"| `{row['sha'][:9]}` | {wall:.3f} | {delta} | {echoes} "
            f"| `{spark_bar(wall, slowest)}` |"
        )
    if not rows:
        lines.append("| _no artifacts found_ | | | | |")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts",
        type=Path,
        required=True,
        help="directory holding downloaded BENCH_scenario-<sha> artifacts",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "BENCH_baseline.json",
        help="committed baseline for the correctness-echo column",
    )
    parser.add_argument("--out-md", type=Path, default=Path("BENCH_trend.md"))
    parser.add_argument("--out-json", type=Path, default=Path("BENCH_trend.json"))
    args = parser.parse_args()

    if not args.artifacts.is_dir():
        print(f"not a directory: {args.artifacts}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline.is_file():
        baseline = json.loads(args.baseline.read_text())
    artifacts = discover_artifacts(args.artifacts)
    rows = load_rows(artifacts, baseline)

    markdown = render_markdown(rows)
    args.out_md.write_text(markdown)
    args.out_json.write_text(
        json.dumps({"rows": rows}, indent=2, sort_keys=True) + "\n"
    )
    print(markdown)
    print(f"[{len(rows)} commits -> {args.out_md} + {args.out_json}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
