"""Table 1: anonymous data volume at 10 s / 5 min per application."""

from __future__ import annotations

import pytest

from conftest import run_measured


def test_bench_table1(benchmark, request):
    result = run_measured(benchmark, request, "table1")
    print()
    print(result.render())
    for row in result.rows:
        assert row.measured_10s_mb == pytest.approx(row.paper_10s_mb, abs=2.0)
        assert row.measured_5min_mb == pytest.approx(row.paper_5min_mb, abs=2.0)
