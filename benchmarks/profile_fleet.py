"""Fleet-tier throughput profiling: devices/s, amortization counters,
and the aggregator's memory bound.

The fleet's performance story is amortization plus streaming: traces
memoize per app-mix signature (not per device), compressed sizes come
from the shared size memo, and the aggregate a shard ships is fixed
size no matter how many devices fold into it.  This harness runs a
device range in-process and prints the counter header CI publishes —
the first numbers to look at before profiling per-function rows:

- ``devices/s`` — end-to-end population throughput;
- ``trace memo`` — hit/miss split of the per-worker trace cache (the
  "construct once per worker, not once per device" claim);
- ``aggregate bytes`` — pickled size of the final merged aggregate,
  which must stay flat as the fleet grows;
- ``reservoir/buckets`` — the constants that enforce that bound.

Examples::

    PYTHONPATH=src python benchmarks/profile_fleet.py
    PYTHONPATH=src python benchmarks/profile_fleet.py --devices 500
    PYTHONPATH=src python benchmarks/profile_fleet.py --devices 200 --profile
"""

from __future__ import annotations

import argparse
import cProfile
import pickle
import pstats
import time

from repro.fleet import RESERVOIR_K, fleet_trace, run_shard, sample_device
from repro.fleet.aggregate import N_BUCKETS


def run(devices: int, seed: int, profile: bool, top: int) -> None:
    # Sample the whole population up front: sampling cost is negligible
    # and this keeps the timed section purely simulation + aggregation.
    mixes = {
        sample_device(seed, index).trace_signature
        for index in range(devices)
    }

    profiler = cProfile.Profile() if profile else None
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    aggregate = run_shard(seed, 0, devices)
    if profiler is not None:
        profiler.disable()
    elapsed = time.perf_counter() - start

    memo = fleet_trace.cache_info()
    payload = len(pickle.dumps(aggregate))
    print(
        f"fleet: {devices} devices in {elapsed:.2f}s "
        f"({devices / elapsed:.1f} devices/s, seed {seed})"
    )
    print(
        f"trace memo: {memo.hits} hits / {memo.misses} misses "
        f"({len(mixes)} distinct app mixes)"
    )
    print(
        f"aggregate: {payload} bytes pickled "
        f"({aggregate.relaunches} relaunches folded, "
        f"reservoir K={RESERVOIR_K}, {N_BUCKETS} histogram buckets)"
    )
    print(
        f"population: {aggregate.pressure_devices} pressure devices, "
        f"ledger {'balanced' if aggregate.ledger_consistent else 'INCONSISTENT'}"
    )
    if profiler is not None:
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumtime").print_stats(top)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=200)
    parser.add_argument("--seed", type=int, default=404)
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the run in cProfile and print the top functions",
    )
    parser.add_argument("--top", type=int, default=20)
    args = parser.parse_args()
    if args.devices < 1:
        parser.error("--devices must be >= 1")
    run(args.devices, args.seed, args.profile, args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
