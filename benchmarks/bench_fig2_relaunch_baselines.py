"""Figure 2: relaunch latency under DRAM / ZRAM / SWAP.

Paper shape: ZRAM ~2.1x DRAM on average; SWAP worse than ZRAM.
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig2(benchmark, request):
    result = run_measured(benchmark, request, "fig2")
    print()
    print(result.render())
    assert 1.5 <= result.zram_over_dram <= 3.2   # paper: 2.1x
    assert result.swap_over_dram > result.zram_over_dram
