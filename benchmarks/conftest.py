"""Benchmark-suite helpers.

Each paper table/figure has one benchmark that regenerates it end to end
and prints the result table.  Full experiments are minutes-scale
simulations, so they run exactly once per session
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
regenerated table and the asserted paper-shape claims, not
sub-millisecond timing statistics (the codec microbenchmarks in
``bench_codecs.py`` cover that ground).

Because *measurement*, not timing, is the point of the figure
benchmarks, :func:`run_measured` routes them through the persistent
experiment-result cache (:func:`repro.experiments.run_cached`): on an
unchanged source tree a re-run is one disk read, and any source edit
invalidates everything via the code fingerprint.  Two opt-outs exist:

- ``pytest benchmarks/ --fresh-measurements`` forces every experiment
  to re-run (the shared flag for timing-honest sessions);
- specs flagged ``cacheable = False`` (fig6's live wall-clock columns)
  always re-measure regardless.

Timing-centric benchmarks (``bench_codecs.py``, the smoke scenario)
never use the result cache.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--fresh-measurements",
        action="store_true",
        default=False,
        help="bypass the persistent experiment-result cache and re-run "
        "every figure/table experiment from scratch",
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a callable exactly once under pytest-benchmark and return
    its result object (no result-cache involvement)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def run_measured(benchmark, request, experiment_id, quick: bool = False):
    """Regenerate one experiment through the persistent result cache.

    The memo key matches the parallel runner's, so benchmark sessions,
    CLI runs, and CI share entries.  ``--fresh-measurements`` (or an
    uncacheable spec) falls back to a direct run.
    """
    from repro.experiments import experiment, run_cached

    if request.config.getoption("--fresh-measurements"):
        spec = experiment(experiment_id)
        return run_once(benchmark, spec.run, quick=quick)
    return benchmark.pedantic(
        run_cached,
        args=(experiment_id,),
        kwargs={"quick": quick},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
