"""Benchmark-suite helpers.

Each paper table/figure has one benchmark that regenerates it end to end
and prints the result table.  Full experiments are minutes-scale
simulations, so they run exactly once per session
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
regenerated table and the asserted paper-shape claims, not sub-millisecond
timing statistics (the codec microbenchmarks in ``bench_codecs.py`` cover
that ground).
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return
    its result object."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
