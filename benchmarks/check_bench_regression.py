"""CI gate: compare a fresh smoke-benchmark artifact against the
committed baseline.

Two independent checks, with independent failure messages:

- **Correctness echo** — the scenario's simulated numbers
  (``simulated_wall_ns``, ``relaunches``, ``compress_ops``,
  ``kswapd_cpu_ns``) must be *bit-identical* to the baseline.  Any
  drift means an optimization changed measured behavior, which the
  number-invariance contract forbids; no tolerance applies.
- **Wall time** — the measured wall times may not regress more than
  ``--max-regression`` (default 25%) over the baseline.  Two walls are
  gated independently: the cold-size-cache ``wall_time_s`` (codec +
  simulator) and the simulator-only ``warm_wall_time_s`` (PR 5), so a
  simulator-side slowdown cannot hide under codec noise and vice
  versa.  Improvements always pass; CI runners are noisy, which is
  what the generous margin absorbs while still catching real
  slowdowns.  The checks arm themselves only when the artifact's
  machine/python match the baseline's — absolute seconds from a
  different machine class gate hardware, not code — and a wall absent
  from the baseline is skipped (pre-PR 5 baselines carry no warm
  wall).  This starts the wall-time trend line across commits: update
  the committed baseline whenever a PR makes the benchmark
  meaningfully faster (or when CI hardware changes).

Usage::

    python benchmarks/check_bench_regression.py BENCH_scenario.json \
        --baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Scenario echoes that must never drift (see smoke_scenario.py).
CORRECTNESS_KEYS = (
    "simulated_wall_ns",
    "relaunches",
    "compress_ops",
    "kswapd_cpu_ns",
)


def _environment(artifact: dict) -> tuple:
    """The fields that make wall times comparable across runs.

    Architecture and interpreter major.minor decide instruction-level
    speed; the CPU count separates machine classes that share both
    (the 1-CPU dev container vs a multi-core CI runner).  Within one
    class single-thread speed still varies, which the generous
    regression margin absorbs.  The page-metadata core (PR 8) is part
    of the environment too: object-core walls gated against a
    columnar baseline would measure the core switch, not the commit.
    A pre-PR 8 artifact carries no ``core`` field and compares as
    ``None`` — matching only other pre-PR 8 artifacts.
    """
    python = str(artifact.get("python", ""))
    return (
        artifact.get("machine"),
        ".".join(python.split(".")[:2]),  # major.minor decides interpreter speed
        artifact.get("cpus"),
        artifact.get("core"),
    )


#: Gated wall-time fields: (json key, human label, required-in-baseline).
#: The warm wall isolates the pure simulator (PR 5); a baseline that
#: predates it is simply not gated on it — but the cold wall has been
#: in every baseline since PR 2, so its absence is a broken baseline,
#: never a skip.
WALL_KEYS = (
    ("wall_time_s", "wall time", True),
    ("warm_wall_time_s", "warm (simulator-only) wall time", False),
)


def _check_wall(
    fresh: dict,
    baseline: dict,
    key: str,
    label: str,
    required: bool,
    max_regression: float,
) -> list[str]:
    """Gate one wall-time field; returns failure messages."""
    base_wall = baseline.get(key)
    fresh_wall = fresh.get(key)
    if base_wall is None and not required:
        print(
            f"{label} check skipped: baseline has no {key!r} "
            "(re-record benchmarks/BENCH_baseline.json to arm it)"
        )
        return []
    if not isinstance(base_wall, (int, float)) or base_wall <= 0:
        return [f"baseline {key} is unusable: {base_wall!r}"]
    if not isinstance(fresh_wall, (int, float)) or fresh_wall <= 0:
        return [f"fresh {key} is unusable: {fresh_wall!r}"]
    ratio = fresh_wall / base_wall
    limit = 1.0 + max_regression
    if ratio > limit:
        return [
            f"{label} regressed {ratio:.2f}x over baseline "
            f"({fresh_wall:.3f}s vs {base_wall:.3f}s; limit {limit:.2f}x)"
        ]
    print(
        f"{label} {fresh_wall:.3f}s vs baseline {base_wall:.3f}s "
        f"({ratio:.2f}x, limit {limit:.2f}x) — ok"
    )
    return []


def check(fresh: dict, baseline: dict, max_regression: float) -> list[str]:
    """Returns a list of failure messages (empty = pass)."""
    failures = []
    for key in CORRECTNESS_KEYS:
        if fresh.get(key) != baseline.get(key):
            failures.append(
                f"correctness echo {key!r} drifted: "
                f"baseline {baseline.get(key)!r} != fresh {fresh.get(key)!r} "
                "(number-invariance violation, not a perf issue)"
            )
    if _environment(fresh) != _environment(baseline):
        # Absolute seconds only gate *code* when the hardware and
        # interpreter match the baseline's; across machine classes the
        # 25% margin would gate the hardware instead.  Correctness
        # echoes above still apply — only the timing checks are skipped.
        print(
            "wall time checks skipped: environment differs from baseline "
            f"({_environment(fresh)} vs {_environment(baseline)}); "
            "re-record benchmarks/BENCH_baseline.json on this environment "
            "to re-arm the gate"
        )
    else:
        for key, label, required in WALL_KEYS:
            failures.extend(
                _check_wall(fresh, baseline, key, label, required,
                            max_regression)
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_scenario.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_baseline.json",
        help="committed baseline artifact",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="maximum tolerated wall-time regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args()
    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)
    failures = check(fresh, baseline, args.max_regression)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
