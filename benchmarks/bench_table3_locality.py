"""Table 3: probability of consecutive zpool accesses during relaunch
swap-in, measured from a live ZRAM run."""

from __future__ import annotations

import pytest

from repro.workload import profile_by_name
from conftest import run_measured


def test_bench_table3(benchmark, request):
    result = run_measured(benchmark, request, "table3")
    print()
    print(result.render())
    for app, p2 in result.p2.items():
        profile = profile_by_name(app)
        assert p2 == pytest.approx(profile.locality_p2, abs=0.10)
        assert result.p4[app] <= p2
