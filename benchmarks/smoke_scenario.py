"""Timed smoke scenario: the perf-trajectory artifact for CI.

Runs one 60-second Ariadne light scenario after trace warm-up, with a
cold in-memory size cache (persistent artifacts deliberately bypassed so
the number tracks real codec + scheme speed, not disk-cache hits), and
writes a small JSON artifact CI uploads on every run::

    PYTHONPATH=src python benchmarks/smoke_scenario.py --out BENCH_scenario.json

The scenario's measured numbers are also recorded so a perf regression
and a correctness regression are distinguishable at a glance.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.compression.chunking import SizeCache
from repro.experiments.common import scenario_build, workload_trace
from repro.sim.scenario import run_light_scenario


def run(duration_s: float, repeats: int) -> dict:
    trace = workload_trace(n_apps=5)  # warm-up: excluded from timing
    timings = []
    result = None
    for _ in range(repeats):
        system = scenario_build("Ariadne", trace)
        system.ctx.sizes = SizeCache()  # cold cache: measure real work
        start = time.perf_counter()
        result = run_light_scenario(system, duration_s=duration_s)
        timings.append(time.perf_counter() - start)
    assert result is not None
    return {
        "benchmark": "light_scenario_ariadne",
        "duration_s": duration_s,
        "wall_time_s": min(timings),
        "wall_time_all_s": timings,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        # Correctness echo: these must stay bit-stable across commits.
        "simulated_wall_ns": result.wall_ns,
        "relaunches": len(result.relaunches),
        "compress_ops": result.counters.get("compress_ops", 0),
        "kswapd_cpu_ns": result.kswapd_cpu_ns,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scenario.json")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()
    payload = run(args.duration, max(1, args.repeats))
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
