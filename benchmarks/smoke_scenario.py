"""Timed smoke scenario: the perf-trajectory artifact for CI.

Runs one 60-second Ariadne light scenario after trace warm-up, with a
cold in-memory size cache (persistent artifacts deliberately bypassed so
the number tracks real codec + scheme speed, not disk-cache hits), and
writes a small JSON artifact CI uploads on every run::

    PYTHONPATH=src python benchmarks/smoke_scenario.py --out BENCH_scenario.json

Two wall times are recorded per commit:

- ``wall_time_s`` — cold size cache: codec + simulator work together
  (the codec dominates, so this is the codec-trajectory number);
- ``warm_wall_time_s`` — the same scenario with the size cache already
  populated: the codec contributes nothing, so this isolates the pure
  simulator wall and tracks simulator-side optimizations (batched
  replay, epoch fast paths, accounting) that the cold number buries.

The scenario's measured numbers are also recorded so a perf regression
and a correctness regression are distinguishable at a glance.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.compression.chunking import SizeCache
from repro.experiments.common import scenario_build, workload_trace
from repro.mem.columnar import resolve_core
from repro.sim.scenario import run_light_scenario


def run(duration_s: float, repeats: int, warm_repeats: int) -> dict:
    trace = workload_trace(n_apps=5)  # warm-up: excluded from timing
    timings = []
    result = None
    for _ in range(repeats):
        system = scenario_build("Ariadne", trace)
        system.ctx.sizes = SizeCache()  # cold cache: measure real work
        start = time.perf_counter()
        result = run_light_scenario(system, duration_s=duration_s)
        timings.append(time.perf_counter() - start)
    assert result is not None
    # Simulator-only measurement: one shared size cache, primed by an
    # untimed run, so every timed round is pure simulator work.  The
    # simulated numbers must match the cold runs exactly — warmth may
    # only change wall time, never behavior.
    warm_sizes = SizeCache()
    system = scenario_build("Ariadne", trace)
    system.ctx.sizes = warm_sizes
    run_light_scenario(system, duration_s=duration_s)  # priming, untimed
    warm_timings = []
    for _ in range(warm_repeats):
        system = scenario_build("Ariadne", trace)
        system.ctx.sizes = warm_sizes
        start = time.perf_counter()
        warm_result = run_light_scenario(system, duration_s=duration_s)
        warm_timings.append(time.perf_counter() - start)
        assert warm_result.wall_ns == result.wall_ns, (
            "warm-cache run drifted from the cold run's simulated wall"
        )
    return {
        "benchmark": "light_scenario_ariadne",
        "duration_s": duration_s,
        "wall_time_s": min(timings),
        "wall_time_all_s": timings,
        "warm_wall_time_s": min(warm_timings),
        "warm_wall_time_all_s": warm_timings,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        # Comparability: the regression gate only compares walls
        # measured under the same page-metadata core (see
        # check_bench_regression._environment).
        "core": resolve_core(),
        # Correctness echo: these must stay bit-stable across commits.
        "simulated_wall_ns": result.wall_ns,
        "relaunches": len(result.relaunches),
        "compress_ops": result.counters.get("compress_ops", 0),
        "kswapd_cpu_ns": result.kswapd_cpu_ns,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scenario.json")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--warm-repeats",
        type=int,
        default=3,
        help="timed simulator-only rounds after the size cache is primed",
    )
    args = parser.parse_args()
    payload = run(args.duration, max(1, args.repeats), max(1, args.warm_repeats))
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
