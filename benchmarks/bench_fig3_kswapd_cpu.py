"""Figure 3: kswapd CPU under DRAM / ZRAM / SWAP.

Paper shape: ZRAM burns the most reclaim CPU (2.6x DRAM, 2.0x SWAP).
"""

from __future__ import annotations

from repro.experiments import fig3
from conftest import run_once


def test_bench_fig3(benchmark):
    result = run_once(benchmark, fig3.run)
    print()
    print(result.render())
    assert result.zram_over_dram > 1.5   # paper: 2.6x
    assert result.zram_over_swap > 1.3   # paper: 2.0x
    assert result.kswapd_cpu_s["SWAP"] > result.kswapd_cpu_s["DRAM"]
