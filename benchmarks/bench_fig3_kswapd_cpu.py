"""Figure 3: kswapd CPU under DRAM / ZRAM / SWAP.

Paper shape: ZRAM burns the most reclaim CPU (2.6x DRAM, 2.0x SWAP).
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig3(benchmark, request):
    result = run_measured(benchmark, request, "fig3")
    print()
    print(result.render())
    assert result.zram_over_dram > 1.5   # paper: 2.6x
    assert result.zram_over_swap > 1.3   # paper: 2.0x
    assert result.kswapd_cpu_s["SWAP"] > result.kswapd_cpu_s["DRAM"]
