"""Figure 14: coverage (~70%) and accuracy (~92%) of HotnessOrg's hot-data
identification."""

from __future__ import annotations

import pytest

from conftest import run_measured


def test_bench_fig14(benchmark, request):
    result = run_measured(benchmark, request, "fig14")
    print()
    print(result.render())
    assert result.mean_coverage == pytest.approx(0.70, abs=0.12)
    assert result.mean_accuracy > 0.85   # paper: ~0.92
    assert all(acc > cov for cov, acc in zip(
        result.coverage.values(), result.accuracy.values()
    ))
