"""Figure 14: coverage (~70%) and accuracy (~92%) of HotnessOrg's hot-data
identification."""

from __future__ import annotations

import pytest

from repro.experiments import fig14
from conftest import run_once


def test_bench_fig14(benchmark):
    result = run_once(benchmark, fig14.run)
    print()
    print(result.render())
    assert result.mean_coverage == pytest.approx(0.70, abs=0.12)
    assert result.mean_accuracy > 0.85   # paper: ~0.92
    assert all(acc > cov for cov, acc in zip(
        result.coverage.values(), result.accuracy.values()
    ))
