"""Figure 13: compression ratio per scheme.

Paper shape: Ariadne-EHL-1K-4K-16K beats ZRAM for every app;
Ariadne-AL-512-2K-16K roughly ties ZRAM.
"""

from __future__ import annotations

import pytest

from conftest import run_measured


def test_bench_fig13(benchmark, request):
    result = run_measured(benchmark, request, "fig13")
    print()
    print(result.render())
    assert result.ehl_beats_zram_everywhere()
    for app in result.apps:
        small = result.ratio("Ariadne-AL-512-2K-16K", app)
        zram = result.ratio("ZRAM", app)
        assert small == pytest.approx(zram, rel=0.15)  # "similar to ZRAM"
