"""Reproducible hot-spot profiling: the PERFORMANCE.md methodology as a
command.

Profiles the representative system-level workload (a switching scenario
over the five-app trace), not microbenchmarks, exactly as every
optimization round in this repo has been validated:

- the workload trace is generated (or loaded) *before* profiling starts,
  so trace generation never pollutes the profile;
- the size cache starts cold by default (persistent artifacts bypassed),
  so the profile shows real codec + scheme work — pass ``--warm`` to
  pre-run the scenario once and profile the codec-free simulator
  instead;
- output is a cProfile table plus the wall-time split between codec
  (size-cache misses) and everything else, which is the first number to
  look at before reading any per-function rows.

Examples::

    PYTHONPATH=src python benchmarks/profile_scenario.py
    PYTHONPATH=src python benchmarks/profile_scenario.py --scheme ZRAM \
        --scenario heavy --duration 30 --sort cumtime --top 30
    PYTHONPATH=src python benchmarks/profile_scenario.py --warm
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.compression.chunking import SizeCache
from repro.experiments.common import scenario_build, workload_trace
from repro.faults import FaultPlan, install_fault_plan
from repro.mem.columnar import resolve_core
from repro.metrics import recovery_summary, zswap_summary
from repro.sim.scenario import run_heavy_scenario, run_light_scenario
from repro.sim.system import SCHEME_NAMES


class _TimedSizeCache(SizeCache):
    """SizeCache that accounts wall time spent in codec misses."""

    def __init__(self, max_entries: int = 262144) -> None:
        super().__init__(max_entries=max_entries)
        self.codec_seconds = 0.0

    def _measure(self, codec, data, chunk_size):
        start = time.perf_counter()
        size = super()._measure(codec, data, chunk_size)
        self.codec_seconds += time.perf_counter() - start
        return size


def profile(
    scheme: str,
    scenario: str,
    duration_s: float,
    sort: str,
    top: int,
    warm: bool,
    fault_rate: float = 0.0,
    fault_seed: int = 2025,
) -> None:
    trace = workload_trace(n_apps=5)  # warm-up: excluded from the profile
    runner = run_light_scenario if scenario == "light" else run_heavy_scenario
    sizes = _TimedSizeCache()
    if warm:
        system = scenario_build(scheme, trace)
        system.ctx.sizes = sizes
        runner(system, duration_s=duration_s)
        sizes.codec_seconds = 0.0  # keep the warm entries, reset the clock

    system = scenario_build(scheme, trace)
    system.ctx.sizes = sizes
    plan = None
    if fault_rate > 0.0:
        plan = FaultPlan(
            seed=fault_seed,
            read_error_rate=fault_rate,
            write_error_rate=fault_rate,
            bitflip_rate=fault_rate / 10.0,
        )
        install_fault_plan(system.ctx, plan)
    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    runner(system, duration_s=duration_s)
    profiler.disable()
    wall = time.perf_counter() - wall_start

    codec = sizes.codec_seconds
    print(
        f"# {scheme} {scenario} scenario, {duration_s:.0f}s simulated, "
        f"{'warm' if warm else 'cold'} size cache"
    )
    print(
        f"# wall {wall:.3f}s = codec {codec:.3f}s "
        f"+ simulator {wall - codec:.3f}s "
        f"({sizes.misses} codec calls, {sizes.hits} size-cache hits)"
    )
    # The accounting layer's cost at a glance: watermark probes are
    # O(1) reads of the running free-bytes counter, accounting updates
    # are the occupancy hooks that maintain it (PR 3).
    probed = system.scheme
    print(
        f"# accounting: {probed.watermark_probes} watermark probes, "
        f"{probed.accounting_updates} occupancy-hook updates "
        "(incremental free-bytes counter, no recompute per probe)"
    )
    # The eviction-epoch layer's effectiveness at a glance: batches the
    # replay served with zero per-page residency probes vs the probes
    # the run-splitting fallback still performed (PR 5).
    print(
        f"# epochs: {probed.epoch_skips} epoch-verified batch skips, "
        f"{probed.residency_probes} residency probes, "
        f"eviction_epoch {probed.eviction_epoch}"
    )
    # Which page-metadata core ran, and — under the columnar core — the
    # kernel/journal counters aggregated over every app organizer, so a
    # profile shows how much of the replay went through the vectorized
    # paths (PR 8).
    print(f"# core: {resolve_core()}")
    stats: dict[str, int] = {}
    for organizer in probed._organizers.values():
        for key, value in getattr(organizer, "columnar_stats", dict)().items():
            stats[key] = stats.get(key, 0) + value
    if stats:
        print(
            f"# columnar: {stats['handles']} handles, "
            f"{stats['kernel_batches']} kernel batches "
            f"({stats['kernel_pages']} pages), "
            f"{stats['journal_scans']} journal scans "
            f"({stats['journal_candidates']} candidate handles)"
        )
    # Size-cache recency accounting: the digest-keyed run fast path
    # stopped paying an LRU move per hit (PR 8) — ``lru_moves`` counts
    # the moves still performed (single-payload front door), against the
    # run hits that no longer pay one.
    print(
        f"# size cache: {sizes.run_hits} run-key hits without LRU move, "
        f"{sizes.lru_moves} LRU moves on the payload path"
    )
    # The zswap writeback tier at a glance (PR 9): batched reclaim and
    # slot-locality readahead traffic.  All-zero (any scheme without the
    # tier, or a pool that never crossed its threshold) prints nothing.
    zswap = zswap_summary(system.ctx.counters)
    if any(zswap.values()):
        print(
            f"# zswap: {zswap['zswap_writeback_batches']} writeback "
            f"batches ({zswap['zswap_pages_written_back']} pages, max "
            f"batch {zswap['zswap_batch_pages_max']}); readahead "
            f"{zswap['zswap_readahead_reads']} reads, "
            f"{zswap['zswap_readahead_hits']} hits, "
            f"{zswap['zswap_readahead_wasted']} wasted, "
            f"{zswap['zswap_readahead_aborted']} aborted"
        )
    if plan is not None:
        # The recovery story at a glance: injections vs how the schemes
        # absorbed them (retries, drops, cold refaults) and whether the
        # ledger balances — fault_rate 0 prints nothing, keeping the
        # default profile output unchanged.
        recovery = recovery_summary(system.ctx.counters)
        ledger = plan.ledger(system.ctx.counters)
        print(
            f"# faults: {plan.injected_total} injected at rate "
            f"{fault_rate:g} (seed {fault_seed}); "
            f"{recovery['fault_transient_recovered']} retried to success, "
            f"{recovery['fault_chunks_dropped']} chunks dropped, "
            f"{recovery['fault_cold_refaults']} cold refaults; ledger "
            f"{'consistent' if ledger['consistent'] else 'INCONSISTENT'}"
        )
    print("# (profiled wall time includes cProfile overhead)")
    pstats.Stats(profiler).sort_stats(sort).print_stats(top)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheme", default="Ariadne", choices=SCHEME_NAMES)
    parser.add_argument("--scenario", default="light", choices=["light", "heavy"])
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--sort",
        default="tottime",
        choices=["tottime", "cumtime", "ncalls"],
        help="cProfile sort key (default: tottime)",
    )
    parser.add_argument("--top", type=int, default=20, metavar="N")
    parser.add_argument(
        "--warm",
        action="store_true",
        help="pre-run once so the profile shows the codec-free simulator",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="inject flash I/O errors at this per-command rate (and "
        "bit-flips at a tenth of it); 0 disables injection (default)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=2025,
        metavar="SEED",
        help="seed for the deterministic fault streams (default: 2025)",
    )
    args = parser.parse_args()
    profile(
        scheme=args.scheme,
        scenario=args.scenario,
        duration_s=args.duration,
        sort=args.sort,
        top=args.top,
        warm=args.warm,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
