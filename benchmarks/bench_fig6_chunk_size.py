"""Figure 6: latency and ratio vs compression chunk size (LZ4/LZO).

Paper shape: ratio climbs (1.7 -> 3.9) while small-chunk compression is
59.2x (LZ4) / 41.8x (LZO) faster for the same volume.
"""

from __future__ import annotations

import pytest

from repro.experiments import experiment
from conftest import run_once


def test_bench_fig6(benchmark):
    # fig6's wall-clock columns make timing the point: always a fresh
    # run (the spec is cacheable=False anyway), never the result cache.
    result = run_once(benchmark, experiment("fig6").run)
    print()
    print(result.render())
    assert result.speedup_small_vs_large("lz4") == pytest.approx(59.2, rel=0.1)
    assert result.speedup_small_vs_large("lzo") == pytest.approx(41.8, rel=0.1)
    for codec in ("lz4", "lzo"):
        ratios = [p.ratio for p in result.points_for(codec)]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0] * 1.5
