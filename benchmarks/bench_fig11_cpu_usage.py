"""Figure 11: compression+decompression CPU normalized to ZRAM.

Paper shape: Ariadne uses less codec CPU than ZRAM (paper mean: ~-15%;
the simulator's pure-codec accounting yields a larger saving — see
EXPERIMENTS.md for the discussion).
"""

from __future__ import annotations

from conftest import run_measured


def test_bench_fig11(benchmark, request):
    result = run_measured(benchmark, request, "fig11")
    print()
    print(result.render())
    assert result.ariadne_mean_reduction > 0.10   # paper: ~15%
    # ZRAM is the normalization base.
    assert all(v == 1.0 for v in result.normalized["ZRAM"].values())
    # Every Ariadne column saves CPU for every app.
    for column in result.columns:
        if column.startswith("Ariadne"):
            assert all(v < 1.0 for v in result.normalized[column].values())
