"""Synthetic payload-generator tests."""

from __future__ import annotations

import random

from repro.compression import LzoCompressor, measure_ratio
from repro.mem import PageKind
from repro.units import PAGE_SIZE
from repro.workload import PayloadGenerator, profile_by_name


def make_generator(seed: int = 1, app: str = "YouTube") -> PayloadGenerator:
    return PayloadGenerator(profile_by_name(app), random.Random(seed))


def test_pages_are_exactly_page_sized():
    generator = make_generator()
    for _ in range(20):
        payload, _ = generator.generate_page()
        assert len(payload) == PAGE_SIZE


def test_generation_is_deterministic_per_seed():
    first = [make_generator(seed=7).generate_page()[0] for _ in range(5)]
    second = [make_generator(seed=7).generate_page()[0] for _ in range(5)]
    assert first == second


def test_different_seeds_differ():
    a = make_generator(seed=1).generate_page()[0]
    b = make_generator(seed=2).generate_page()[0]
    assert a != b


def test_zero_pages_appear_at_roughly_profile_rate():
    generator = make_generator(seed=3)
    kinds = [generator.generate_page()[1] for _ in range(400)]
    zero_rate = kinds.count(PageKind.ZERO) / len(kinds)
    target = profile_by_name("YouTube").zero_page_fraction
    assert abs(zero_rate - target) < 0.05


def test_ratio_grows_with_chunk_size():
    """Insight 2's precondition: larger chunks see more redundancy."""
    generator = make_generator(seed=5)
    data = b"".join(generator.generate_page()[0] for _ in range(64))
    codec = LzoCompressor()
    small = measure_ratio(codec, data, 128)
    medium = measure_ratio(codec, data, 4096)
    large = measure_ratio(codec, data, 64 * 1024)
    assert small < medium < large
    # Calibration window: paper measures 1.7 at 128 B and 3.9 at 128 KB.
    assert 1.3 < small < 2.6
    assert large > 2.2


def test_incompressible_apps_compress_worse():
    compressible = make_generator(seed=9, app="Twitter")     # 12% entropy
    incompressible = make_generator(seed=9, app="BangDream")  # 30% entropy
    codec = LzoCompressor()
    data_c = b"".join(compressible.generate_page()[0] for _ in range(32))
    data_i = b"".join(incompressible.generate_page()[0] for _ in range(32))
    assert measure_ratio(codec, data_c, 4096) > measure_ratio(codec, data_i, 4096)
