"""Ariadne scheme tests: AdaptiveComp, HotnessOrg wiring, PreDecomp,
cold writeback."""

from __future__ import annotations

import pytest

from repro.core import (
    AriadneConfig,
    AriadneScheme,
    PlatformConfig,
    RelaunchScenario,
    build_context,
)
from repro.mem import Hotness, Page, PageLocation
from repro.mem.organizer import HotWarmColdOrganizer
from repro.metrics import APP, PREDECOMP
from repro.units import KIB, PAGE_SIZE


def make_scheme(
    dram_pages: int = 16,
    config: AriadneConfig | None = None,
    hot_seed: int = 2,
) -> AriadneScheme:
    platform = PlatformConfig(
        dram_bytes=dram_pages * PAGE_SIZE,
        zpool_bytes=256 * KIB,
        swap_bytes=1 << 20,
        scale=1,
        parallelism=1,
    )
    ctx = build_context(platform, codec_name="lzo")
    scheme = AriadneScheme(ctx, config or AriadneConfig())
    scheme.register_app(1, hot_seed_limit=hot_seed)
    scheme.note_app_switch(1)
    return scheme


def compressible_page(pfn: int, uid: int = 1) -> Page:
    payload = (f"app-{uid}-page-{pfn}|".encode() * 400)[:PAGE_SIZE]
    return Page(pfn=pfn, uid=uid, payload=payload)


def seeded_scheme(n_pages: int = 10, **kwargs) -> tuple[AriadneScheme, list[Page]]:
    scheme = make_scheme(**kwargs)
    pages = [compressible_page(i) for i in range(n_pages)]
    scheme.on_pages_created(1, pages)
    scheme.end_launch(1)
    return scheme, pages


class TestAdaptiveComp:
    def test_cold_data_grouped_into_large_chunks(self):
        scheme, _ = seeded_scheme(n_pages=10, hot_seed=2)
        scheme.force_compress_app(1, exclude_hot=True)
        cold_chunks = [
            chunk for chunk in scheme.stored_chunks()
            if chunk.hotness_at_compress is Hotness.COLD
        ]
        assert cold_chunks
        assert all(c.chunk_size == scheme.config.large_size for c in cold_chunks)
        assert any(c.page_count > 1 for c in cold_chunks)

    def test_hot_data_uses_small_chunks_in_al(self):
        scheme, _ = seeded_scheme(n_pages=8, hot_seed=3)
        scheme.force_compress_app(1, exclude_hot=False)
        hot_chunks = [
            chunk for chunk in scheme.stored_chunks()
            if chunk.hotness_at_compress is Hotness.HOT
        ]
        assert hot_chunks
        assert all(c.chunk_size == scheme.config.small_size for c in hot_chunks)
        assert all(c.page_count == 1 for c in hot_chunks)

    def test_warm_data_uses_medium_chunks(self):
        scheme, pages = seeded_scheme(n_pages=8, hot_seed=2)
        scheme.access(pages[5])  # cold -> warm promotion
        scheme.force_compress_app(1, exclude_hot=True)
        warm_chunks = [
            chunk for chunk in scheme.stored_chunks()
            if chunk.hotness_at_compress is Hotness.WARM
        ]
        assert warm_chunks
        assert all(c.chunk_size == scheme.config.medium_size for c in warm_chunks)

    def test_ehl_force_keeps_hot_resident(self):
        scheme, pages = seeded_scheme(n_pages=8, hot_seed=2)
        scheme.force_compress_app(1, exclude_hot=True)
        organizer = scheme.organizer(1)
        assert isinstance(organizer, HotWarmColdOrganizer)
        assert len(organizer.hot) == 2
        assert all(scheme.ctx.dram.is_resident(p) for p in organizer.hot)

    def test_multi_page_fault_materializes_whole_group(self):
        """The Figure 9(b) worst case: one fault decompresses the chunk."""
        scheme, pages = seeded_scheme(n_pages=10, hot_seed=0)
        scheme.force_compress_app(1)
        group = next(
            c for c in scheme.stored_chunks() if c.page_count > 1 and c.in_zpool
        )
        member = group.pages[0]
        scheme.access(member)
        assert all(scheme.ctx.dram.is_resident(p) for p in group.pages)


class TestHotnessUpdate:
    def test_relaunch_rebuilds_hot_list(self):
        scheme, pages = seeded_scheme(n_pages=8, hot_seed=2)
        scheme.begin_relaunch(1)
        scheme.access(pages[6])  # cold page used during relaunch
        scheme.end_relaunch(1)
        organizer = scheme.organizer(1)
        assert organizer.hotness_estimate(pages[6]) is Hotness.HOT
        # Seeded hot pages that were not touched demote to warm.
        assert organizer.hotness_estimate(pages[0]) is Hotness.WARM

    def test_hot_prediction_includes_compressed_hot(self):
        scheme, pages = seeded_scheme(n_pages=8, hot_seed=3)
        scheme.force_compress_app(1, exclude_hot=False)
        predicted = scheme.hot_prediction(1)
        assert {pages[0].pfn, pages[1].pfn, pages[2].pfn} <= predicted


class TestWriteback:
    def test_direct_pressure_writes_cold_chunks_to_flash(self):
        scheme, pages = seeded_scheme(n_pages=12, hot_seed=2, dram_pages=10)
        scheme.force_compress_app(1, exclude_hot=True)
        # Faulting everything back in forces direct reclaim, which should
        # prefer writing cold zpool chunks back over compressing more.
        for page in pages[2:]:
            scheme.access(page, thread=APP)
        assert scheme.ctx.counters.get("chunks_written_back") > 0
        assert scheme.ctx.flash_device.host_bytes_written > 0

    def test_writeback_disabled_by_config(self):
        config = AriadneConfig(writeback_enabled=False)
        scheme, pages = seeded_scheme(
            n_pages=12, hot_seed=2, dram_pages=13, config=config
        )
        scheme.force_compress_app(1, exclude_hot=True)
        for page in pages[2:]:
            scheme.access(page, thread=APP)
        assert scheme.ctx.counters.get("chunks_written_back") == 0

    def test_flash_chunk_fault_roundtrips(self):
        scheme, pages = seeded_scheme(n_pages=12, hot_seed=2, dram_pages=13)
        scheme.force_compress_app(1, exclude_hot=True)
        for page in pages[2:]:
            scheme.access(page, thread=APP)
        flash_pages = [p for p in pages if p.location is PageLocation.FLASH]
        if flash_pages:
            result = scheme.access(flash_pages[0])
            assert result.stall_ns > 0
            assert scheme.ctx.dram.is_resident(flash_pages[0])


class TestPreDecomp:
    def test_fault_triggers_next_sector_prefetch(self):
        scheme, pages = seeded_scheme(n_pages=6, hot_seed=6)
        scheme.force_compress_app(1, exclude_hot=False)
        # Hot pages were compressed one per chunk at consecutive sectors;
        # faulting the first should stage the second.
        scheme.access(pages[0])
        assert scheme.ctx.counters.get("predecomp_prefetches") >= 1
        assert len(scheme.staging) >= 1

    def test_staging_hit_avoids_decompression_stall(self):
        scheme, pages = seeded_scheme(n_pages=6, hot_seed=6)
        scheme.force_compress_app(1, exclude_hot=False)
        scheme.access(pages[0])
        staged_pfns = [p.pfn for p in pages if p.pfn in scheme.staging]
        assert staged_pfns
        target = next(p for p in pages if p.pfn == staged_pfns[0])
        fault_cost = scheme.access(pages[2]).stall_ns  # a real fault
        hit = scheme.access(target)
        assert hit.source is PageLocation.STAGING
        assert hit.stall_ns < fault_cost
        assert scheme.ctx.counters.get("staging_hits") == 1

    def test_prefetch_charges_background_thread(self):
        scheme, pages = seeded_scheme(n_pages=6, hot_seed=6)
        scheme.force_compress_app(1, exclude_hot=False)
        scheme.access(pages[0])
        assert scheme.ctx.cpu.thread_ns(PREDECOMP) > 0

    def test_cold_groups_are_not_prefetched(self):
        scheme, pages = seeded_scheme(n_pages=10, hot_seed=0)
        scheme.force_compress_app(1)
        scheme.access(pages[0])
        assert scheme.ctx.counters.get("predecomp_prefetches") == 0

    def test_predecomp_disabled_by_config(self):
        config = AriadneConfig(predecomp_enabled=False)
        scheme, pages = seeded_scheme(n_pages=6, hot_seed=6, config=config)
        scheme.force_compress_app(1, exclude_hot=False)
        scheme.access(pages[0])
        assert scheme.ctx.counters.get("predecomp_prefetches") == 0

    def test_fifo_aging_recompresses_unused_pages(self):
        config = AriadneConfig(staging_pages=1)
        scheme, pages = seeded_scheme(n_pages=8, hot_seed=8, config=config)
        scheme.force_compress_app(1, exclude_hot=False)
        # Each fault stages one page into a 1-slot FIFO, evicting the
        # previous unused one, which must be recompressed.
        scheme.access(pages[0])
        scheme.access(pages[3])
        assert scheme.ctx.counters.get("staging_recompressed") >= 1


class TestAblation:
    def test_hotness_org_disabled_uses_two_list_organizer(self):
        config = AriadneConfig(hotness_org_enabled=False)
        scheme = make_scheme(config=config)
        from repro.mem.organizer import ActiveInactiveOrganizer

        assert isinstance(scheme.organizer(1), ActiveInactiveOrganizer)

    def test_scheme_name_is_config_label(self):
        scheme = make_scheme(
            config=AriadneConfig(scenario=RelaunchScenario.AL)
        )
        assert scheme.name == "Ariadne-AL-1K-2K-16K"
