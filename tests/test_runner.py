"""Parallel experiment runner tests (repro.experiments.runner)."""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field

import pytest

from repro.experiments import Experiment, common, experiment, registry
from repro.experiments.runner import (
    ExperimentOutcome,
    TaskFailure,
    default_jobs,
    run_experiments,
)

#: Captured at import time in the parent: lets crash cells kill only
#: forked workers while the in-parent serial fallback survives.
_MAIN_PID = os.getpid()


@dataclass
class _FakeResult(registry.ExperimentResult):
    """Mergeable result for the fake sharded experiment below."""

    partials: dict = field(default_factory=dict)

    def render(self) -> str:
        cells = ",".join(
            f"{key}={self.partials[key][key]}" for key in sorted(self.partials)
        )
        return f"cells[{cells}]"


class _FakeSharded(Experiment):
    """Minimal sharded spec (module-level: fork-visible)."""

    id = "fake"
    title = "fake sharded experiment"
    anchor = "Test"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        return ["alpha", "beta", "gamma"]

    def run_cell(self, key: str, quick: bool = False) -> dict:
        if key == "boom":
            raise ValueError("cell exploded")
        return {key: key.upper()}

    def merge(self, partials: dict, quick: bool = False) -> _FakeResult:
        return _FakeResult(partials)


class _FakeShardedFailing(_FakeSharded):
    def cell_keys(self, quick: bool = False) -> list[str]:
        return ["alpha", "boom"]


class _FakeManyCells(_FakeSharded):
    """Forty trivial cells: exercises the bounded submission window."""

    def cell_keys(self, quick: bool = False) -> list[str]:
        return [f"cell{i:03d}" for i in range(40)]

    def run_cell(self, key: str, quick: bool = False) -> dict:
        return {key: key.upper()}


class _FakeShardedHanging(_FakeSharded):
    """One cell sleeps far past any sane task timeout."""

    def cell_keys(self, quick: bool = False) -> list[str]:
        return ["alpha", "hang"]

    def run_cell(self, key: str, quick: bool = False) -> dict:
        if key == "hang":
            time.sleep(300)
        return super().run_cell(key, quick)


class _FakeShardedCrashing(_FakeSharded):
    """One cell kills any *worker* process it runs in (parent survives)."""

    def cell_keys(self, quick: bool = False) -> list[str]:
        return ["alpha", "die"]

    def run_cell(self, key: str, quick: bool = False) -> dict:
        if key == "die" and os.getpid() != _MAIN_PID:
            os._exit(41)  # simulated segfault/OOM-kill: no cleanup, no result
        return super().run_cell(key, quick)


class _FakeBlocking(Experiment):
    """Unsharded spec that never finishes (module-level: fork-visible).

    When ``REPRO_TEST_SIGTERM_TARGET`` names a pid and this spec's id
    ends in ``-a``, it SIGTERMs that pid first — modelling an operator
    interrupting a suite mid-flight.  Every instance then blocks, so no
    task can ever complete and the whole suite must resolve as
    ``"interrupted"`` — on the in-process path (the signal lands inside
    the parent's own ``compute``) and the pool path (it lands while
    workers hold every task) alike.
    """

    title = "fake blocking experiment"
    anchor = "Test"

    def __init__(self, id_: str) -> None:
        self.id = id_

    def compute(self, quick: bool = False) -> _FakeResult:
        target = os.environ.get("REPRO_TEST_SIGTERM_TARGET")
        if target:
            if self.id.endswith("-a"):
                os.kill(int(target), signal.SIGTERM)
            time.sleep(30)  # the interrupt always wins
        return _FakeResult({})


@pytest.fixture()
def fake_sharded(monkeypatch):
    monkeypatch.setitem(registry._REGISTRY, "fake", _FakeSharded())


@pytest.fixture()
def fake_failing(monkeypatch):
    monkeypatch.setitem(registry._REGISTRY, "fake", _FakeShardedFailing())


class TestShardedScheduling:
    def test_fig10_and_fig11_expose_matrix_cells(self):
        fig10, fig11 = experiment("fig10"), experiment("fig11")
        assert fig10.cell_keys(quick=True)[:2] == ["DRAM", "ZRAM"]
        assert len(fig10.cell_keys(quick=True)) == 4
        # fig11 normalizes to ZRAM, so DRAM (no codec CPU) is not a cell.
        assert "DRAM" not in fig11.cell_keys(quick=True)
        assert "ZRAM" in fig11.cell_keys(quick=True)
        assert len(fig11.cell_keys(quick=False)) > len(fig11.cell_keys(quick=True))

    def test_serial_and_sharded_render_identically(self, fake_sharded):
        serial = run_experiments(["fake"], jobs=1)
        sharded = run_experiments(["fake"], jobs=2)
        assert serial[0].ok and sharded[0].ok
        assert serial[0].rendered == sharded[0].rendered
        assert serial[0].cells == 1  # one worker: runs whole, unsharded
        assert sharded[0].cells == 3
        # Both paths surface the structured result object.
        assert serial[0].result == sharded[0].result

    def test_cell_failure_surfaces_as_experiment_error(self, fake_failing):
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert not outcome.ok
        assert "cell exploded" in outcome.error
        assert outcome.result is None

    def test_mixed_suite_keeps_request_order(self, fake_sharded):
        outcomes = run_experiments(["platform", "fake"], jobs=2, quick=True)
        assert [outcome.name for outcome in outcomes] == ["platform", "fake"]
        assert all(outcome.ok for outcome in outcomes)

    def test_submission_window_bounds_inflight_tasks(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setitem(registry._REGISTRY, "fake", _FakeManyCells())
        peak = 0
        original = runner._Supervisor.submit

        def tracking_submit(self, task_index):
            nonlocal peak
            original(self, task_index)
            peak = max(peak, len(self.inflight))

        monkeypatch.setattr(runner._Supervisor, "submit", tracking_submit)
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert outcome.ok and outcome.cells == 40
        assert len(outcome.result.partials) == 40
        # In-flight submissions stay O(workers), not O(tasks): the
        # window is what keeps a many-thousand-shard fleet's pending
        # payloads out of the pool queue.
        assert 0 < peak <= max(2 * 2, 2 + 2)

    def test_empty_cell_list_falls_back_to_whole_run(self, monkeypatch):
        class _NoCells(_FakeSharded):
            def cell_keys(self, quick: bool = False) -> list[str]:
                return []

        monkeypatch.setitem(registry._REGISTRY, "fake", _NoCells())
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert outcome.ok and outcome.cells == 1
        assert outcome.rendered == _NoCells().run().render()


@pytest.fixture()
def persistent_caches(monkeypatch, tmp_path):
    """Point the (normally disabled-in-tests) disk caches at a tmp dir.

    The runner's workers re-read ``REPRO_CACHE_DIR`` through the
    ``lru_cache``'d accessors, so both are cleared on entry and exit —
    exit restores the hermetic ``off`` state the conftest establishes.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()
    yield tmp_path / "cache"
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()


class TestResultCacheIntegration:
    def test_second_sharded_run_serves_cells_from_cache(
        self, fake_sharded, persistent_caches
    ):
        (cold,) = run_experiments(["fake"], jobs=2)
        assert cold.ok and cold.cells == 3 and cold.cached_tasks == 0
        (warm,) = run_experiments(["fake"], jobs=2)
        assert warm.ok and warm.cells == 3 and warm.cached_tasks == 3
        assert warm.rendered == cold.rendered

    def test_second_serial_run_serves_whole_experiment_from_cache(
        self, persistent_caches
    ):
        (cold,) = run_experiments(["platform"], jobs=1, quick=True)
        assert cold.ok and cold.cached_tasks == 0
        (warm,) = run_experiments(["platform"], jobs=1, quick=True)
        assert warm.ok and warm.cached_tasks == 1
        assert warm.rendered == cold.rendered
        assert warm.result == cold.result

    def test_serial_sharded_run_caches_per_cell_not_whole(
        self, fake_sharded, persistent_caches
    ):
        # A one-worker run of a sharded spec must store the same
        # per-cell entries the parallel path reads — never the merged
        # result under cell=None, a key that cannot distinguish two
        # env-dependent cell lists (the fleet's size and seed).
        (cold,) = run_experiments(["fake"], jobs=1)
        assert cold.ok and cold.cached_tasks == 0
        (parallel,) = run_experiments(["fake"], jobs=2)
        assert parallel.ok and parallel.cached_tasks == 3
        # And the reverse direction: a serial re-run reports the per-
        # cell hits it was served.
        (serial,) = run_experiments(["fake"], jobs=1)
        assert serial.ok and serial.cached_tasks == 3
        assert serial.rendered == cold.rendered

    def test_failed_task_is_not_cached(self, fake_failing, persistent_caches):
        (first,) = run_experiments(["fake"], jobs=2)
        assert not first.ok
        (second,) = run_experiments(["fake"], jobs=2)
        assert not second.ok
        # Only the successful cell may be served from cache; the failed
        # one must re-run (and fail again), never be memoized.
        assert second.cached_tasks <= 1

    def test_run_cached_assembles_from_cells_the_runner_warmed(
        self, fake_sharded, persistent_caches, monkeypatch
    ):
        # A parallel suite run stores per-cell entries only ...
        (cold,) = run_experiments(["fake"], jobs=2)
        assert cold.ok and cold.cached_tasks == 0
        # ... which a serial run_cached consumer (benchmarks) must
        # reuse instead of re-simulating: poison run_cell to prove no
        # cell is recomputed.
        def explode(self, key, quick=False):  # pragma: no cover
            raise AssertionError("cell re-simulated despite warm cache")

        monkeypatch.setattr(_FakeSharded, "run_cell", explode)
        assert registry.run_cached("fake").render() == cold.rendered

    def test_run_cached_measures_and_stores_missing_cells(
        self, fake_sharded, persistent_caches
    ):
        first = registry.run_cached("fake")
        (warm,) = run_experiments(["fake"], jobs=2)
        # The cells run_cached stored serve the parallel runner too.
        assert warm.ok and warm.cached_tasks == 3
        assert warm.rendered == first.render()

    def test_disabled_cache_never_reports_cached_tasks(self, fake_sharded):
        # conftest keeps REPRO_CACHE_DIR=off for hermetic tests.
        for _ in range(2):
            (outcome,) = run_experiments(["fake"], jobs=2)
            assert outcome.ok and outcome.cached_tasks == 0

    def test_uncacheable_specs_are_never_served_from_cache(
        self, monkeypatch, persistent_caches
    ):
        # Specs with cacheable=False embed real wall-clock measurements;
        # a warm run must re-measure, not replay.
        class _Uncacheable(_FakeSharded):
            cacheable = False

        monkeypatch.setitem(registry._REGISTRY, "fake", _Uncacheable())
        for _ in range(2):
            (outcome,) = run_experiments(["fake"], jobs=2)
            assert outcome.ok and outcome.cached_tasks == 0

    def test_fig6_is_marked_uncacheable(self):
        # fig6 times the real codecs with perf_counter; serving its
        # rendered wall seconds from disk would misreport hardware.
        assert experiment("fig6").cacheable is False
        assert all(
            spec.cacheable
            for spec in registry.all_experiments()
            if spec.id != "fig6"
        )


class TestRunExperiments:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["not-a-figure"], jobs=1)

    def test_serial_run(self):
        outcomes = run_experiments(["platform"], jobs=1, quick=True)
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].name == "platform"
        assert outcomes[0].rendered

    def test_parallel_preserves_order_and_output(self):
        names = ["platform", "platform"]
        parallel = run_experiments(names, jobs=2, quick=True)
        assert [outcome.name for outcome in parallel] == names
        assert all(outcome.ok for outcome in parallel)
        serial = run_experiments(["platform"], jobs=1, quick=True)
        # A worker process renders the same text the in-process path does.
        assert parallel[0].rendered == serial[0].rendered

    def test_jobs_capped_to_task_count(self):
        outcomes = run_experiments(["platform"], jobs=64, quick=True)
        assert len(outcomes) == 1 and outcomes[0].ok


class TestFailurePaths:
    """A broken cell becomes a structured failure; nothing else is lost."""

    def test_raising_cell_yields_exception_failure(self, fake_failing):
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.kind == "exception"
        assert failure.experiment == "fake" and failure.cell == "boom"
        assert "cell exploded" in failure.error

    def test_hung_cell_times_out_and_fails_structured(self, monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "fake", _FakeShardedHanging())
        start = time.monotonic()
        (outcome,) = run_experiments(
            ["fake"], jobs=2, task_timeout_s=0.5, task_retries=0
        )
        assert time.monotonic() - start < 60  # SIGKILLed, not waited out
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.kind == "timeout"
        assert failure.cell == "hang"
        assert "0.5s task timeout" in failure.error

    def test_worker_crash_yields_crash_failure(self, monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "fake", _FakeShardedCrashing())
        (outcome,) = run_experiments(
            ["fake"], jobs=2, task_retries=0, serial_fallback=False
        )
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.kind == "crash"
        assert failure.cell == "die"
        assert "died mid-task" in failure.error

    def test_serial_fallback_rescues_a_crashing_cell(self, monkeypatch):
        # The cell kills every *worker* it runs in; the final in-parent
        # attempt succeeds, so the experiment completes with no failure.
        monkeypatch.setitem(registry._REGISTRY, "fake", _FakeShardedCrashing())
        (outcome,) = run_experiments(
            ["fake"], jobs=2, task_retries=1, serial_fallback=True
        )
        assert outcome.ok and not outcome.failures
        assert outcome.result.partials["die"] == {"die": "DIE"}

    def test_one_bad_cell_loses_nothing_else(self, fake_failing):
        # The failing experiment still reports its good cells' payloads
        # to the merge stage, and suite-mates are untouched.
        outcomes = run_experiments(["fake", "platform"], jobs=2, quick=True)
        fake, platform = outcomes
        assert not fake.ok and platform.ok
        assert [f.cell for f in fake.failures] == ["boom"]

    def test_failures_surface_in_to_json_errors(self, fake_failing):
        (outcome,) = run_experiments(["fake"], jobs=2)
        payload = outcome.to_json()
        assert payload["ok"] is False
        (row,) = payload["errors"]
        assert row["kind"] == "exception" and row["cell"] == "boom"
        assert row["attempts"] == 1
        assert "cell exploded" in row["error"]

    def test_task_failure_json_shape(self):
        failure = TaskFailure(
            experiment="x", cell=None, kind="timeout", error="e", attempts=3
        )
        assert failure.to_json() == {
            "experiment": "x",
            "cell": None,
            "kind": "timeout",
            "error": "e",
            "attempts": 3,
        }

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="task_retries"):
            run_experiments(["platform"], jobs=2, task_retries=-1)


class TestInterruptDeterminism:
    """A SIGTERM mid-suite yields the same structured errors document
    no matter how many workers the interrupted run was using."""

    @staticmethod
    def _errors_doc(outcomes) -> str:
        # Exactly the CLI's --json errors section: every failure, sorted
        # the way __main__ sorts before serializing.
        failures = [f.to_json() for o in outcomes for f in o.failures]
        failures.sort(
            key=lambda f: (f["experiment"], f["cell"] or "", f["kind"])
        )
        return json.dumps(failures, indent=2, sort_keys=True)

    def test_sigterm_errors_identical_across_job_counts(self, monkeypatch):
        names = ["fake-a", "fake-b", "fake-c"]
        for name in names:
            monkeypatch.setitem(
                registry._REGISTRY, name, _FakeBlocking(name)
            )
        monkeypatch.setenv("REPRO_TEST_SIGTERM_TARGET", str(os.getpid()))
        docs = {}
        for jobs in (1, 4):
            outcomes = run_experiments(names, jobs=jobs)
            assert [o.name for o in outcomes] == names
            assert not any(o.ok for o in outcomes)
            assert all(
                f.kind == "interrupted"
                for o in outcomes for f in o.failures
            )
            docs[jobs] = self._errors_doc(outcomes)
        assert docs[1] == docs[4]
        rows = json.loads(docs[1])
        assert [row["experiment"] for row in rows] == names


class TestDefaultJobs:
    def test_at_least_one_and_bounded(self):
        jobs = default_jobs()
        assert 1 <= jobs <= 8

    def test_repro_jobs_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "12")  # env wins over the cap of 8
        assert default_jobs() == 12

    def test_invalid_repro_jobs_values_are_ignored(self, monkeypatch):
        for bad in ("0", "-2", "many", ""):
            monkeypatch.setenv("REPRO_JOBS", bad)
            assert 1 <= default_jobs() <= 8

    def test_jobs_hint_raises_the_cap_for_requesting_experiments(
        self, monkeypatch
    ):
        from repro.experiments import runner

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(
            runner.os, "sched_getaffinity", lambda _pid: set(range(32)),
            raising=False,
        )
        # The paper suite keeps the conservative cap; the fleet's hint
        # lifts it to the affinity mask; mixing takes the largest hint.
        assert default_jobs(["fig10"]) == 8
        assert default_jobs(["fleet"]) == 32
        assert default_jobs(["fig10", "fleet"]) == 32
        assert default_jobs() == 8

    def test_jobs_hint_never_exceeds_affinity(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(
            runner.os, "sched_getaffinity", lambda _pid: {0, 1},
            raising=False,
        )
        assert default_jobs(["fleet"]) == 2

    def test_repro_jobs_env_wins_over_hints(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs(["fleet"]) == 3


class TestOutcome:
    def test_ok_reflects_error(self):
        good = ExperimentOutcome(name="x", rendered="r", elapsed_s=0.1)
        bad = ExperimentOutcome(
            name="y", rendered="", elapsed_s=0.1, error="ValueError: nope"
        )
        assert good.ok and not bad.ok

    def test_to_json_excludes_timing(self, fake_sharded):
        (outcome,) = run_experiments(["fake"], jobs=2)
        payload = outcome.to_json()
        assert payload["id"] == "fake"
        assert payload["ok"] is True
        assert payload["result"] == {
            "partials": {
                "alpha": {"alpha": "ALPHA"},
                "beta": {"beta": "BETA"},
                "gamma": {"gamma": "GAMMA"},
            }
        }
        assert "elapsed_s" not in payload and "cached_tasks" not in payload
