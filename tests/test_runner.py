"""Parallel experiment runner tests (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, SHARDED_EXPERIMENTS, fig10, fig11
from repro.experiments import common
from repro.experiments.runner import (
    ExperimentOutcome,
    default_jobs,
    run_experiments,
)


class _FakeResult:
    """Mergeable result for the fake sharded experiment below."""

    def __init__(self, partials: dict) -> None:
        self.partials = partials

    def render(self) -> str:
        cells = ",".join(
            f"{key}={self.partials[key][key]}" for key in sorted(self.partials)
        )
        return f"cells[{cells}]"


class _FakeSharded:
    """Minimal sharded-protocol experiment (module-level: fork-visible)."""

    @staticmethod
    def cells(quick: bool = False) -> list[str]:
        return ["alpha", "beta", "gamma"]

    @staticmethod
    def run_cell(key: str, quick: bool = False) -> dict:
        if key == "boom":
            raise ValueError("cell exploded")
        return {key: key.upper()}

    @staticmethod
    def merge(partials: dict, quick: bool = False) -> _FakeResult:
        return _FakeResult(partials)


def _fake_run(quick: bool = False) -> _FakeResult:
    return _FakeSharded.merge(
        {key: _FakeSharded.run_cell(key, quick) for key in _FakeSharded.cells(quick)}
    )


class _FakeShardedFailing(_FakeSharded):
    @staticmethod
    def cells(quick: bool = False) -> list[str]:
        return ["alpha", "boom"]


@pytest.fixture()
def fake_sharded(monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "fake", _fake_run)
    monkeypatch.setitem(SHARDED_EXPERIMENTS, "fake", _FakeSharded)


class TestShardedScheduling:
    def test_fig10_and_fig11_expose_matrix_cells(self):
        assert fig10.cells(quick=True)[:2] == ["DRAM", "ZRAM"]
        assert len(fig10.cells(quick=True)) == 4
        # fig11 normalizes to ZRAM, so DRAM (no codec CPU) is not a cell.
        assert "DRAM" not in fig11.cells(quick=True)
        assert "ZRAM" in fig11.cells(quick=True)
        assert len(fig11.cells(quick=False)) > len(fig11.cells(quick=True))

    def test_serial_and_sharded_render_identically(self, fake_sharded):
        serial = run_experiments(["fake"], jobs=1)
        sharded = run_experiments(["fake"], jobs=2)
        assert serial[0].ok and sharded[0].ok
        assert serial[0].rendered == sharded[0].rendered
        assert serial[0].cells == 1  # one worker: runs whole, unsharded
        assert sharded[0].cells == 3

    def test_cell_failure_surfaces_as_experiment_error(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "fake", _fake_run)
        monkeypatch.setitem(SHARDED_EXPERIMENTS, "fake", _FakeShardedFailing)
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert not outcome.ok
        assert "cell exploded" in outcome.error

    def test_mixed_suite_keeps_request_order(self, fake_sharded):
        outcomes = run_experiments(["platform", "fake"], jobs=2, quick=True)
        assert [outcome.name for outcome in outcomes] == ["platform", "fake"]
        assert all(outcome.ok for outcome in outcomes)

    def test_empty_cell_list_falls_back_to_whole_run(self, monkeypatch):
        class _NoCells(_FakeSharded):
            @staticmethod
            def cells(quick: bool = False) -> list[str]:
                return []

        monkeypatch.setitem(EXPERIMENTS, "fake", _fake_run)
        monkeypatch.setitem(SHARDED_EXPERIMENTS, "fake", _NoCells)
        (outcome,) = run_experiments(["fake"], jobs=2)
        assert outcome.ok and outcome.cells == 1
        assert outcome.rendered == _fake_run().render()


@pytest.fixture()
def persistent_caches(monkeypatch, tmp_path):
    """Point the (normally disabled-in-tests) disk caches at a tmp dir.

    The runner's workers re-read ``REPRO_CACHE_DIR`` through the
    ``lru_cache``'d accessors, so both are cleared on entry and exit —
    exit restores the hermetic ``off`` state the conftest establishes.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()
    yield tmp_path / "cache"
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()


class TestResultCacheIntegration:
    def test_second_sharded_run_serves_cells_from_cache(
        self, fake_sharded, persistent_caches
    ):
        (cold,) = run_experiments(["fake"], jobs=2)
        assert cold.ok and cold.cells == 3 and cold.cached_tasks == 0
        (warm,) = run_experiments(["fake"], jobs=2)
        assert warm.ok and warm.cells == 3 and warm.cached_tasks == 3
        assert warm.rendered == cold.rendered

    def test_second_serial_run_serves_whole_experiment_from_cache(
        self, persistent_caches
    ):
        (cold,) = run_experiments(["platform"], jobs=1, quick=True)
        assert cold.ok and cold.cached_tasks == 0
        (warm,) = run_experiments(["platform"], jobs=1, quick=True)
        assert warm.ok and warm.cached_tasks == 1
        assert warm.rendered == cold.rendered

    def test_failed_task_is_not_cached(self, monkeypatch, persistent_caches):
        monkeypatch.setitem(EXPERIMENTS, "fake", _fake_run)
        monkeypatch.setitem(SHARDED_EXPERIMENTS, "fake", _FakeShardedFailing)
        (first,) = run_experiments(["fake"], jobs=2)
        assert not first.ok
        (second,) = run_experiments(["fake"], jobs=2)
        assert not second.ok
        # Only the successful cell may be served from cache; the failed
        # one must re-run (and fail again), never be memoized.
        assert second.cached_tasks <= 1

    def test_disabled_cache_never_reports_cached_tasks(self, fake_sharded):
        # conftest keeps REPRO_CACHE_DIR=off for hermetic tests.
        for _ in range(2):
            (outcome,) = run_experiments(["fake"], jobs=2)
            assert outcome.ok and outcome.cached_tasks == 0

    def test_live_timing_experiments_are_never_served_from_cache(
        self, monkeypatch, fake_sharded, persistent_caches
    ):
        # Experiments in UNCACHED_EXPERIMENTS embed real wall-clock
        # measurements; a warm run must re-measure, not replay.
        import repro.experiments as experiments

        monkeypatch.setattr(experiments, "UNCACHED_EXPERIMENTS", {"fake"})
        for _ in range(2):
            (outcome,) = run_experiments(["fake"], jobs=2)
            assert outcome.ok and outcome.cached_tasks == 0

    def test_fig6_is_marked_uncacheable(self):
        # fig6 times the real codecs with perf_counter; serving its
        # rendered wall seconds from disk would misreport hardware.
        from repro.experiments import UNCACHED_EXPERIMENTS

        assert "fig6" in UNCACHED_EXPERIMENTS


class TestRunExperiments:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["not-a-figure"], jobs=1)

    def test_serial_run(self):
        outcomes = run_experiments(["platform"], jobs=1, quick=True)
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].name == "platform"
        assert outcomes[0].rendered

    def test_parallel_preserves_order_and_output(self):
        names = ["platform", "platform"]
        parallel = run_experiments(names, jobs=2, quick=True)
        assert [outcome.name for outcome in parallel] == names
        assert all(outcome.ok for outcome in parallel)
        serial = run_experiments(["platform"], jobs=1, quick=True)
        # A worker process renders the same text the in-process path does.
        assert parallel[0].rendered == serial[0].rendered

    def test_jobs_capped_to_task_count(self):
        outcomes = run_experiments(["platform"], jobs=64, quick=True)
        assert len(outcomes) == 1 and outcomes[0].ok


class TestDefaultJobs:
    def test_at_least_one_and_bounded(self):
        jobs = default_jobs()
        assert 1 <= jobs <= 8


class TestOutcome:
    def test_ok_reflects_error(self):
        good = ExperimentOutcome(name="x", rendered="r", elapsed_s=0.1)
        bad = ExperimentOutcome(
            name="y", rendered="", elapsed_s=0.1, error="ValueError: nope"
        )
        assert good.ok and not bad.ok
