"""Parallel experiment runner tests (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    ExperimentOutcome,
    default_jobs,
    run_experiments,
)


class TestRunExperiments:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["not-a-figure"], jobs=1)

    def test_serial_run(self):
        outcomes = run_experiments(["platform"], jobs=1, quick=True)
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].name == "platform"
        assert outcomes[0].rendered

    def test_parallel_preserves_order_and_output(self):
        names = ["platform", "platform"]
        parallel = run_experiments(names, jobs=2, quick=True)
        assert [outcome.name for outcome in parallel] == names
        assert all(outcome.ok for outcome in parallel)
        serial = run_experiments(["platform"], jobs=1, quick=True)
        # A worker process renders the same text the in-process path does.
        assert parallel[0].rendered == serial[0].rendered

    def test_jobs_capped_to_task_count(self):
        outcomes = run_experiments(["platform"], jobs=64, quick=True)
        assert len(outcomes) == 1 and outcomes[0].ok


class TestDefaultJobs:
    def test_at_least_one_and_bounded(self):
        jobs = default_jobs()
        assert 1 <= jobs <= 8


class TestOutcome:
    def test_ok_reflects_error(self):
        good = ExperimentOutcome(name="x", rendered="r", elapsed_s=0.1)
        bad = ExperimentOutcome(
            name="y", rendered="", elapsed_s=0.1, error="ValueError: nope"
        )
        assert good.ok and not bad.ok
