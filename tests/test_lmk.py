"""Memory-pressure lifecycle tests (repro.lmk).

Four properties the suite pins:

- pressure off is *free*: an inert plan (thresholds no sample can
  cross) changes not a single measured number, and the config layer
  rejects malformed knobs up front;
- the killer is deterministic: same seed, same trace, same kills —
  and a kill tears the victim's state down through the same epoch
  machinery as ordinary eviction, so the runtime auditor stays green
  and the next relaunch pays the counted process re-creation cost;
- hard exhaustion degrades, never crashes: an overfull zpool becomes
  an emergency kill, a counted chunk drop, or a counted admission
  refusal depending on policy;
- the ledger balances: every kill, drop, and refusal the counters
  report traces back to a decision the plan recorded.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.audit import InvariantAuditor
from repro.core import PlatformConfig, PressureConfig
from repro.errors import ConfigError
from repro.lmk import PressurePlan, install_pressure
from repro.sim import make_system, run_light_scenario
from repro.units import KIB, MIB
from tests.conftest import TINY_PROFILES, build_tiny, tiny_platform

#: Thresholds aggressive enough that the tiny pressured platform
#: (0.55 headroom) demonstrably escalates and kills within a short run.
_HOT = dict(some_threshold=0.01, full_threshold=0.05, kswapd_boost_max=2)

#: Thresholds no PSI sample can ever cross: the inert plan.
_INERT = PressureConfig(
    some_threshold=1.0, full_threshold=1.0, kswapd_boost_max=1
)


def _pressured(scheme_name, trace, policy, config=None, platform=None):
    """A tiny system with an installed plan; returns (system, plan)."""
    if platform is None:
        total = sum(app.total_bytes() for app in trace.apps)
        platform = tiny_platform(total)
    system = make_system(scheme_name, trace, platform=platform)
    plan = PressurePlan(
        config if config is not None
        else PressureConfig(policy=policy, **_HOT)
    )
    assert install_pressure(system, plan)
    return system, plan


class TestPressureConfigValidation:
    def test_defaults_are_valid(self):
        config = PressureConfig()
        assert config.policy == "hybrid"
        assert config.some_threshold <= config.full_threshold

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError, match="policy"):
            PressureConfig(policy="panic")

    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ConfigError, match="threshold"):
            PressureConfig(some_threshold=0.5, full_threshold=0.2)

    @pytest.mark.parametrize("field,value", [
        ("some_threshold", -0.1),
        ("full_threshold", 1.5),
        ("kswapd_boost_max", 0),
        ("oom_priority_weight", -1.0),
        ("oom_recency_weight", float("nan")),
        ("oom_priority_weight", float("inf")),
        ("min_resident_apps", -1),
    ])
    def test_rejects_out_of_range_knobs(self, field, value):
        with pytest.raises(ConfigError):
            PressureConfig(**{field: value})


class TestOffIdentity:
    """An installed-but-inert plan must not perturb the simulation."""

    @pytest.mark.parametrize("scheme", ["ZRAM", "Ariadne", "SWAP"])
    def test_inert_plan_matches_no_plan(self, tiny_trace, scheme):
        bare = run_light_scenario(
            build_tiny(scheme, tiny_trace), duration_s=3.0
        )
        system, plan = _pressured(scheme, tiny_trace, "hybrid", _INERT)
        inert = run_light_scenario(system, duration_s=3.0)
        assert [r.latency_ns for r in inert.relaunches] == [
            r.latency_ns for r in bare.relaunches
        ]
        # The inert plan observes (PSI samples) but never acts.
        counters = system.ctx.counters
        for name in ("lmk_kills", "pressure_boost_evictions",
                     "pressure_escalations", "pressure_overflow_drops",
                     "pressure_admission_refusals", "lmk_cold_relaunches"):
            assert counters.get(name) == 0, name
        assert plan.kswapd_boost == 1
        assert plan.ledger(counters)["consistent"]

    def test_dram_baseline_declines_installation(self, tiny_trace):
        system = build_tiny("DRAM", tiny_trace)
        assert not install_pressure(system, PressurePlan())
        assert system.scheme._pressure is None


class TestKillsDeterministic:
    def test_lmk_policy_kills_under_pressure(self, tiny_trace):
        system, plan = _pressured("ZRAM", tiny_trace, "lmk")
        run_light_scenario(system, duration_s=6.0)
        counters = system.ctx.counters
        assert counters.get("lmk_kills") >= 1
        assert counters.get("lmk_pages_killed") > 0
        assert plan.ledger(counters)["consistent"]

    def test_identical_runs_are_bit_identical(self, tiny_trace):
        runs = []
        for _ in range(2):
            system, plan = _pressured("ZRAM", tiny_trace, "lmk")
            result = run_light_scenario(system, duration_s=6.0)
            runs.append((
                [r.latency_ns for r in result.relaunches],
                system.ctx.counters.as_dict(),
                plan.ledger(system.ctx.counters),
            ))
        assert runs[0] == runs[1]

    def test_swap_policy_never_kills(self, tiny_trace):
        system, plan = _pressured("ZRAM", tiny_trace, "swap")
        run_light_scenario(system, duration_s=6.0)
        counters = system.ctx.counters
        assert counters.get("lmk_kills") == 0
        assert plan.ledger(counters)["consistent"]

    def test_hybrid_escalates_before_killing(self, tiny_trace):
        # Any hybrid kill must postdate boost saturation: if a kill
        # happened, escalations were recorded first.
        system, plan = _pressured("ZRAM", tiny_trace, "hybrid")
        run_light_scenario(system, duration_s=6.0)
        counters = system.ctx.counters
        if counters.get("lmk_kills") > 0:
            assert counters.get("pressure_escalations") > 0
        assert plan.ledger(counters)["consistent"]


class TestKillTeardown:
    @pytest.mark.parametrize("scheme", ["ZRAM", "Ariadne", "SWAP"])
    def test_terminate_app_keeps_auditor_green(self, tiny_trace, scheme):
        system, plan = _pressured(scheme, tiny_trace, "lmk", _INERT)
        run_light_scenario(system, duration_s=3.0)
        victim = plan.select_victim(system.scheme)
        assert victim is not None
        freed = system.scheme.terminate_app(victim)
        assert freed > 0
        assert not system.scheme.app_has_reclaimable(victim)
        InvariantAuditor().audit(system.scheme)

    def test_killed_app_relaunch_pays_process_create(self, tiny_trace):
        system, plan = _pressured("ZRAM", tiny_trace, "lmk", _INERT)
        system.launch_all(settle_seconds=2.0)
        victim = system.apps[0]
        plan._execute_kill(system.scheme, victim.uid)
        assert system.app_killed(victim.uid)
        result = system.relaunch(victim.name)
        create_ns = system.ctx.platform.process_create_ns
        assert result.breakdown.process_create_ns == create_ns
        assert result.latency_ns >= create_ns
        assert not victim.killed  # one cold launch, then back to normal
        assert system.ctx.counters.get("lmk_cold_relaunches") == 1
        again = system.relaunch(victim.name)
        assert again.breakdown.process_create_ns == 0

    def test_foreground_and_floor_protected(self, tiny_trace):
        system, plan = _pressured(
            "ZRAM", tiny_trace, "lmk",
            PressureConfig(policy="lmk", min_resident_apps=len(
                tiny_trace.apps
            ), **_HOT),
        )
        system.launch_all(settle_seconds=2.0)
        # Floor equals the app count: nothing is ever killable.
        assert plan.select_victim(system.scheme) is None

    def test_victim_never_foreground(self, tiny_trace):
        system, plan = _pressured("ZRAM", tiny_trace, "lmk", _INERT)
        system.launch_all(settle_seconds=2.0)
        foreground = system.scheme._foreground_uid
        victim = plan.select_victim(system.scheme)
        assert victim is not None and victim != foreground


class TestOomScore:
    """Victim ordering: app class dominates, LRU age breaks ties."""

    class _StubScheme:
        def __init__(self, uids, foreground=None):
            self._app_lru = OrderedDict((uid, None) for uid in uids)
            self._foreground_uid = foreground

        def app_has_reclaimable(self, uid):
            return True

    def test_higher_class_score_wins(self):
        plan = PressurePlan(PressureConfig(policy="lmk"))
        plan.set_app_class(1, "game")     # score 7
        plan.set_app_class(2, "system")   # score 0
        plan.set_app_class(3, "browser")  # score 5
        # LRU order: 1 oldest ... 3 newest; game still outranks all.
        scheme = self._StubScheme([2, 3, 1])
        assert plan.select_victim(scheme) == 1

    def test_ties_resolve_to_least_recently_used(self):
        plan = PressurePlan(PressureConfig(policy="lmk"))
        for uid in (1, 2, 3):
            plan.set_app_class(uid, "cached")
        scheme = self._StubScheme([2, 1, 3])
        assert plan.select_victim(scheme) == 2  # first in LRU order

    def test_unknown_class_rejected(self):
        plan = PressurePlan()
        with pytest.raises(ValueError, match="unknown app class"):
            plan.set_app_class(1, "daemonized")

    def test_recency_weight_can_outvote_class(self):
        plan = PressurePlan(PressureConfig(
            policy="lmk", oom_priority_weight=1.0, oom_recency_weight=100.0
        ))
        plan.set_app_class(1, "cached")  # score 8 but recently used
        plan.set_app_class(2, "social")  # score 4 and oldest
        scheme = self._StubScheme([2, 1])
        assert plan.select_victim(scheme) == 2


class TestGracefulDegradation:
    """Zpool exhaustion becomes policy, not an unhandled error."""

    def _starved_platform(self, trace):
        total = sum(app.total_bytes() for app in trace.apps)
        return PlatformConfig(
            dram_bytes=max(64 * KIB, int(total * 0.55)),
            zpool_bytes=64 * KIB,  # far too small for the workload
            swap_bytes=4 * MIB,
        )

    @pytest.mark.parametrize("policy", ["lmk", "swap", "hybrid"])
    def test_zram_survives_zpool_starvation(self, tiny_trace, policy):
        # ZRAM has no flash writeback: a starved zpool used to be a
        # hard MemoryPressureError.  Under a plan it must complete.
        system, plan = _pressured(
            "ZRAM", tiny_trace, policy,
            platform=self._starved_platform(tiny_trace),
        )
        result = run_light_scenario(system, duration_s=4.0)
        assert result.relaunches  # the scenario actually ran
        counters = system.ctx.counters
        relieved = (
            counters.get("lmk_kills")
            + counters.get("pressure_overflow_drops")
            + counters.get("pressure_admission_refusals")
        )
        assert relieved > 0
        assert plan.ledger(counters)["consistent"]

    def test_admission_refusal_counts_pages(self, tiny_trace):
        system, plan = _pressured(
            "ZRAM", tiny_trace, "swap",
            platform=self._starved_platform(tiny_trace),
        )
        run_light_scenario(system, duration_s=4.0)
        counters = system.ctx.counters
        if counters.get("pressure_admission_refusals"):
            assert counters.get("pressure_pages_refused") >= counters.get(
                "pressure_admission_refusals"
            )
        assert plan.ledger(counters)["consistent"]

    def test_ledger_reports_decision_counts(self, tiny_trace):
        system, plan = _pressured("ZRAM", tiny_trace, "lmk")
        run_light_scenario(system, duration_s=6.0)
        ledger = plan.ledger(system.ctx.counters)
        assert ledger["lmk_kills"] == (
            ledger["proactive_kills"] + ledger["emergency_kills"]
        )
        assert ledger["lmk_cold_relaunches"] <= ledger["lmk_kills"]
        assert ledger["consistent"]
