"""Persistent artifact cache tests (repro.cache)."""

from __future__ import annotations

import pytest

from repro.cache import (
    ArtifactCache,
    ExperimentResultCache,
    PersistentSizeCache,
    code_fingerprint,
    default_cache_root,
)
from repro.compression import get_compressor
from repro.compression.chunking import SizeCache, chunk_compress, payload_digest
from repro.trace.generate import GENERATOR_VERSION, TraceGenerator
from repro.workload.profiles import APP_CATALOG


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestSizeStore:
    def test_roundtrip(self, cache):
        entries = {payload_digest(bytes([i]) * 64): 10 + i for i in range(50)}
        cache.append_sizes("lzo", 4096, entries)
        assert cache.load_sizes("lzo", 4096) == entries

    def test_appends_accumulate(self, cache):
        first = {payload_digest(b"a" * 32): 7}
        second = {payload_digest(b"b" * 32): 9}
        cache.append_sizes("lzo", 4096, first)
        cache.append_sizes("lzo", 4096, second)
        assert cache.load_sizes("lzo", 4096) == {**first, **second}

    def test_pairs_are_isolated(self, cache):
        cache.append_sizes("lzo", 4096, {payload_digest(b"x" * 16): 3})
        assert cache.load_sizes("lzo", 2048) == {}
        assert cache.load_sizes("lz4", 4096) == {}

    def test_missing_file_is_empty(self, cache):
        assert cache.load_sizes("lzo", 512) == {}

    def test_truncated_tail_record_is_ignored(self, cache):
        entries = {payload_digest(b"q" * 16): 5}
        cache.append_sizes("lzo", 4096, entries)
        path = cache._sizes_path("lzo", 4096)
        path.write_bytes(path.read_bytes() + b"\x01\x02\x03")  # torn write
        assert cache.load_sizes("lzo", 4096) == entries

    def test_torn_tail_is_truncated_on_disk(self, cache):
        # Loading repairs the file so the next O_APPEND flush starts on
        # a record boundary instead of extending the tear forever.
        entries = {payload_digest(b"r" * 16): 6}
        cache.append_sizes("lzo", 4096, entries)
        path = cache._sizes_path("lzo", 4096)
        whole = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\xff" * 5)
        cache.load_sizes("lzo", 4096)
        assert path.stat().st_size == whole
        more = {payload_digest(b"s" * 16): 8}
        cache.append_sizes("lzo", 4096, more)
        assert cache.load_sizes("lzo", 4096) == {**entries, **more}


class TestTraceStore:
    def test_workload_roundtrips_exactly(self, cache):
        trace = TraceGenerator(seed=11).generate_workload(
            profiles=APP_CATALOG[:2], n_sessions=2
        )
        key = ArtifactCache.trace_key(
            seed=11,
            profiles=tuple(APP_CATALOG[:2]),
            n_sessions=2,
            duration_s=300.0,
            generator_version=GENERATOR_VERSION,
        )
        cache.store_workload(key, trace)
        loaded = cache.load_workload(key)
        # Exact equality matters: a cached trace must regenerate the very
        # same figures as a generated one.
        assert loaded == trace

    def test_miss_returns_none(self, cache):
        assert cache.load_workload("0" * 32) is None

    def test_corrupt_artifact_is_a_miss_and_removed(self, cache):
        key = "f" * 32
        path = cache._trace_path(key)
        path.write_bytes(b"not a trace file at all")
        assert cache.load_workload(key) is None
        assert not path.exists()

    def test_key_depends_on_inputs(self):
        base = dict(
            seed=1,
            profiles=tuple(APP_CATALOG[:2]),
            n_sessions=2,
            duration_s=300.0,
            generator_version=GENERATOR_VERSION,
        )
        key = ArtifactCache.trace_key(**base)
        assert ArtifactCache.trace_key(**{**base, "seed": 2}) != key
        assert ArtifactCache.trace_key(**{**base, "n_sessions": 3}) != key
        assert (
            ArtifactCache.trace_key(
                **{**base, "generator_version": GENERATOR_VERSION + 1}
            )
            != key
        )


class FailingCodec:
    """Codec double that forbids real measurement (must be cache-served)."""

    name = "lzo"

    def compressed_size(self, data: bytes) -> int:
        raise AssertionError("size should have come from the disk cache")

    def compress(self, data: bytes) -> bytes:
        raise AssertionError("compress should not run on a cached payload")


class TestPersistentSizeCache:
    def test_miss_measures_and_flush_persists(self, cache):
        codec = get_compressor("lzo")
        sizes = PersistentSizeCache(cache)
        payload = b"persistent payload " * 400
        measured = sizes.compressed_size(codec, payload, 4096)
        assert measured == chunk_compress(codec, payload, 4096).stored_len
        assert sizes.flush() > 0
        assert sizes.flush() == 0  # nothing newly dirty

        # A fresh process (new instance) serves the size from disk: the
        # codec is never asked to measure anything.
        reloaded = PersistentSizeCache(cache)
        assert reloaded.compressed_size(FailingCodec(), payload, 4096) == measured
        assert reloaded.disk_entries_loaded > 0

    def test_matches_plain_size_cache(self, cache):
        codec = get_compressor("lzo")
        persistent = PersistentSizeCache(cache)
        plain = SizeCache()
        payloads = [bytes([i % 7]) * 600 + b"tail" * i for i in range(12)]
        for payload in payloads:
            assert persistent.compressed_size(
                codec, payload, 512
            ) == plain.compressed_size(codec, payload, 512)

    def test_clear_resets_memory_not_disk(self, cache):
        codec = get_compressor("lzo")
        sizes = PersistentSizeCache(cache)
        payload = b"clearable " * 300
        sizes.compressed_size(codec, payload, 2048)
        sizes.flush()
        sizes.clear()
        assert len(sizes) == 0
        fresh = PersistentSizeCache(cache)
        assert fresh.compressed_size(FailingCodec(), payload, 2048) > 0


class TestExperimentResultCache:
    def test_roundtrip_cell_payload(self, tmp_path):
        results = ExperimentResultCache(tmp_path / "results", fingerprint="f1")
        payload = {"YouTube": 123.456, "Twitter": 7.89}
        assert results.load("fig2", "ZRAM", {"quick": True}) is None
        results.store("fig2", "ZRAM", {"quick": True}, payload)
        assert results.load("fig2", "ZRAM", {"quick": True}) == payload
        assert results.hits == 1 and results.misses == 1

    def test_key_separates_cell_args_and_experiment(self, tmp_path):
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", {"quick": True}, "payload")
        assert results.load("fig2", "SWAP", {"quick": True}) is None
        assert results.load("fig2", "ZRAM", {"quick": False}) is None
        assert results.load("fig3", "ZRAM", {"quick": True}) is None
        assert results.load("fig2", None, {"quick": True}) is None

    def test_fingerprint_change_invalidates_everything(self, tmp_path):
        old = ExperimentResultCache(tmp_path, fingerprint="before-edit")
        old.store("fig10", "DRAM", {"quick": True}, [1, 2, 3])
        new = ExperimentResultCache(tmp_path, fingerprint="after-edit")
        assert new.load("fig10", "DRAM", {"quick": True}) is None
        # The old code version still sees its own result.
        assert old.load("fig10", "DRAM", {"quick": True}) == [1, 2, 3]

    def test_corrupt_payload_is_a_miss_and_removed(self, tmp_path):
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", None, "ok")
        path = results._path("fig2", "ZRAM", None)
        path.write_bytes(b"definitely not a pickle")
        assert results.load("fig2", "ZRAM", None) is None
        assert not path.exists()

    def test_corrupt_entry_is_quarantined_and_recomputable(self, tmp_path):
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", None, "ok")
        path = results._path("fig2", "ZRAM", None)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # one flipped payload bit: digest must reject it
        path.write_bytes(bytes(raw))
        assert results.load("fig2", "ZRAM", None) is None
        assert results.corrupt_entries == 1
        # Evidence survives for inspection, outside the loadable namespace.
        assert path.with_suffix(".corrupt").exists()
        # The caller recomputes and the slot works again.
        results.store("fig2", "ZRAM", None, "recomputed")
        assert results.load("fig2", "ZRAM", None) == "recomputed"

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        # A torn write can cut the envelope anywhere — mid-magic,
        # mid-digest, or mid-pickle (the EOFError/UnpicklingError case).
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", None, {"payload": list(range(100))})
        path = results._path("fig2", "ZRAM", None)
        raw = path.read_bytes()
        for cut in (3, 10, len(raw) // 2, len(raw) - 1):
            path.write_bytes(raw[:cut])
            assert results.load("fig2", "ZRAM", None) is None
            path.with_suffix(".corrupt").unlink(missing_ok=True)
        assert results.corrupt_entries == 4

    def test_empty_entry_is_a_miss(self, tmp_path):
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", None, "ok")
        results._path("fig2", "ZRAM", None).write_bytes(b"")
        assert results.load("fig2", "ZRAM", None) is None

    def test_healthy_entries_count_no_corruption(self, tmp_path):
        results = ExperimentResultCache(tmp_path, fingerprint="f1")
        results.store("fig2", "ZRAM", None, "ok")
        assert results.load("fig2", "ZRAM", None) == "ok"
        assert results.corrupt_entries == 0

    def test_default_fingerprint_is_stable_within_a_tree(self, tmp_path):
        a = ExperimentResultCache(tmp_path / "a")
        b = ExperimentResultCache(tmp_path / "b")
        assert a.fingerprint == b.fingerprint == code_fingerprint()
        assert len(a.fingerprint) == 32  # blake2b-16 hex


class TestDefaultRoot:
    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "", "none", "DISABLED"):
            monkeypatch.setenv("REPRO_CACHE_DIR", value)
            assert default_cache_root() is None

    def test_explicit_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_root() == tmp_path / "c"

    def test_unset_uses_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        root = default_cache_root()
        assert root is not None and root.name == "ariadne-repro"
