"""Runtime invariant-auditor tests (repro.audit, REPRO_AUDIT=1).

The auditor's job is to catch *silent* O(1)-counter drift — bugs the
goldens only see if the drift changes a reported figure.  So the tests
run it two ways: against healthy systems, where every check must pass
while scenarios run, and against deliberately planted drift, where it
must raise a context-rich :class:`InvariantViolationError`.
"""

from __future__ import annotations

import pytest

from repro.audit import (
    AUDIT_ENV,
    AUDIT_INTERVAL_ENV,
    InvariantAuditor,
    audit_enabled,
    auditor_from_env,
)
from repro.errors import InvariantViolationError
from repro.sim import run_light_scenario
from tests.conftest import build_tiny


class TestEnvGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert not audit_enabled()
        assert auditor_from_env() is None

    @pytest.mark.parametrize("value", ["1", "true", "ON", " yes "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(AUDIT_ENV, value)
        assert audit_enabled()
        assert auditor_from_env() is not None

    @pytest.mark.parametrize("value", ["0", "off", "no", "", "2"])
    def test_everything_else_stays_off(self, monkeypatch, value):
        monkeypatch.setenv(AUDIT_ENV, value)
        assert auditor_from_env() is None

    def test_interval_env_parsed_and_clamped(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        monkeypatch.setenv(AUDIT_INTERVAL_ENV, "5")
        assert auditor_from_env().interval == 5
        monkeypatch.setenv(AUDIT_INTERVAL_ENV, "0")
        assert auditor_from_env().interval == 1
        monkeypatch.setenv(AUDIT_INTERVAL_ENV, "junk")
        assert auditor_from_env().interval == 1

    def test_scheme_wires_auditor_from_env(self, monkeypatch, tiny_trace):
        monkeypatch.setenv(AUDIT_ENV, "1")
        system = build_tiny("Ariadne", tiny_trace)
        assert system.scheme._auditor is not None
        monkeypatch.delenv(AUDIT_ENV)
        assert build_tiny("Ariadne", tiny_trace).scheme._auditor is None


class TestIntervalSampling:
    def test_checkpoint_audits_every_nth_call(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        run_light_scenario(system, duration_s=2.0)
        auditor = InvariantAuditor(interval=3)
        for _ in range(7):
            auditor.checkpoint(system.scheme)
        assert auditor.audits_performed == 2

    def test_interval_must_be_positive(self):
        with pytest.raises(InvariantViolationError):
            InvariantAuditor(interval=0)


class TestHealthySystems:
    @pytest.mark.parametrize("scheme", ["DRAM", "ZRAM", "SWAP", "Ariadne"])
    def test_scenario_under_audit_passes(self, monkeypatch, tiny_trace, scheme):
        # The real wiring: every kswapd wakeup checkpoints, interval 1
        # audits on each.  A healthy run must finish without a raise
        # and must have actually audited (kswapd runs under pressure).
        monkeypatch.setenv(AUDIT_ENV, "1")
        system = build_tiny(scheme, tiny_trace)
        run_light_scenario(system, duration_s=3.0)
        if scheme != "DRAM":  # DRAM has nothing to reclaim: no wakeups
            assert system.scheme._auditor.audits_performed > 0

    def test_audited_run_matches_unaudited(self, monkeypatch, tiny_trace):
        # Auditing observes; it must never perturb the simulation.
        baseline = run_light_scenario(
            build_tiny("Ariadne", tiny_trace), duration_s=3.0
        )
        monkeypatch.setenv(AUDIT_ENV, "1")
        audited = run_light_scenario(
            build_tiny("Ariadne", tiny_trace), duration_s=3.0
        )
        assert [r.latency_ns for r in audited.relaunches] == [
            r.latency_ns for r in baseline.relaunches
        ]
        assert audited.counters == baseline.counters


class TestPlantedDrift:
    """Each planted bug models a forgotten hook on a real transition."""

    @pytest.fixture()
    def warmed(self, tiny_trace):
        system = build_tiny("Ariadne", tiny_trace)
        run_light_scenario(system, duration_s=2.0)
        return system.scheme

    def test_clean_state_passes(self, warmed):
        InvariantAuditor().audit(warmed)

    def test_catches_free_dram_counter_drift(self, warmed):
        warmed._free_dram_bytes += 4096  # a missed accounting hook
        with pytest.raises(InvariantViolationError, match="free-DRAM"):
            InvariantAuditor().audit(warmed)

    def test_catches_pool_occupancy_drift(self, warmed):
        warmed.ctx.dram._used_bytes += 1  # pool counter out of step
        with pytest.raises(InvariantViolationError, match="used_bytes"):
            InvariantAuditor().audit(warmed)

    def test_catches_nonresident_count_drift(self, warmed):
        uid = next(iter(warmed._nonresident_pages))
        warmed._nonresident_pages[uid] += 1  # an uncounted eviction
        with pytest.raises(
            InvariantViolationError, match=f"app {uid} non-resident"
        ):
            InvariantAuditor().audit(warmed)

    def test_catches_epoch_stamp_ahead_of_global(self, warmed):
        uid = next(iter(warmed._nonresident_pages))
        warmed._app_eviction_epoch[uid] = warmed.eviction_epoch + 10
        with pytest.raises(InvariantViolationError, match="ahead of"):
            InvariantAuditor().audit(warmed)

    def test_catches_stale_residency_verification(self, warmed):
        # Claim an app with evicted pages is verified fully resident:
        # the epoch fast path would then silently skip its faults.
        uid = next(
            uid
            for uid, count in warmed._nonresident_pages.items()
            if count > 0
        )
        warmed._resident_verified_epoch[uid] = warmed._app_eviction_epoch.get(
            uid, 0
        )
        with pytest.raises(
            InvariantViolationError, match="verified fully resident"
        ):
            InvariantAuditor().audit(warmed)

    def test_catches_lru_membership_leak(self, warmed):
        # A resident page missing from every LRU list is unreclaimable.
        organizer, page = next(
            (org, page)
            for org in warmed._organizers.values()
            for page in org.resident_pages()
        )
        organizer.remove_page(page)  # forgotten re-add after a touch
        with pytest.raises(InvariantViolationError, match="LRU"):
            InvariantAuditor().audit(warmed)

    def test_catches_zpool_class_tally_drift(self, warmed):
        # A free that forgot to decrement its size class's count.
        zpool = warmed.ctx.zpool
        cls = next(iter(zpool._class_tally))
        zpool._class_tally[cls] += 1
        with pytest.raises(
            InvariantViolationError, match="size-class tally drifted"
        ):
            InvariantAuditor().audit(warmed)

    def test_catches_zpool_class_tally_missing_class(self, warmed):
        # A store that forgot to count its class entirely.
        zpool = warmed.ctx.zpool
        cls = next(iter(zpool._class_tally))
        del zpool._class_tally[cls]
        with pytest.raises(
            InvariantViolationError, match="size-class tally drifted"
        ):
            InvariantAuditor().audit(warmed)

    @pytest.fixture()
    def swap_warmed(self, tiny_trace):
        system = build_tiny("SWAP", tiny_trace)
        run_light_scenario(system, duration_s=2.0)
        scheme = system.scheme
        assert scheme.ctx.flash_swap._slots  # the drift tests need slots
        return scheme

    def test_swap_clean_state_passes(self, swap_warmed):
        InvariantAuditor().audit(swap_warmed)

    def test_catches_leaked_swap_slot(self, swap_warmed):
        # A chunk drop that forgot to free its slot: the slot is live
        # in the area but no chunk owns it.
        area = swap_warmed.ctx.flash_swap
        slot_id = next(iter(area._slots))
        chunk = next(
            c for c in swap_warmed._chunks.values()
            if c.flash_slot == slot_id
        )
        del swap_warmed._chunks[chunk.chunk_id]
        with pytest.raises(InvariantViolationError, match="leak"):
            InvariantAuditor()._audit_swap_slots(swap_warmed)

    def test_catches_double_freed_swap_slot(self, swap_warmed):
        # A slot freed while a chunk still references it: that chunk's
        # next fault would read freed storage.
        area = swap_warmed.ctx.flash_swap
        slot_id = next(
            c.flash_slot
            for c in swap_warmed._chunks.values()
            if c.in_flash and c.flash_slot is not None
        )
        del area._slots[slot_id]
        with pytest.raises(InvariantViolationError, match="double free"):
            InvariantAuditor().audit(swap_warmed)
