"""Trace-generator tests: calibration and structural invariants."""

from __future__ import annotations

import statistics

import pytest

from repro.errors import ConfigError
from repro.mem.page import Hotness
from repro.trace import (
    TraceGenerator,
    consecutive_probability,
    hot_similarity_series,
    reused_fraction_series,
)
from repro.workload import profile_by_name

GENERATOR = TraceGenerator(seed=321)
YOUTUBE = GENERATOR.generate_app(profile_by_name("YouTube"), n_sessions=5)


def test_similarity_matches_profile_target():
    target = profile_by_name("YouTube").hot_similarity
    measured = statistics.mean(hot_similarity_series(YOUTUBE))
    assert measured == pytest.approx(target, abs=0.06)


def test_reuse_matches_profile_target():
    target = profile_by_name("YouTube").reused_fraction
    measured = statistics.mean(reused_fraction_series(YOUTUBE))
    assert measured == pytest.approx(target, abs=0.04)


def test_allocation_order_locality_near_target():
    profile = profile_by_name("YouTube")
    index = {record.pfn: i for i, record in enumerate(YOUTUBE.pages)}
    p2_values = []
    for session in YOUTUBE.sessions:
        sequence = [index[pfn] for pfn in session.relaunch_pfns]
        p2_values.append(consecutive_probability(sequence, 2))
    assert statistics.mean(p2_values) == pytest.approx(
        profile.locality_p2, abs=0.08
    )


def test_hot_pages_are_labeled_hot():
    hot_pfns = set()
    for session in YOUTUBE.sessions:
        hot_pfns |= session.hot_set
    by_pfn = {record.pfn: record for record in YOUTUBE.pages}
    for pfn in hot_pfns:
        assert by_pfn[pfn].true_hotness is Hotness.HOT


def test_cold_pages_never_accessed():
    accessed = set()
    for session in YOUTUBE.sessions:
        accessed |= session.hot_set | session.warm_set
    for record in YOUTUBE.pages:
        if record.true_hotness is Hotness.COLD:
            assert record.pfn not in accessed


def test_launch_pages_come_first_and_are_hot_seed():
    launch = YOUTUBE.pages[: YOUTUBE.launch_page_count]
    assert all(record.true_hotness is Hotness.HOT for record in launch)


def test_session_sets_have_stable_size():
    sizes = [len(session.hot_set) for session in YOUTUBE.sessions]
    assert max(sizes) - min(sizes) <= max(2, sizes[0] // 10)


def test_creation_times_monotonic_in_allocation_order():
    times = [record.created_at_s for record in YOUTUBE.pages]
    assert times == sorted(times)


def test_same_seed_reproduces_identical_trace():
    again = TraceGenerator(seed=321).generate_app(
        profile_by_name("YouTube"), n_sessions=5
    )
    assert again.pages == YOUTUBE.pages
    assert again.sessions == YOUTUBE.sessions


def test_workload_uids_resolve():
    workload = GENERATOR.generate_workload(
        profiles=(profile_by_name("YouTube"), profile_by_name("Twitter")),
        n_sessions=2,
    )
    assert workload.app("Twitter").uid == workload.app_by_uid(2).uid
    assert workload.names == ["YouTube", "Twitter"]


def test_invalid_session_count_rejected():
    with pytest.raises(ConfigError):
        GENERATOR.generate_app(profile_by_name("YouTube"), n_sessions=0)


def test_duration_controls_volume():
    short = GENERATOR.generate_app(
        profile_by_name("Twitter"), n_sessions=2, duration_s=10
    )
    long = GENERATOR.generate_app(
        profile_by_name("Twitter"), n_sessions=2, duration_s=300
    )
    assert len(short.pages) < len(long.pages)
