"""Registry contract tests: declarative specs, typed cells, selection,
and the machine-readable (``--json``) result contract.

The JSON determinism tests drive the real CLI (``main()``): the
serialized document must parse and be byte-identical across ``--jobs 1``
vs ``--jobs 4`` and across cold vs warm result cache — that is what
makes per-commit outcome artifacts diffable.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments import (
    CellSpec,
    Experiment,
    all_experiments,
    common,
    experiment,
    experiment_ids,
    registry,
    select,
)
from repro.experiments.__main__ import main
from repro.experiments.registry import to_jsonable


class TestRegistration:
    def test_every_experiment_registered_exactly_once(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids)) == 20
        # Registry order is the paper's presentation order (the fleet
        # tier, not being a paper figure, registers last).
        assert ids[0] == "table1"
        assert ids[-1] == "fleet"

    def test_specs_declare_identity(self):
        for spec in all_experiments():
            assert spec.id and spec.title and spec.anchor
            assert isinstance(spec, Experiment)
            assert spec.describe() == {
                "id": spec.id,
                "title": spec.title,
                "anchor": spec.anchor,
                "sharded": spec.sharded,
                "cacheable": spec.cacheable,
                "jobs_hint": spec.jobs_hint,
            }

    def test_duplicate_registration_rejected(self):
        class Dup(Experiment):
            id = "fig10"
            title = "duplicate"
            anchor = "Figure 10"

            def compute(self, quick=False):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ValueError, match="registered twice"):
            registry.register(Dup)

    def test_incomplete_spec_rejected(self):
        class NoTitle(Experiment):
            id = "unnamed"
            anchor = "Nowhere"

        with pytest.raises(ValueError, match="non-empty"):
            registry.register(NoTitle)

    def test_sharded_spec_without_cells_rejected(self):
        class Hollow(Experiment):
            id = "hollow"
            title = "sharded but cell-less"
            anchor = "Nowhere"
            sharded = True

        with pytest.raises(ValueError, match="cell_keys"):
            registry.register(Hollow)

    def test_unknown_lookup_names_known_ids(self):
        with pytest.raises(KeyError, match="fig10"):
            experiment("not-a-figure")


class TestCellSpecs:
    def test_cell_keys_stable_across_calls(self):
        for spec in all_experiments():
            if spec.sharded:
                assert spec.cell_keys(quick=True) == spec.cell_keys(quick=True)
                assert spec.cell_keys(quick=False) == spec.cell_keys(quick=False)

    def test_cells_are_typed_hashable_and_picklable(self):
        for spec in all_experiments():
            for cell in spec.cells(quick=True):
                assert isinstance(cell, CellSpec)
                assert cell.experiment == spec.id
                clone = pickle.loads(pickle.dumps(cell))
                assert clone == cell
                assert hash(clone) == hash(cell)


class TestSelection:
    def test_exact_ids_pass_through_in_request_order(self):
        assert select(["fig13", "table1"]) == ["fig13", "table1"]

    def test_all_expands_to_registry_order(self):
        assert select(["all"]) == experiment_ids()

    def test_glob_expands_in_registry_order(self):
        assert select(["fig1*"]) == [
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        ]
        assert select(["table?"]) == ["table1", "table2", "table3"]

    def test_unmatched_pattern_rejected(self):
        with pytest.raises(KeyError):
            select(["fig9*"])
        with pytest.raises(KeyError):
            select(["not-a-figure"])


class TestToJsonable:
    def test_structural_conversion(self):
        from repro.mem.page import Hotness

        assert to_jsonable({Hotness.HOT: (1, 2.5)}) == {"HOT": [1, 2.5]}
        assert to_jsonable([None, True, "x"]) == [None, True, "x"]

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_every_cheap_result_round_trips_through_json(self):
        for name in ("platform", "table1", "fig5"):
            payload = experiment(name).run(quick=True).to_json()
            assert payload == json.loads(json.dumps(payload))


@pytest.fixture()
def persistent_caches(monkeypatch, tmp_path):
    """Point the (normally disabled-in-tests) disk caches at a tmp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()
    yield tmp_path / "cache"
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()


def _json_run(capsys, argv: list[str]) -> tuple[str, dict]:
    exit_code = main(argv)
    assert exit_code == 0
    raw = capsys.readouterr().out
    return raw, json.loads(raw)


class TestJsonDeterminism:
    #: Deterministic, cheap experiments: platform is trivially pure and
    #: fig13 exercises the sharded + persistent-size-cache paths.
    NAMES = ["platform", "fig13"]

    def test_json_identical_across_job_counts_and_cache_states(
        self, capsys, persistent_caches
    ):
        runs = {}
        for label, argv in {
            "cold-jobs1": [*self.NAMES, "--quick", "--json", "--jobs", "1"],
            "warm-jobs1": [*self.NAMES, "--quick", "--json", "--jobs", "1"],
            "warm-jobs4": [*self.NAMES, "--quick", "--json", "--jobs", "4"],
        }.items():
            raw, parsed = _json_run(capsys, argv)
            runs[label] = raw
            assert [entry["id"] for entry in parsed["experiments"]] == self.NAMES
            assert all(entry["ok"] for entry in parsed["experiments"])
        assert runs["cold-jobs1"] == runs["warm-jobs1"] == runs["warm-jobs4"]

    def test_json_identical_with_cache_disabled(self, capsys):
        # conftest keeps REPRO_CACHE_DIR=off: same bytes, no cache at all.
        first, _ = _json_run(
            capsys, ["platform", "--json", "--jobs", "1"]
        )
        second, _ = _json_run(
            capsys, ["platform", "--json", "--jobs", "2"]
        )
        assert first == second

    def test_list_json_parses_and_covers_registry(self, capsys):
        raw, parsed = _json_run(capsys, ["list", "--json"])
        assert {entry["id"] for entry in parsed} == set(experiment_ids())

    def test_list_accepts_filter_patterns(self, capsys):
        _, parsed = _json_run(capsys, ["list", "fig1*", "--json"])
        assert [entry["id"] for entry in parsed] == [
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        ]
        assert main(["list", "no-such*"]) == 2
        capsys.readouterr()

    def test_list_not_first_is_an_error_not_a_silent_drop(self, capsys):
        assert main(["fig10", "list"]) == 2
        assert "list" in capsys.readouterr().err

    def test_glob_selection_through_cli(self, capsys):
        _, parsed = _json_run(capsys, ["platfor*", "--json", "--jobs", "1"])
        assert [entry["id"] for entry in parsed["experiments"]] == ["platform"]

    def test_unknown_name_exits_2(self, capsys):
        assert main(["no-such-figure"]) == 2
        assert "list" in capsys.readouterr().err
