"""Platform / Ariadne configuration tests."""

from __future__ import annotations

import pytest

from repro.core import AriadneConfig, PlatformConfig, RelaunchScenario, pixel7_platform
from repro.errors import ConfigError
from repro.units import GIB, KIB, SCALE_FACTOR


class TestPlatform:
    def test_pixel7_preset_scales_sizes(self):
        platform = pixel7_platform(dram_gb=2.5, zpool_gb=3.0)
        assert platform.dram_bytes == int(2.5 * GIB) // SCALE_FACTOR
        assert platform.zpool_bytes == int(3.0 * GIB) // SCALE_FACTOR

    def test_watermark_bytes_derived(self):
        platform = pixel7_platform()
        assert platform.low_watermark_bytes < platform.high_watermark_bytes
        assert platform.high_watermark_bytes < platform.dram_bytes

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ConfigError):
            PlatformConfig(
                dram_bytes=1 << 20, zpool_bytes=1 << 20, swap_bytes=1 << 20,
                low_watermark=0.2, high_watermark=0.1,
            )

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ConfigError):
            PlatformConfig(
                dram_bytes=1 << 20, zpool_bytes=1 << 20, swap_bytes=1 << 20,
                parallelism=0,
            )


class TestAriadneConfig:
    def test_label_matches_paper_naming(self):
        config = AriadneConfig(
            small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
            scenario=RelaunchScenario.EHL,
        )
        assert config.label == "Ariadne-EHL-1K-2K-16K"

    def test_label_for_sub_kib_small_size(self):
        config = AriadneConfig(small_size=256, scenario=RelaunchScenario.AL)
        assert config.label.startswith("Ariadne-AL-256-")

    def test_cold_group_pages(self):
        assert AriadneConfig(large_size=16 * KIB).cold_group_pages == 4
        assert AriadneConfig(large_size=4 * KIB).cold_group_pages == 1

    def test_size_ordering_enforced(self):
        with pytest.raises(ConfigError):
            AriadneConfig(small_size=4 * KIB, medium_size=2 * KIB)

    def test_oversized_cold_chunks_rejected(self):
        # Section 6.3 warns against >= 64K; we allow up to 128K, not more.
        with pytest.raises(ConfigError):
            AriadneConfig(large_size=256 * KIB)

    def test_small_size_bounds(self):
        with pytest.raises(ConfigError):
            AriadneConfig(small_size=32)

    def test_staging_and_depth_validation(self):
        with pytest.raises(ConfigError):
            AriadneConfig(staging_pages=0)
        with pytest.raises(ConfigError):
            AriadneConfig(predecomp_depth=-1)

    def test_defaults_are_a_paper_configuration(self):
        config = AriadneConfig()
        assert config.small_size == 1 * KIB
        assert config.medium_size == 2 * KIB
        assert config.large_size == 16 * KIB
        assert config.predecomp_depth == 1  # one page ahead (Table 3)
