"""Chunked-compression and size-cache tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    Lz4Compressor,
    LzoCompressor,
    NullCompressor,
    chunk_compress,
    chunk_decompress,
    measure_ratio,
)
from repro.compression.chunking import SizeCache
from repro.errors import CompressionError


def test_chunk_count_matches_ceiling_division():
    codec = NullCompressor()
    blob = chunk_compress(codec, bytes(1000), 256)
    assert len(blob.chunks) == 4  # 256*3 + 232


def test_chunk_roundtrip():
    codec = Lz4Compressor()
    data = (b"mobile anonymous page data " * 400)[:8192]
    blob = chunk_compress(codec, data, 512)
    assert chunk_decompress(codec, blob) == data


def test_zero_chunk_size_rejected():
    with pytest.raises(CompressionError):
        chunk_compress(NullCompressor(), b"abc", 0)


def test_codec_mismatch_detected():
    data = b"abcabcabc" * 50
    blob = chunk_compress(Lz4Compressor(), data, 128)
    with pytest.raises(CompressionError):
        chunk_decompress(LzoCompressor(), blob)


def test_null_codec_ratio_is_one():
    assert measure_ratio(NullCompressor(), bytes(4096), 1024) == 1.0


def test_larger_chunks_never_hurt_ratio_on_template_data():
    # Data with cross-chunk redundancy: bigger windows must help.
    codec = Lz4Compressor()
    template = bytes(range(128)) * 2
    data = template * 64  # 16 KiB of one repeated 256-byte template
    small = measure_ratio(codec, data, 256)
    large = measure_ratio(codec, data, 8192)
    assert large > small


def test_offset_lookup():
    blob = chunk_compress(NullCompressor(), bytes(1024), 256)
    assert blob.chunk_index_for_offset(0) == 0
    assert blob.chunk_index_for_offset(255) == 0
    assert blob.chunk_index_for_offset(256) == 1
    with pytest.raises(CompressionError):
        blob.chunk_index_for_offset(1024)


class TestSizeCache:
    def test_hit_returns_same_size_without_recompressing(self):
        cache = SizeCache()
        codec = Lz4Compressor()
        data = b"cache me " * 500
        first = cache.compressed_size(codec, data, 1024)
        second = cache.compressed_size(codec, data, 1024)
        assert first == second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_chunk_size_is_part_of_key(self):
        cache = SizeCache()
        codec = Lz4Compressor()
        data = b"different granularity " * 300
        cache.compressed_size(codec, data, 256)
        cache.compressed_size(codec, data, 4096)
        assert cache.misses == 2

    def test_eviction_bounds_entries(self):
        cache = SizeCache(max_entries=4)
        codec = NullCompressor()
        for i in range(10):
            cache.compressed_size(codec, bytes([i]) * 100, 64)
        assert len(cache) <= 4

    def test_clear_resets(self):
        cache = SizeCache()
        cache.compressed_size(NullCompressor(), b"xyz", 64)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(CompressionError):
            SizeCache(max_entries=0)


@settings(max_examples=25, deadline=None)
@given(
    st.binary(min_size=1, max_size=4096),
    st.sampled_from([64, 128, 512, 1024, 4096]),
)
def test_chunked_roundtrip_property(data, chunk_size):
    codec = LzoCompressor()
    blob = chunk_compress(codec, data, chunk_size)
    assert chunk_decompress(codec, blob) == data
    assert blob.total_original_len == len(data)
