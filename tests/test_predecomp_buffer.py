"""StagingBuffer (PreDecomp FIFO) tests."""

from __future__ import annotations

import pytest

from repro.core import StagingBuffer
from repro.errors import ConfigError
from repro.mem import Page, PageLocation


def page(pfn: int) -> Page:
    return Page(pfn=pfn, uid=1)


def test_stage_and_claim():
    buffer = StagingBuffer(capacity_pages=2)
    staged = page(1)
    assert buffer.stage(staged) == []
    assert staged.location is PageLocation.STAGING
    assert 1 in buffer
    claimed = buffer.claim(1)
    assert claimed is staged
    assert buffer.hits == 1
    assert 1 not in buffer


def test_miss_counted():
    buffer = StagingBuffer(capacity_pages=2)
    assert buffer.claim(42) is None
    assert buffer.misses == 1


def test_fifo_eviction_returns_oldest():
    buffer = StagingBuffer(capacity_pages=2)
    first, second, third = page(1), page(2), page(3)
    buffer.stage(first)
    buffer.stage(second)
    evicted = buffer.stage(third)
    assert evicted == [first]
    assert buffer.evicted_unused == 1
    assert len(buffer) == 2


def test_hit_rate():
    buffer = StagingBuffer(capacity_pages=4)
    buffer.stage(page(1))
    buffer.claim(1)
    buffer.claim(2)
    assert buffer.hit_rate == 0.5


def test_empty_hit_rate_is_zero():
    assert StagingBuffer(capacity_pages=1).hit_rate == 0.0


def test_drain_empties_buffer():
    buffer = StagingBuffer(capacity_pages=4)
    buffer.stage(page(1))
    buffer.stage(page(2))
    drained = buffer.drain()
    assert {p.pfn for p in drained} == {1, 2}
    assert len(buffer) == 0


def test_zero_capacity_rejected():
    with pytest.raises(ConfigError):
        StagingBuffer(capacity_pages=0)
