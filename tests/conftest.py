"""Shared fixtures: tiny workloads and platforms that keep tests fast.

The experiment-scale workloads (thousands of pages) are exercised by the
benchmarks; tests run against miniature apps (tens of pages) that hit
the same code paths in milliseconds.
"""

from __future__ import annotations

import os

# Tests must be hermetic: the golden-number suite verifies measured
# values bit-for-bit, so experiments may not read (or pollute) the
# user's persistent artifact cache.  Set before any repro import —
# repro.experiments.common binds its shared caches at import time.
os.environ["REPRO_CACHE_DIR"] = "off"

import pytest

from repro.core import AriadneConfig, RelaunchScenario
from repro.sim import MobileSystem
from repro.trace import TraceGenerator, WorkloadTrace

from tiny_workload import TINY_PROFILES, build_tiny, tiny_platform  # noqa: F401


@pytest.fixture(scope="session")
def tiny_trace() -> WorkloadTrace:
    """Three miniature apps with four relaunch sessions each."""
    return TraceGenerator(seed=99).generate_workload(
        profiles=TINY_PROFILES, n_sessions=4
    )


@pytest.fixture()
def zram_system(tiny_trace: WorkloadTrace) -> MobileSystem:
    return build_tiny("ZRAM", tiny_trace)


@pytest.fixture()
def ariadne_system(tiny_trace: WorkloadTrace) -> MobileSystem:
    return build_tiny(
        "Ariadne",
        tiny_trace,
        AriadneConfig(scenario=RelaunchScenario.EHL),
    )
