"""zpool and size-class tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ZpoolFullError
from repro.zpool import SizeClassTable, Zpool


class TestSizeClasses:
    def test_rounds_up_to_granularity(self):
        table = SizeClassTable(granularity=32)
        assert table.class_size(1) == 32
        assert table.class_size(32) == 32
        assert table.class_size(33) == 64

    def test_zero_size_still_occupies_a_class(self):
        assert SizeClassTable().class_size(0) > 0

    def test_fragmentation_is_class_minus_payload(self):
        table = SizeClassTable(granularity=64)
        assert table.fragmentation(100) == 28

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            SizeClassTable().class_size(-1)

    def test_misaligned_config_rejected(self):
        with pytest.raises(ConfigError):
            SizeClassTable(granularity=48, max_size=4096 + 1)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_class_always_covers_payload(self, size):
        table = SizeClassTable()
        assert table.class_size(size) >= size


class TestZpool:
    def test_store_assigns_monotonic_sectors(self):
        pool = Zpool(capacity_bytes=1 << 20)
        first = pool.store(100)
        second = pool.store(200)
        assert second.sector == first.sector + 1

    def test_used_bytes_tracks_class_sizes(self):
        pool = Zpool(capacity_bytes=1 << 20)
        entry = pool.store(100)
        assert pool.used_bytes == entry.class_bytes
        pool.free(entry.handle)
        assert pool.used_bytes == 0

    def test_capacity_enforced(self):
        pool = Zpool(capacity_bytes=256)
        pool.store(200)
        with pytest.raises(ZpoolFullError):
            pool.store(200)

    def test_free_unknown_handle_rejected(self):
        pool = Zpool(capacity_bytes=1024)
        with pytest.raises(ZpoolFullError):
            pool.free(12345)

    def test_sector_lookup_and_gap_scan(self):
        pool = Zpool(capacity_bytes=1 << 20)
        a = pool.store(64)
        b = pool.store(64)
        c = pool.store(64)
        pool.free(b.handle)
        assert pool.handle_at_sector(a.sector) == a.handle
        assert pool.handle_at_sector(b.sector) is None
        # Next live sector after a skips the freed gap.
        assert pool.next_live_sector(a.sector) == c.sector

    def test_next_live_sector_respects_scan_bound(self):
        pool = Zpool(capacity_bytes=1 << 20)
        first = pool.store(64)
        for _ in range(10):
            pool.free(pool.store(64).handle)
        far = pool.store(64)
        assert pool.next_live_sector(first.sector, max_scan=3) is None
        assert pool.next_live_sector(first.sector, max_scan=16) == far.sector

    def test_stats_snapshot(self):
        pool = Zpool(capacity_bytes=1 << 20)
        pool.store(100)
        pool.store(50)
        stats = pool.stats()
        assert stats.entry_count == 2
        assert stats.payload_bytes == 150
        assert stats.fragmentation_bytes == stats.used_bytes - 150
        assert 0 < stats.utilization < 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ZpoolFullError):
            Zpool(capacity_bytes=0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=4096), max_size=40))
    def test_store_free_conservation(self, sizes):
        """Storing then freeing everything returns the pool to empty."""
        pool = Zpool(capacity_bytes=1 << 24)
        handles = [pool.store(size).handle for size in sizes]
        assert pool.entry_count == len(sizes)
        for handle in handles:
            pool.free(handle)
        assert pool.used_bytes == 0
        assert pool.entry_count == 0


class TestOccupancyHooks:
    def test_subscriber_sees_store_and_free_deltas(self):
        pool = Zpool(capacity_bytes=1 << 20)
        deltas: list[int] = []
        pool.subscribe(deltas.append)
        first = pool.store(100)
        second = pool.store(3000)
        pool.free(first.handle)
        assert deltas == [
            first.class_bytes, second.class_bytes, -first.class_bytes
        ]
        assert sum(deltas) == pool.used_bytes == pool.audit_used_bytes()

    def test_audit_recomputes_from_live_entries(self):
        pool = Zpool(capacity_bytes=1 << 20)
        handles = [pool.store(size).handle for size in (64, 700, 4096)]
        pool.free(handles[1])
        assert pool.audit_used_bytes() == pool.used_bytes
        assert pool.audit_used_bytes() == sum(
            entry.class_bytes for entry in pool._entries.values()
        )
