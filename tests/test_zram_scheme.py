"""ZRAM baseline scheme tests (eviction, faulting, terminations)."""

from __future__ import annotations

import pytest

from repro.core import PlatformConfig, ZramScheme, build_context
from repro.errors import PageStateError
from repro.mem import Page, PageLocation
from repro.metrics import APP
from repro.units import KIB, PAGE_SIZE


def make_scheme(
    dram_pages: int = 16, zpool_bytes: int = 64 * KIB
) -> ZramScheme:
    platform = PlatformConfig(
        dram_bytes=dram_pages * PAGE_SIZE,
        zpool_bytes=zpool_bytes,
        swap_bytes=1 << 20,
        scale=1,
        parallelism=1,
    )
    ctx = build_context(platform, codec_name="lzo")
    scheme = ZramScheme(ctx)
    scheme.register_app(1)
    scheme.note_app_switch(1)
    return scheme


def compressible_page(pfn: int, uid: int = 1) -> Page:
    payload = (f"page-{pfn}-".encode() * 600)[:PAGE_SIZE]
    return Page(pfn=pfn, uid=uid, payload=payload)


def test_pages_created_stay_resident_when_room():
    scheme = make_scheme(dram_pages=8)
    pages = [compressible_page(i) for i in range(3)]
    scheme.on_pages_created(1, pages)
    assert all(scheme.ctx.dram.is_resident(page) for page in pages)


def test_pressure_compresses_lru_victims_into_zpool():
    scheme = make_scheme(dram_pages=4)
    pages = [compressible_page(i) for i in range(8)]
    scheme.on_pages_created(1, pages)
    assert scheme.stored_page_count() > 0
    assert scheme.ctx.zpool.entry_count > 0
    # Earliest-allocated (LRU) pages are the ones compressed.
    assert pages[0].location is PageLocation.ZPOOL


def test_fault_restores_page_and_frees_zpool():
    scheme = make_scheme(dram_pages=4)
    pages = [compressible_page(i) for i in range(8)]
    scheme.on_pages_created(1, pages)
    victim = next(p for p in pages if p.location is PageLocation.ZPOOL)
    result = scheme.access(victim, thread=APP)
    assert result.source is PageLocation.ZPOOL
    assert result.stall_ns > 0
    assert scheme.ctx.dram.is_resident(victim)
    # The victim's own compressed copy was freed (direct reclaim may have
    # stored other chunks meanwhile, so total entry count can stay level).
    assert all(
        victim.pfn not in {p.pfn for p in chunk.pages}
        for chunk in scheme.stored_chunks()
    )


def test_resident_access_is_free():
    scheme = make_scheme(dram_pages=8)
    page = compressible_page(1)
    scheme.on_pages_created(1, [page])
    result = scheme.access(page)
    assert result.stall_ns == 0
    assert result.source is PageLocation.DRAM


def test_fault_charges_decompress_cpu():
    scheme = make_scheme(dram_pages=4)
    pages = [compressible_page(i) for i in range(8)]
    scheme.on_pages_created(1, pages)
    victim = next(p for p in pages if p.location is PageLocation.ZPOOL)
    before = scheme.ctx.cpu.activity_ns("decompress")
    scheme.access(victim)
    assert scheme.ctx.cpu.activity_ns("decompress") > before


def test_compression_log_records_ground_truth_in_order():
    scheme = make_scheme(dram_pages=4)
    pages = [compressible_page(i) for i in range(8)]
    scheme.on_pages_created(1, pages)
    assert len(scheme.compression_log) == scheme.ctx.counters.get(
        "pages_compressed"
    )
    assert all(uid == 1 for uid, _ in scheme.compression_log)


def incompressible_page(pfn: int, uid: int = 1) -> Page:
    import random

    rng = random.Random(pfn * 7919)
    return Page(pfn=pfn, uid=uid, payload=rng.randbytes(PAGE_SIZE))


def test_zpool_overflow_drops_oldest_and_terminates():
    # Incompressible pages store near-raw, so a 6 KiB pool overflows
    # after one entry and ZRAM must delete compressed data (termination).
    scheme = make_scheme(dram_pages=4, zpool_bytes=6 * KIB)
    pages = [incompressible_page(i) for i in range(12)]
    scheme.on_pages_created(1, pages)
    assert scheme.ctx.counters.get("chunks_dropped") > 0
    assert scheme.ctx.counters.get("pages_lost") > 0


def test_lost_page_access_is_counted_not_fatal():
    scheme = make_scheme(dram_pages=4, zpool_bytes=6 * KIB)
    pages = [incompressible_page(i) for i in range(12)]
    scheme.on_pages_created(1, pages)
    lost = next(p for p in pages if p.pfn in scheme._lost_pfns)
    result = scheme.access(lost)
    assert scheme.ctx.counters.get("lost_page_accesses") == 1
    assert result.stall_ns > 0


def test_unknown_page_access_raises():
    scheme = make_scheme()
    with pytest.raises(PageStateError):
        scheme.access(compressible_page(999))


def test_duplicate_app_registration_rejected():
    scheme = make_scheme()
    with pytest.raises(PageStateError):
        scheme.register_app(1)


def test_force_compress_app_empties_resident_set():
    scheme = make_scheme(dram_pages=16)
    pages = [compressible_page(i) for i in range(6)]
    scheme.on_pages_created(1, pages)
    scheme.force_compress_app(1)
    assert scheme.organizer(1).resident_count() == 0
    assert scheme.stored_page_count() == 6


def test_app_lru_reclaims_least_recent_app_first():
    scheme = make_scheme(dram_pages=64)
    scheme.register_app(2)
    a_pages = [compressible_page(i, uid=1) for i in range(4)]
    b_pages = [compressible_page(100 + i, uid=2) for i in range(4)]
    scheme.on_pages_created(1, a_pages)
    scheme.on_pages_created(2, b_pages)
    scheme.note_app_switch(1)  # app 1 most recent; app 2 is the LRU app
    victim = scheme._pop_victim()
    assert victim.uid == 2
