"""Main-memory model tests."""

from __future__ import annotations

import pytest

from repro.errors import MemoryPressureError, PageStateError
from repro.mem import MainMemory, Page
from repro.units import PAGE_SIZE


def test_capacity_accounting():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    assert memory.used_bytes == PAGE_SIZE
    assert memory.free_bytes == 3 * PAGE_SIZE
    assert memory.is_resident(page)


def test_over_capacity_rejected():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    memory.add_page(Page(pfn=1, uid=1))
    with pytest.raises(MemoryPressureError):
        memory.add_page(Page(pfn=2, uid=1))


def test_double_add_rejected():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    with pytest.raises(PageStateError):
        memory.add_page(page)


def test_remove_frees_room():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    memory.remove_page(page)
    assert not memory.is_resident(page)
    memory.add_page(Page(pfn=2, uid=1))  # fits again


def test_remove_missing_rejected():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    with pytest.raises(PageStateError):
        memory.remove_page(Page(pfn=1, uid=1))


def test_peak_usage_tracked():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    a, b = Page(pfn=1, uid=1), Page(pfn=2, uid=1)
    memory.add_page(a)
    memory.add_page(b)
    memory.remove_page(a)
    assert memory.peak_used_bytes == 2 * PAGE_SIZE


def test_sub_page_capacity_rejected():
    with pytest.raises(MemoryPressureError):
        MainMemory(capacity_bytes=100)


def test_has_room_for():
    memory = MainMemory(capacity_bytes=2 * PAGE_SIZE)
    assert memory.has_room_for(2)
    memory.add_page(Page(pfn=1, uid=1))
    assert memory.has_room_for(1)
    assert not memory.has_room_for(2)


def test_subscriber_sees_every_occupancy_delta():
    memory = MainMemory(capacity_bytes=8 * PAGE_SIZE)
    deltas: list[int] = []
    memory.subscribe(deltas.append)
    memory.add_page(Page(pfn=1, uid=1))
    memory.add_pages([Page(pfn=2, uid=1), Page(pfn=3, uid=1)])
    memory.remove_page(Page(pfn=2, uid=1))
    assert deltas == [PAGE_SIZE, 2 * PAGE_SIZE, -PAGE_SIZE]
    # Summing the deltas reconstructs the occupancy exactly.
    assert sum(deltas) == memory.used_bytes == memory.audit_used_bytes()


def test_audit_matches_running_counter_through_fallback_path():
    # add_pages that does not fit falls back to per-page adds (and
    # per-page notifications); the counter and audit must still agree.
    memory = MainMemory(capacity_bytes=2 * PAGE_SIZE)
    deltas: list[int] = []
    memory.subscribe(deltas.append)
    with pytest.raises(MemoryPressureError):
        memory.add_pages([Page(pfn=i, uid=1) for i in range(1, 4)])
    assert memory.used_bytes == memory.audit_used_bytes() == 2 * PAGE_SIZE
    assert sum(deltas) == memory.used_bytes


def test_mid_batch_duplicate_keeps_counter_in_sync():
    # A duplicate aborts add_pages midway exactly as the per-page
    # reference would; the pages inserted before the raise must still
    # reach the counter and the subscribers.
    memory = MainMemory(capacity_bytes=8 * PAGE_SIZE)
    deltas: list[int] = []
    memory.subscribe(deltas.append)
    memory.add_page(Page(pfn=5, uid=1))
    with pytest.raises(PageStateError):
        memory.add_pages(
            [Page(pfn=1, uid=1), Page(pfn=2, uid=1), Page(pfn=5, uid=1)]
        )
    assert memory.used_bytes == memory.audit_used_bytes() == 3 * PAGE_SIZE
    assert sum(deltas) == memory.used_bytes
