"""Main-memory model tests."""

from __future__ import annotations

import pytest

from repro.errors import MemoryPressureError, PageStateError
from repro.mem import MainMemory, Page
from repro.units import PAGE_SIZE


def test_capacity_accounting():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    assert memory.used_bytes == PAGE_SIZE
    assert memory.free_bytes == 3 * PAGE_SIZE
    assert memory.is_resident(page)


def test_over_capacity_rejected():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    memory.add_page(Page(pfn=1, uid=1))
    with pytest.raises(MemoryPressureError):
        memory.add_page(Page(pfn=2, uid=1))


def test_double_add_rejected():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    with pytest.raises(PageStateError):
        memory.add_page(page)


def test_remove_frees_room():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    page = Page(pfn=1, uid=1)
    memory.add_page(page)
    memory.remove_page(page)
    assert not memory.is_resident(page)
    memory.add_page(Page(pfn=2, uid=1))  # fits again


def test_remove_missing_rejected():
    memory = MainMemory(capacity_bytes=PAGE_SIZE)
    with pytest.raises(PageStateError):
        memory.remove_page(Page(pfn=1, uid=1))


def test_peak_usage_tracked():
    memory = MainMemory(capacity_bytes=4 * PAGE_SIZE)
    a, b = Page(pfn=1, uid=1), Page(pfn=2, uid=1)
    memory.add_page(a)
    memory.add_page(b)
    memory.remove_page(a)
    assert memory.peak_used_bytes == 2 * PAGE_SIZE


def test_sub_page_capacity_rejected():
    with pytest.raises(MemoryPressureError):
        MainMemory(capacity_bytes=100)


def test_has_room_for():
    memory = MainMemory(capacity_bytes=2 * PAGE_SIZE)
    assert memory.has_room_for(2)
    memory.add_page(Page(pfn=1, uid=1))
    assert memory.has_room_for(1)
    assert not memory.has_room_for(2)
