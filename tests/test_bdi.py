"""Base-delta-immediate codec tests."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import BdiCompressor
from repro.errors import CorruptDataError

CODEC = BdiCompressor()


def test_zero_line_compresses_to_one_byte_per_line():
    data = bytes(256)  # four 64-byte lines
    assert len(CODEC.compress(data)) == 4
    assert CODEC.decompress(CODEC.compress(data), 256) == data


def test_repeated_word_line_uses_repeat_encoding():
    line = struct.pack("<Q", 0xDEADBEEF) * 8  # one 64-byte line
    blob = CODEC.compress(line)
    assert len(blob) == 9  # header + 8-byte value
    assert CODEC.decompress(blob, 64) == line


def test_base_delta_on_nearby_values():
    # Eight 8-byte integers within a +/-127 band of a base: base8-delta1.
    values = [1_000_000 + delta for delta in (0, 3, -5, 90, -100, 47, 12, 1)]
    line = b"".join(struct.pack("<q", v) for v in values)
    blob = CODEC.compress(line)
    assert len(blob) < len(line) // 3
    assert CODEC.decompress(blob, 64) == line


def test_random_line_falls_back_to_raw():
    import random

    rng = random.Random(11)
    line = bytes(rng.randrange(256) for _ in range(64))
    blob = CODEC.compress(line)
    assert len(blob) == 65  # raw header + payload
    assert CODEC.decompress(blob, 64) == line


def test_short_tail_line_roundtrips():
    data = bytes(100)  # 64 + 36-byte tail
    assert CODEC.decompress(CODEC.compress(data), 100) == data


def test_trailing_garbage_raises():
    blob = CODEC.compress(bytes(64)) + b"\x00"
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 64)


def test_truncated_blob_raises():
    blob = CODEC.compress(bytes(128))[:-1]
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 128)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=2048))
def test_roundtrip_property(data):
    assert CODEC.decompress(CODEC.compress(data), len(data)) == data


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**62),
    st.lists(st.integers(min_value=-120, max_value=120), min_size=8, max_size=8),
)
def test_delta_lines_always_beat_raw(base, deltas):
    line = b"".join(struct.pack("<Q", (base + d) % 2**64) for d in deltas)
    blob = CODEC.compress(line)
    assert len(blob) < 65
    assert CODEC.decompress(blob, 64) == line
