"""LZO-class codec tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LzoCompressor
from repro.errors import CompressionError, CorruptDataError

CODEC = LzoCompressor()


@pytest.mark.parametrize(
    "data",
    [b"", b"x", b"ab" * 900, bytes(4096), bytes(range(256)) * 8],
    ids=["empty", "one", "periodic", "zeros", "cycle"],
)
def test_roundtrip_known_inputs(data):
    assert CODEC.decompress(CODEC.compress(data), len(data)) == data


def test_min_match_three_catches_short_repeats():
    # "abcabcabc..." has period 3: below LZ4's min match, within LZO's.
    data = b"abc" * 400
    assert len(CODEC.compress(data)) < len(data) // 3


def test_random_data_bounded_expansion():
    rng = random.Random(5)
    data = bytes(rng.randrange(256) for _ in range(8192))
    blob = CODEC.compress(data)
    assert CODEC.decompress(blob, len(data)) == data
    # Worst case: one header byte per 128-byte literal run.
    assert len(blob) <= len(data) + len(data) // 128 + 1


def test_window_limit_respected():
    codec = LzoCompressor(max_distance=64)
    # Repeat separated by more than the window: must stay literal.
    data = b"UNIQUEPREFIX" + bytes(100) + b"UNIQUEPREFIX"
    assert codec.decompress(codec.compress(data), len(data)) == data


def test_invalid_window_rejected():
    with pytest.raises(CompressionError):
        LzoCompressor(max_distance=0)
    with pytest.raises(CompressionError):
        LzoCompressor(max_distance=1 << 20)


def test_bad_distance_raises():
    blob = bytes([0x80, 0x09, 0x00])  # match len 3, distance 9, no history
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 3)


def test_truncated_stream_raises():
    blob = bytes([0x05, 0x61])  # promises 6 literals, has 1
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 6)


def test_wrong_length_raises():
    blob = CODEC.compress(b"some data worth compressing, repeated, repeated")
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 3)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=6000))
def test_roundtrip_property(data):
    assert CODEC.decompress(CODEC.compress(data), len(data)) == data
