"""Flash device and swap-area tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, FlashFullError
from repro.flash import FlashDevice, FlashDeviceConfig, FlashSwapArea


class TestDevice:
    def test_read_latency_has_command_and_transfer_terms(self):
        device = FlashDevice()
        small = device.read(0)
        large = device.read(1 << 20)
        assert small == device.config.read_command_ns
        assert large > small

    def test_counters_accumulate(self):
        device = FlashDevice()
        device.write(1000)
        device.write(500)
        device.read(200)
        assert device.host_bytes_written == 1500
        assert device.host_bytes_read == 200
        assert device.write_commands == 2
        assert device.read_commands == 1

    def test_wear_includes_write_amplification(self):
        device = FlashDevice()
        device.write(1000)
        assert device.nand_bytes_written == 1500  # default WA = 1.5

    def test_read_many_charges_per_command(self):
        device = FlashDevice()
        one = device.read_many(64 * 4096, n_commands=1)
        device2 = FlashDevice()
        many = device2.read_many(64 * 4096, n_commands=64)
        assert many > one

    def test_invalid_args_rejected(self):
        device = FlashDevice()
        with pytest.raises(ConfigError):
            device.read(-1)
        with pytest.raises(ConfigError):
            device.read_many(100, n_commands=0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FlashDevice(FlashDeviceConfig(write_amplification=0.5))
        with pytest.raises(ConfigError):
            FlashDevice(FlashDeviceConfig(read_command_ns=-1))


class TestSwapArea:
    def test_store_load_free_lifecycle(self):
        area = FlashSwapArea(FlashDevice(), capacity_bytes=1 << 20)
        slot, write_ns = area.store(4096)
        assert write_ns > 0
        assert area.used_bytes == 4096
        loaded, read_ns = area.load(slot.slot_id)
        assert loaded.stored_bytes == 4096
        assert read_ns > 0
        area.free(slot.slot_id)
        assert area.used_bytes == 0

    def test_capacity_enforced(self):
        area = FlashSwapArea(FlashDevice(), capacity_bytes=4096)
        area.store(4096)
        with pytest.raises(FlashFullError):
            area.store(1)

    def test_load_unknown_slot_rejected(self):
        area = FlashSwapArea(FlashDevice(), capacity_bytes=4096)
        with pytest.raises(FlashFullError):
            area.load(7)

    def test_byte_scale_amplifies_device_traffic(self):
        device = FlashDevice()
        area = FlashSwapArea(device, capacity_bytes=1 << 20, byte_scale=64)
        area.store(4096)
        assert device.host_bytes_written == 64 * 4096
        assert area.used_bytes == 4096  # slot accounting stays sim-scale

    def test_sequential_slots_read_with_fewer_commands(self):
        scale = 64
        random_dev = FlashDevice()
        random_area = FlashSwapArea(random_dev, 1 << 20, byte_scale=scale)
        slot_r, _ = random_area.store(4096, sequential=False)
        _, random_ns = random_area.load(slot_r.slot_id)

        seq_dev = FlashDevice()
        seq_area = FlashSwapArea(seq_dev, 1 << 20, byte_scale=scale)
        slot_s, _ = seq_area.store(4096, sequential=True)
        _, seq_ns = seq_area.load(slot_s.slot_id)
        assert seq_ns < random_ns
        assert seq_dev.read_commands < random_dev.read_commands

    def test_invalid_construction_rejected(self):
        with pytest.raises(FlashFullError):
            FlashSwapArea(FlashDevice(), capacity_bytes=0)
        with pytest.raises(FlashFullError):
            FlashSwapArea(FlashDevice(), capacity_bytes=100, byte_scale=0)

    def test_free_is_metadata_only(self):
        device = FlashDevice()
        area = FlashSwapArea(device, capacity_bytes=1 << 20)
        slot, _ = area.store(1000)
        reads_before = device.read_commands
        writes_before = device.write_commands
        area.free(slot.slot_id)
        assert device.read_commands == reads_before
        assert device.write_commands == writes_before
