"""CI bench-gate tests (benchmarks/check_bench_regression.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_bench_regression.py",
)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def artifact(**overrides) -> dict:
    base = {
        "wall_time_s": 0.5,
        "warm_wall_time_s": 0.07,
        "simulated_wall_ns": 60789924846,
        "relaunches": 56,
        "compress_ops": 525,
        "kswapd_cpu_ns": 4613256710,
        "machine": "x86_64",
        "python": "3.11.7",
        "cpus": 4,
    }
    base.update(overrides)
    return base


class TestBenchGate:
    def test_identical_artifacts_pass(self):
        assert gate.check(artifact(), artifact(), 0.25) == []

    def test_small_slowdown_within_margin_passes(self):
        fresh = artifact(wall_time_s=0.6)
        assert gate.check(fresh, artifact(), 0.25) == []

    def test_regression_beyond_margin_fails(self):
        fresh = artifact(wall_time_s=0.7)
        failures = gate.check(fresh, artifact(), 0.25)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_improvement_always_passes(self):
        fresh = artifact(wall_time_s=0.1)
        assert gate.check(fresh, artifact(), 0.25) == []

    def test_correctness_drift_fails_regardless_of_speed(self):
        fresh = artifact(wall_time_s=0.1, compress_ops=526)
        failures = gate.check(fresh, artifact(), 0.25)
        assert any("compress_ops" in failure for failure in failures)

    @pytest.mark.parametrize(
        "overrides",
        [{"machine": "aarch64"}, {"python": "3.12.1"}, {"cpus": 1}],
    )
    def test_environment_mismatch_disarms_timing_only(self, overrides):
        fresh = artifact(wall_time_s=5.0, **overrides)
        assert gate.check(fresh, artifact(), 0.25) == []
        # correctness echoes still enforced across environments
        fresh = artifact(wall_time_s=5.0, relaunches=1, **overrides)
        failures = gate.check(fresh, artifact(), 0.25)
        assert any("relaunches" in failure for failure in failures)

    def test_python_patch_release_does_not_disarm(self):
        fresh = artifact(wall_time_s=0.7, python="3.11.9")
        failures = gate.check(fresh, artifact(), 0.25)
        assert any("regressed" in failure for failure in failures)

    def test_warm_wall_regression_fails_independently(self):
        # The simulator-only wall is gated on its own: a slowdown there
        # must fail even when the codec-dominated cold wall improved.
        fresh = artifact(wall_time_s=0.3, warm_wall_time_s=0.2)
        failures = gate.check(fresh, artifact(), 0.25)
        assert len(failures) == 1
        assert "simulator-only" in failures[0]

    def test_warm_wall_improvement_passes(self):
        fresh = artifact(warm_wall_time_s=0.01)
        assert gate.check(fresh, artifact(), 0.25) == []

    def test_baseline_without_cold_wall_fails(self):
        # Only the (newer) warm wall may be absent from a baseline; a
        # baseline missing wall_time_s is broken, not pre-PR 5.
        baseline = artifact()
        del baseline["wall_time_s"]
        failures = gate.check(artifact(), baseline, 0.25)
        assert any("wall_time_s is unusable" in failure for failure in failures)

    def test_baseline_without_warm_wall_skips_that_check(self):
        baseline = artifact()
        del baseline["warm_wall_time_s"]
        fresh = artifact(warm_wall_time_s=99.0)
        assert gate.check(fresh, baseline, 0.25) == []

    def test_missing_fresh_warm_wall_fails_when_baseline_has_it(self):
        fresh = artifact()
        del fresh["warm_wall_time_s"]
        failures = gate.check(fresh, artifact(), 0.25)
        assert any("warm_wall_time_s" in failure for failure in failures)
