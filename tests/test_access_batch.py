"""Differential tests for the batched access path.

The contract of ``SwapScheme.access_batch`` (and every bulk op beneath
it) is *state equivalence*: the fast run-splitting overrides must leave
exactly the simulator state — list orders, CPU ledger, counters, clock,
relaunch results — the correct-by-construction per-page default leaves.
These tests drive full miniature workloads through both paths and
compare everything observable.
"""

from __future__ import annotations

import random
from types import MethodType

import pytest

from repro.core import AriadneConfig, PlatformConfig, RelaunchScenario
from repro.core.scheme import SwapScheme
from repro.mem import ActiveInactiveOrganizer, HotWarmColdOrganizer, Page
from repro.metrics import KSWAPD
from repro.sim import make_system

from tests.conftest import build_tiny

SCHEMES = ["ZRAM", "SWAP", "Ariadne", "DRAM"]


def build_roomy(scheme_name, trace, config=None):
    """System with no memory pressure: nothing is ever evicted unless
    forced, which makes epoch transitions deterministic to assert on."""
    total = sum(app.total_bytes() for app in trace.apps)
    platform = PlatformConfig(
        dram_bytes=4 * total, zpool_bytes=2 * total, swap_bytes=4 * total
    )
    return make_system(scheme_name, trace, platform=platform,
                       ariadne_config=config)


def _lru_order(lru) -> list[int]:
    return [page.pfn for page in lru]


def _organizer_fingerprint(organizer) -> dict:
    if isinstance(organizer, HotWarmColdOrganizer):
        lists = {
            "hot": _lru_order(organizer.hot),
            "warm": _lru_order(organizer.warm),
            "cold": _lru_order(organizer.cold),
        }
    else:
        lists = {
            "active": _lru_order(organizer.active),
            "inactive": _lru_order(organizer.inactive),
        }
    return {
        "lists": lists,
        "list_operations": organizer.list_operations,
    }


def _system_fingerprint(system) -> dict:
    scheme = system.scheme
    return {
        "clock": system.ctx.clock.now_ns,
        "cpu": dict(system.ctx.cpu._by_pair),
        "counters": system.ctx.counters.as_dict(),
        "organizers": {
            uid: _organizer_fingerprint(org)
            for uid, org in scheme._organizers.items()
        },
        "stored": sorted(scheme._stored_by_pfn),
        "resident": sorted(system.ctx.dram._resident),
        "relaunches": [
            (
                r.app_name,
                r.latency_ns,
                r.pages_from_dram,
                r.pages_from_zpool,
                r.pages_from_flash,
                r.pages_from_staging,
            )
            for app in system.apps
            for r in app.relaunch_results
        ],
    }


def _run_workload(scheme_name, tiny_trace, force_default: bool):
    config = (
        AriadneConfig(scenario=RelaunchScenario.EHL)
        if scheme_name == "Ariadne"
        else None
    )
    system = build_tiny(scheme_name, tiny_trace, config)
    if force_default:
        # Rebind the abstract per-page replay over the scheme's fast
        # override: the reference behavior every override must match.
        system.scheme.access_batch = MethodType(
            SwapScheme.access_batch, system.scheme
        )
    system.launch_all()
    names = [app.name for app in system.apps]
    for name in names + names[:2]:
        system.relaunch(name)
    return _system_fingerprint(system)


class TestBatchedReplayEquivalence:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fast_path_matches_per_page_reference(
        self, scheme_name, tiny_trace
    ):
        fast = _run_workload(scheme_name, tiny_trace, force_default=False)
        reference = _run_workload(scheme_name, tiny_trace, force_default=True)
        assert fast == reference


def _run_script(scheme_name, tiny_trace, force_default, driver):
    """Drive ``driver(system)`` on fast vs reference replay paths."""
    config = (
        AriadneConfig(scenario=RelaunchScenario.AL)
        if scheme_name == "Ariadne"
        else None
    )
    system = build_tiny(scheme_name, tiny_trace, config)
    if force_default:
        system.scheme.access_batch = MethodType(
            SwapScheme.access_batch, system.scheme
        )
    driver(system)
    return _system_fingerprint(system)


class TestEpochInvalidationEquivalence:
    """Adversarial epoch-invalidation sequences, fast vs reference.

    Each driver engineers one way the probe-free verification can go
    stale — repeated replays of the same memoized run, relaunch purge,
    writeback between replays, chunk-sibling materialization, eviction
    mid-batch under pressure — and the fingerprints must still match
    the per-page reference on every observable.
    """

    def _compare(self, scheme_name, tiny_trace, driver):
        fast = _run_script(scheme_name, tiny_trace, False, driver)
        reference = _run_script(scheme_name, tiny_trace, True, driver)
        assert fast == reference

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_repeated_same_session_replays(self, scheme_name, tiny_trace):
        # The same memoized AccessRun objects replay back to back; runs
        # verified by one replay serve the next probe-free, with the
        # relaunch-tail background reclaim evicting in between.
        def driver(system):
            system.launch_all()
            for app in system.apps:
                for _ in range(3):
                    system.relaunch(app.name, 0)

        self._compare(scheme_name, tiny_trace, driver)

    @pytest.mark.parametrize("scheme_name", ["ZRAM", "Ariadne"])
    def test_relaunch_purge_between_replays(self, scheme_name, tiny_trace):
        # prepare_relaunch force-compresses the target between two
        # replays of the same run: every verification must die and the
        # faulting path must re-probe from scratch.
        def driver(system):
            system.launch_all()
            name = system.apps[0].name
            system.relaunch(name, 0)
            system.prepare_relaunch(name, RelaunchScenario.AL)
            system.relaunch(name, 0)
            system.prepare_relaunch(name, RelaunchScenario.EHL)
            system.relaunch(name, 0)

        self._compare(scheme_name, tiny_trace, driver)

    def test_writeback_between_replays(self, tiny_trace):
        # Ariadne's cold writeback runs between two replays of the same
        # session (background reclaim drains cold chunks to flash).
        def driver(system):
            system.launch_all()
            name = system.apps[0].name
            system.relaunch(name, 0)
            for _ in range(3):
                system.scheme.background_reclaim()
            system.relaunch(name, 0)

        self._compare("Ariadne", tiny_trace, driver)

    def test_chunk_sibling_materialization(self, tiny_trace):
        # One access to a page of a multi-page cold chunk materializes
        # its siblings; the following batch replay must see them as
        # resident hits (and the run verification must stay exact).
        def driver(system):
            system.launch_all()
            name = system.apps[0].name
            system.prepare_relaunch(name, RelaunchScenario.AL)
            live = system.app(name)
            session = live.trace.sessions[0]
            system.scheme.access(live.pages[session.execution_pfns[0]])
            system.relaunch(name, 0)
            system.relaunch(name, 0)

        self._compare("Ariadne", tiny_trace, driver)


class TestEpochFastPathWhiteBox:
    """Direct assertions on the epoch layer's probe/skip behavior."""

    def _first_run(self, system):
        live = system.apps[0]
        return live, live.access_run(
            "relaunch", 0, live.trace.sessions[0].relaunch_pfns
        )

    def test_fully_resident_app_replays_without_probes(self, tiny_trace):
        system = build_roomy("ZRAM", tiny_trace)
        system.launch_all()
        scheme = system.scheme
        _live, run = self._first_run(system)
        probes = scheme.residency_probes
        skips = scheme.epoch_skips
        summary = scheme.access_batch(run)
        assert summary.pages == len(run) == summary.from_dram
        assert scheme.residency_probes == probes
        assert scheme.epoch_skips == skips + 1
        # Nothing was ever evicted: the epoch never moved.
        assert scheme.eviction_epoch == 0

    def test_eviction_invalidates_then_run_reverifies(self, tiny_trace):
        system = build_roomy("ZRAM", tiny_trace)
        system.launch_all()
        scheme = system.scheme
        live, run = self._first_run(system)
        scheme.force_compress_app(live.uid)
        assert scheme.eviction_epoch > 0
        probes = scheme.residency_probes
        summary = scheme.access_batch(run)
        assert summary.from_zpool > 0  # faults: verification was stale
        assert scheme.residency_probes > probes
        # No same-app eviction happened mid-batch (roomy platform), so
        # the run re-verified at the end: the repeat replay is
        # probe-free even though other pages of the app remain stored.
        assert scheme._nonresident_pages[live.uid] > 0
        probes = scheme.residency_probes
        repeat = scheme.access_batch(run)
        assert repeat.pages == repeat.from_dram == len(run)
        assert scheme.residency_probes == probes

    def test_run_verification_survives_other_apps_evictions(
        self, tiny_trace
    ):
        system = build_roomy("ZRAM", tiny_trace)
        system.launch_all()
        scheme = system.scheme
        live, run = self._first_run(system)
        scheme.force_compress_app(live.uid)
        scheme.access_batch(run)  # faults back; run re-verified
        other = system.apps[1]
        scheme.force_compress_app(other.uid)
        probes = scheme.residency_probes
        summary = scheme.access_batch(run)
        assert summary.from_dram == summary.pages
        assert scheme.residency_probes == probes, (
            "another app's evictions must not invalidate this app's run"
        )

    def test_same_app_eviction_invalidates_run(self, tiny_trace):
        system = build_roomy("ZRAM", tiny_trace)
        system.launch_all()
        scheme = system.scheme
        live, run = self._first_run(system)
        scheme.force_compress_app(live.uid)
        scheme.access_batch(run)  # run re-verified
        scheme.force_compress_app(live.uid)  # evicts the run's pages
        probes = scheme.residency_probes
        summary = scheme.access_batch(run)
        assert summary.from_zpool > 0
        assert scheme.residency_probes > probes

    def test_purge_bumps_owner_epoch(self, tiny_trace):
        system = build_roomy("ZRAM", tiny_trace)
        system.launch_all()
        scheme = system.scheme
        live = system.apps[0]
        scheme.force_compress_app(live.uid)
        epoch = scheme.eviction_epoch
        stamp = scheme._app_eviction_epoch[live.uid]
        assert scheme._drop_oldest_chunk()
        assert scheme.eviction_epoch == epoch + 1
        assert scheme._app_eviction_epoch[live.uid] > stamp

    def test_writeback_bumps_owner_epoch(self, tiny_trace):
        system = build_roomy(
            "Ariadne", tiny_trace, AriadneConfig(scenario=RelaunchScenario.AL)
        )
        system.launch_all()
        scheme = system.scheme
        live = system.apps[0]
        scheme.force_compress_app(live.uid)
        epoch = scheme.eviction_epoch
        assert scheme._writeback_one(KSWAPD, allow_warm=True)
        assert scheme.eviction_epoch == epoch + 1
        assert scheme._app_eviction_epoch[live.uid] == scheme.eviction_epoch


class TestBulkOrganizerOps:
    """on_access_run / add_page_run equal their per-page loops."""

    def _random_mixed_sequence(self, pages, seed):
        rng = random.Random(seed)
        return [rng.choice(pages) for _ in range(64)]

    @pytest.mark.parametrize("organizer_cls", ["ai", "hwc"])
    @pytest.mark.parametrize("relaunch", [False, True])
    def test_on_access_run_equivalence(self, organizer_cls, relaunch):
        def make():
            if organizer_cls == "ai":
                org = ActiveInactiveOrganizer(uid=1)
            else:
                org = HotWarmColdOrganizer(uid=1, hot_seed_limit=4)
            pages = [Page(pfn=i, uid=1) for i in range(12)]
            for page in pages:
                org.add_page(page)
            # Promote a few so the run crosses list boundaries.
            for page in pages[3:7]:
                org.on_access(page, now_ns=5)
            if relaunch and organizer_cls == "hwc":
                org.begin_relaunch()
            return org, pages

        bulk_org, bulk_pages = make()
        loop_org, loop_pages = make()
        sequence = self._random_mixed_sequence(range(12), seed=7)

        bulk_org.on_access_run([bulk_pages[i] for i in sequence], now_ns=9)
        for i in sequence:
            loop_org.on_access(loop_pages[i], now_ns=9)

        assert _organizer_fingerprint(bulk_org) == _organizer_fingerprint(
            loop_org
        )
        for bulk_page, loop_page in zip(bulk_pages, loop_pages):
            assert bulk_page.access_count == loop_page.access_count
            assert bulk_page.last_access_ns == loop_page.last_access_ns
        if relaunch and organizer_cls == "hwc":
            assert bulk_org._relaunch_accessed == loop_org._relaunch_accessed

    def test_hwc_add_page_run_splits_seed_budget(self):
        bulk = HotWarmColdOrganizer(uid=1, hot_seed_limit=5)
        loop = HotWarmColdOrganizer(uid=1, hot_seed_limit=5)
        bulk_pages = [Page(pfn=i, uid=1) for i in range(8)]
        loop_pages = [Page(pfn=i, uid=1) for i in range(8)]
        bulk.add_page_run(bulk_pages[:3])  # all inside the seed budget
        bulk.add_page_run(bulk_pages[3:])  # straddles the budget boundary
        for page in loop_pages:
            loop.add_page(page)
        assert _organizer_fingerprint(bulk) == _organizer_fingerprint(loop)

    def test_hwc_add_page_run_during_relaunch_goes_hot(self):
        org = HotWarmColdOrganizer(uid=1, hot_seed_limit=0)
        org.end_launch_window()
        org.begin_relaunch()
        batch = [Page(pfn=i, uid=1) for i in range(3)]
        org.add_page_run(batch)
        assert _lru_order(org.hot) == [0, 1, 2]
