"""Differential tests for the batched access path.

The contract of ``SwapScheme.access_batch`` (and every bulk op beneath
it) is *state equivalence*: the fast run-splitting overrides must leave
exactly the simulator state — list orders, CPU ledger, counters, clock,
relaunch results — the correct-by-construction per-page default leaves.
These tests drive full miniature workloads through both paths and
compare everything observable.
"""

from __future__ import annotations

import random
from types import MethodType

import pytest

from repro.core import AriadneConfig, RelaunchScenario
from repro.core.scheme import SwapScheme
from repro.mem import ActiveInactiveOrganizer, HotWarmColdOrganizer, Page

from tests.conftest import build_tiny

SCHEMES = ["ZRAM", "SWAP", "Ariadne", "DRAM"]


def _lru_order(lru) -> list[int]:
    return [page.pfn for page in lru]


def _organizer_fingerprint(organizer) -> dict:
    if isinstance(organizer, HotWarmColdOrganizer):
        lists = {
            "hot": _lru_order(organizer.hot),
            "warm": _lru_order(organizer.warm),
            "cold": _lru_order(organizer.cold),
        }
    else:
        lists = {
            "active": _lru_order(organizer.active),
            "inactive": _lru_order(organizer.inactive),
        }
    return {
        "lists": lists,
        "list_operations": organizer.list_operations,
    }


def _system_fingerprint(system) -> dict:
    scheme = system.scheme
    return {
        "clock": system.ctx.clock.now_ns,
        "cpu": dict(system.ctx.cpu._by_pair),
        "counters": system.ctx.counters.as_dict(),
        "organizers": {
            uid: _organizer_fingerprint(org)
            for uid, org in scheme._organizers.items()
        },
        "stored": sorted(scheme._stored_by_pfn),
        "resident": sorted(system.ctx.dram._resident),
        "relaunches": [
            (
                r.app_name,
                r.latency_ns,
                r.pages_from_dram,
                r.pages_from_zpool,
                r.pages_from_flash,
                r.pages_from_staging,
            )
            for app in system.apps
            for r in app.relaunch_results
        ],
    }


def _run_workload(scheme_name, tiny_trace, force_default: bool):
    config = (
        AriadneConfig(scenario=RelaunchScenario.EHL)
        if scheme_name == "Ariadne"
        else None
    )
    system = build_tiny(scheme_name, tiny_trace, config)
    if force_default:
        # Rebind the abstract per-page replay over the scheme's fast
        # override: the reference behavior every override must match.
        system.scheme.access_batch = MethodType(
            SwapScheme.access_batch, system.scheme
        )
    system.launch_all()
    names = [app.name for app in system.apps]
    for name in names + names[:2]:
        system.relaunch(name)
    return _system_fingerprint(system)


class TestBatchedReplayEquivalence:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fast_path_matches_per_page_reference(
        self, scheme_name, tiny_trace
    ):
        fast = _run_workload(scheme_name, tiny_trace, force_default=False)
        reference = _run_workload(scheme_name, tiny_trace, force_default=True)
        assert fast == reference


class TestBulkOrganizerOps:
    """on_access_run / add_page_run equal their per-page loops."""

    def _random_mixed_sequence(self, pages, seed):
        rng = random.Random(seed)
        return [rng.choice(pages) for _ in range(64)]

    @pytest.mark.parametrize("organizer_cls", ["ai", "hwc"])
    @pytest.mark.parametrize("relaunch", [False, True])
    def test_on_access_run_equivalence(self, organizer_cls, relaunch):
        def make():
            if organizer_cls == "ai":
                org = ActiveInactiveOrganizer(uid=1)
            else:
                org = HotWarmColdOrganizer(uid=1, hot_seed_limit=4)
            pages = [Page(pfn=i, uid=1) for i in range(12)]
            for page in pages:
                org.add_page(page)
            # Promote a few so the run crosses list boundaries.
            for page in pages[3:7]:
                org.on_access(page, now_ns=5)
            if relaunch and organizer_cls == "hwc":
                org.begin_relaunch()
            return org, pages

        bulk_org, bulk_pages = make()
        loop_org, loop_pages = make()
        sequence = self._random_mixed_sequence(range(12), seed=7)

        bulk_org.on_access_run([bulk_pages[i] for i in sequence], now_ns=9)
        for i in sequence:
            loop_org.on_access(loop_pages[i], now_ns=9)

        assert _organizer_fingerprint(bulk_org) == _organizer_fingerprint(
            loop_org
        )
        for bulk_page, loop_page in zip(bulk_pages, loop_pages):
            assert bulk_page.access_count == loop_page.access_count
            assert bulk_page.last_access_ns == loop_page.last_access_ns
        if relaunch and organizer_cls == "hwc":
            assert bulk_org._relaunch_accessed == loop_org._relaunch_accessed

    def test_hwc_add_page_run_splits_seed_budget(self):
        bulk = HotWarmColdOrganizer(uid=1, hot_seed_limit=5)
        loop = HotWarmColdOrganizer(uid=1, hot_seed_limit=5)
        bulk_pages = [Page(pfn=i, uid=1) for i in range(8)]
        loop_pages = [Page(pfn=i, uid=1) for i in range(8)]
        bulk.add_page_run(bulk_pages[:3])  # all inside the seed budget
        bulk.add_page_run(bulk_pages[3:])  # straddles the budget boundary
        for page in loop_pages:
            loop.add_page(page)
        assert _organizer_fingerprint(bulk) == _organizer_fingerprint(loop)

    def test_hwc_add_page_run_during_relaunch_goes_hot(self):
        org = HotWarmColdOrganizer(uid=1, hot_seed_limit=0)
        org.end_launch_window()
        org.begin_relaunch()
        batch = [Page(pfn=i, uid=1) for i in range(3)]
        org.add_page_run(batch)
        assert _lru_order(org.hot) == [0, 1, 2]
