"""Scenario-runner tests (the Figure 3 / Table 2 machinery)."""

from __future__ import annotations

import pytest

from repro.sim import run_heavy_scenario, run_light_scenario
from repro.units import SECOND
from tests.conftest import build_tiny


@pytest.fixture()
def light_result(tiny_trace):
    system = build_tiny("ZRAM", tiny_trace)
    return run_light_scenario(system, duration_s=3.0)


def test_scenario_runs_past_requested_duration(light_result):
    assert light_result.wall_ns >= 3.0 * SECOND


def test_scenario_records_relaunches(light_result):
    assert light_result.relaunches
    assert all(r.latency_ns > 0 for r in light_result.relaunches)


def test_scenario_energy_is_positive_and_decomposed(light_result):
    energy = light_result.energy
    assert energy.total_j > 0
    assert energy.base_j > 0
    assert energy.total_j == pytest.approx(
        energy.base_j + energy.cpu_j + energy.dram_j + energy.flash_j
    )


def test_zram_scenario_does_codec_work(light_result):
    assert light_result.codec_cpu_ns > 0
    assert light_result.kswapd_cpu_ns > 0


def test_heavy_scenario_relaunches_more_than_light(tiny_trace):
    light = run_light_scenario(build_tiny("ZRAM", tiny_trace), duration_s=3.0)
    heavy = run_heavy_scenario(build_tiny("ZRAM", tiny_trace), duration_s=3.0)
    assert len(heavy.relaunches) > len(light.relaunches)


def test_dram_scenario_has_no_codec_work(tiny_trace):
    result = run_light_scenario(build_tiny("DRAM", tiny_trace), duration_s=2.0)
    assert result.codec_cpu_ns == 0
    assert result.kswapd_cpu_ns > 0  # file writeback still happens


def test_swap_scenario_wears_flash(tiny_trace):
    result = run_light_scenario(build_tiny("SWAP", tiny_trace), duration_s=2.0)
    assert result.flash_bytes_written > 0
