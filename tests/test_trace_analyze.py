"""Analysis-function tests on hand-crafted inputs."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.mem.page import Hotness
from repro.trace.analyze import consecutive_probability, hotness_mix_by_part


class TestConsecutiveProbability:
    def test_fully_sequential(self):
        assert consecutive_probability([1, 2, 3, 4, 5], 2) == 1.0
        assert consecutive_probability([1, 2, 3, 4, 5], 4) == 1.0

    def test_fully_random_order(self):
        assert consecutive_probability([10, 5, 99, 2], 2) == 0.0

    def test_partial_runs(self):
        # pairs: (1,2)+ (2,9)- (9,10)+ (10,11)+ -> 3/4
        assert consecutive_probability([1, 2, 9, 10, 11], 2) == 0.75

    def test_window_of_four_requires_three_steps(self):
        sequence = [1, 2, 3, 4, 9]  # windows: [1..4]+ [2..9]-
        assert consecutive_probability(sequence, 4) == 0.5

    def test_short_sequence_returns_zero(self):
        assert consecutive_probability([1], 2) == 0.0
        assert consecutive_probability([], 2) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(TraceFormatError):
            consecutive_probability([1, 2], 1)


class TestHotnessMix:
    def test_proportions_per_part(self):
        ordered = [Hotness.HOT] * 5 + [Hotness.COLD] * 5
        mixes = hotness_mix_by_part(ordered, n_parts=2)
        assert mixes[0][Hotness.HOT] == 1.0
        assert mixes[1][Hotness.COLD] == 1.0

    def test_proportions_sum_to_one(self):
        ordered = [Hotness.HOT, Hotness.WARM, Hotness.COLD] * 10
        for mix in hotness_mix_by_part(ordered, n_parts=10):
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(TraceFormatError):
            hotness_mix_by_part([], n_parts=10)

    def test_invalid_parts_rejected(self):
        with pytest.raises(TraceFormatError):
            hotness_mix_by_part([Hotness.HOT], n_parts=0)
