"""App-profile catalog and run-mix solver tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workload import APP_CATALOG, AppProfile, profile_by_name, solve_run_mix


def test_catalog_has_the_papers_ten_apps():
    assert len(APP_CATALOG) == 10
    names = {profile.name for profile in APP_CATALOG}
    assert {"YouTube", "Twitter", "Firefox", "GEarth", "BangDream"} <= names


def test_uids_are_unique():
    uids = [profile.uid for profile in APP_CATALOG]
    assert len(uids) == len(set(uids))


def test_table1_values_encoded():
    youtube = profile_by_name("YouTube")
    assert youtube.anon_mb_10s == 177
    assert youtube.anon_mb_5min == 358
    bang = profile_by_name("BangDream")
    assert bang.anon_mb_5min == 821


def test_table3_values_encoded():
    youtube = profile_by_name("YouTube")
    assert youtube.locality_p2 == 0.86
    assert youtube.locality_p4 == 0.72


def test_unknown_app_rejected():
    with pytest.raises(ConfigError):
        profile_by_name("Snapchat")


def test_growth_curve_is_monotonic_and_anchored():
    profile = profile_by_name("YouTube")
    assert profile.anon_mb_at(0) == 0
    assert profile.anon_mb_at(10) == pytest.approx(profile.anon_mb_10s)
    assert profile.anon_mb_at(300) == pytest.approx(profile.anon_mb_5min)
    assert profile.anon_mb_at(600) == profile.anon_mb_5min
    samples = [profile.anon_mb_at(t) for t in (1, 5, 10, 30, 60, 120, 300)]
    assert samples == sorted(samples)


def test_profile_validation_rejects_bad_fractions():
    with pytest.raises(ConfigError):
        AppProfile(
            name="Bad", uid=99, anon_mb_10s=10, anon_mb_5min=20,
            hot_fraction=0.8, warm_fraction=0.5,  # sums beyond 1.0
            hot_similarity=0.7, reused_fraction=0.9,
            locality_p2=0.8, locality_p4=0.6, dram_relaunch_ms=10,
        )


def test_profile_validation_rejects_p4_above_p2():
    with pytest.raises(ConfigError):
        AppProfile(
            name="Bad", uid=99, anon_mb_10s=10, anon_mb_5min=20,
            hot_fraction=0.2, warm_fraction=0.2,
            hot_similarity=0.7, reused_fraction=0.9,
            locality_p2=0.5, locality_p4=0.6, dram_relaunch_ms=10,
        )


class TestRunMixSolver:
    def test_paper_youtube_point(self):
        w, k = solve_run_mix(0.86, 0.72)
        assert k >= 4
        assert 0.0 <= w <= 0.95

    def test_degenerate_equal_probabilities(self):
        w, k = solve_run_mix(0.8, 0.8)
        assert w == 0.0
        assert k >= 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            solve_run_mix(0.0, 0.0)
        with pytest.raises(ConfigError):
            solve_run_mix(0.5, 0.9)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.9),
    )
    def test_solver_prediction_matches_target(self, p2, p4):
        """The closed-form mixture must predict p2 within tolerance
        whenever the (p2, p4) pair is feasible for a two-point mixture
        (the solver clamps infeasible pairs, which is fine — the paper's
        values are all feasible, as the test below pins down)."""
        if p4 > p2 - 0.02:
            p4 = p2 - 0.02
        if p4 <= 0.0:
            return
        w, k = solve_run_mix(p2, p4)
        if w in (0.0, 0.999):
            return  # clamped: pair infeasible for this mixture family
        expected_len = w + (1 - w) * k
        predicted_p2 = (1 - w) * (k - 1) / expected_len
        # K is rounded to an integer, so allow modest slack.
        assert predicted_p2 == pytest.approx(p2, abs=0.08)

    @pytest.mark.parametrize(
        "p2,p4",
        [(0.86, 0.72), (0.81, 0.61), (0.69, 0.43), (0.77, 0.54), (0.61, 0.33)],
        ids=["YouTube", "Twitter", "Firefox", "GEarth", "BangDream"],
    )
    def test_paper_table3_points_are_feasible(self, p2, p4):
        """Every (p2, p4) pair the paper measured solves without clamping."""
        w, k = solve_run_mix(p2, p4)
        assert 0.0 < w < 0.999
        expected_len = w + (1 - w) * k
        predicted_p2 = (1 - w) * (k - 1) / expected_len
        assert predicted_p2 == pytest.approx(p2, abs=0.05)
