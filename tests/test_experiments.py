"""Experiment-harness tests: every experiment runs in quick mode and its
headline claim (the paper's shape) holds."""

from __future__ import annotations

import pytest

from repro.experiments import experiment, experiment_ids
from repro.workload import profile_by_name


def test_registry_covers_every_table_and_figure():
    expected = {
        "table1", "fig2", "fig3", "table2", "fig4", "fig5", "fig6",
        "table3", "platform", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "chaos", "pressure", "zswap_compare",
        "zswap_sensitivity", "fleet",
    }
    assert set(experiment_ids()) == expected


def test_table1_matches_paper_within_one_page():
    result = experiment("table1").run()
    for row in result.rows:
        assert row.measured_10s_mb == pytest.approx(row.paper_10s_mb, abs=2.0)
        assert row.measured_5min_mb == pytest.approx(row.paper_5min_mb, abs=2.0)
    assert "YouTube" in result.render()


def test_fig5_similarity_and_reuse_near_paper_means():
    result = experiment("fig5").run()
    assert result.mean_similarity == pytest.approx(0.70, abs=0.06)
    assert result.mean_reuse == pytest.approx(0.98, abs=0.03)


def test_fig6_shapes_match_paper():
    result = experiment("fig6").run(quick=True)
    # Paper: 59.2x / 41.8x total-compression-time spans.
    assert result.speedup_small_vs_large("lz4") == pytest.approx(59.2, rel=0.1)
    assert result.speedup_small_vs_large("lzo") == pytest.approx(41.8, rel=0.1)
    for codec in ("lz4", "lzo"):
        first, last = result.ratio_span(codec)
        assert last > first * 1.5  # ratio grows substantially with chunk
        points = result.points_for(codec)
        ratios = [p.ratio for p in points]
        assert ratios == sorted(ratios)  # monotone in chunk size


@pytest.mark.slow
def test_fig2_zram_inflation_near_paper():
    result = experiment("fig2").run(quick=True)
    assert 1.5 <= result.zram_over_dram <= 3.0  # paper: 2.1x
    assert result.swap_over_dram > result.zram_over_dram


@pytest.mark.slow
def test_table3_locality_matches_profiles():
    result = experiment("table3").run(quick=True)
    for app, measured in result.p2.items():
        profile = profile_by_name(app)
        assert measured == pytest.approx(profile.locality_p2, abs=0.10)
        assert result.p4[app] < measured


@pytest.mark.slow
def test_fig13_ehl_large_cold_beats_zram():
    result = experiment("fig13").run(quick=True)
    assert result.ehl_beats_zram_everywhere()


@pytest.mark.slow
def test_fig14_identification_quality():
    result = experiment("fig14").run(quick=True)
    assert result.mean_coverage == pytest.approx(0.70, abs=0.12)
    assert result.mean_accuracy > 0.85


def test_platform_info_renders():
    text = experiment("platform").run().render()
    assert "zpool" in text
    assert "Pixel 7" in text


def test_render_output_is_nonempty_text():
    for name in ("table1", "fig5"):
        rendered = experiment(name).run(quick=True).render()
        assert isinstance(rendered, str)
        assert len(rendered.splitlines()) >= 3
