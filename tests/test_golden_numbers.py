"""Golden-number tests: key fig2/fig13 outputs pinned to the pre-
optimization seed.

Every performance change in this codebase is required to be
*number-invariant*: the optimized codecs emit byte-identical blobs, the
batched reclaim selects identical victims, and the caches memoize only
deterministic facts.  These tests pin exact figure outputs captured from
the seed implementation — any drift, however small, is a bug in an
optimization, not a tolerance issue, which is why comparisons are exact
(``==``) rather than approximate.

The golden values were captured by running ``fig2.run(quick=True)`` and
``fig13.run(quick=True)`` on the seed revision (commit 017f06b).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2, fig13

#: Seed fig2 (quick): relaunch latency in ms per scheme per app.
GOLDEN_FIG2_LATENCY_MS = {
    "DRAM": {
        "YouTube": 67.999935,
        "Twitter": 59.999976,
        "Firefox": 94.999788,
    },
    "ZRAM": {
        "YouTube": 145.514229,
        "Twitter": 129.19431,
        "Firefox": 229.505808,
    },
    "SWAP": {
        "YouTube": 321.262029,
        "Twitter": 262.488717,
        "Firefox": 477.72576,
    },
}

#: Seed fig13 (quick): compression ratio per (scheme, app).
GOLDEN_FIG13_RATIOS = {
    ("ZRAM", "YouTube"): 2.2817902890307433,
    ("ZRAM", "Twitter"): 2.505847196404621,
    ("ZRAM", "Firefox"): 2.411207987876279,
    ("Ariadne-EHL-1K-4K-16K", "YouTube"): 2.5162762438398705,
    ("Ariadne-EHL-1K-4K-16K", "Twitter"): 2.7833711957146265,
    ("Ariadne-EHL-1K-4K-16K", "Firefox"): 2.7009784122849676,
    ("Ariadne-AL-512-2K-16K", "YouTube"): 2.2257608909309345,
    ("Ariadne-AL-512-2K-16K", "Twitter"): 2.3988222643523125,
    ("Ariadne-AL-512-2K-16K", "Firefox"): 2.3685737164797063,
}


@pytest.fixture(scope="module")
def fig2_result():
    return fig2.run(quick=True)


@pytest.fixture(scope="module")
def fig13_result():
    return fig13.run(quick=True)


class TestFig2Golden:
    def test_schemes_present(self, fig2_result):
        assert set(fig2_result.latency_ms) == set(GOLDEN_FIG2_LATENCY_MS)

    def test_latencies_bit_identical_to_seed(self, fig2_result):
        for scheme, per_app in GOLDEN_FIG2_LATENCY_MS.items():
            for app, golden_ms in per_app.items():
                measured = fig2_result.latency_ms[scheme][app]
                assert measured == golden_ms, (
                    f"fig2 {scheme}/{app}: {measured!r} != seed {golden_ms!r}"
                )


class TestFig13Golden:
    def test_ratios_bit_identical_to_seed(self, fig13_result):
        for (scheme, app), golden_ratio in GOLDEN_FIG13_RATIOS.items():
            measured = fig13_result.ratio(scheme, app)
            assert measured == golden_ratio, (
                f"fig13 {scheme}/{app}: {measured!r} != seed {golden_ratio!r}"
            )

    def test_headline_claim_still_holds(self, fig13_result):
        assert fig13_result.ehl_beats_zram_everywhere()
