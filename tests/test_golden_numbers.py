"""Golden-number tests: key fig2/fig13 outputs and a full heavy-scenario
fingerprint pinned to the pre-optimization seed.

Every performance change in this codebase is required to be
*number-invariant*: the optimized codecs emit byte-identical blobs, the
batched reclaim selects identical victims, batched access replay
coalesces only bookkeeping, and the caches memoize only deterministic
facts.  These tests pin exact figure outputs captured from the seed
implementation — any drift, however small, is a bug in an optimization,
not a tolerance issue, which is why comparisons are exact (``==``)
rather than approximate.

The fig2/fig13 golden values were captured by running
``fig2.run(quick=True)`` and ``fig13.run(quick=True)`` on the seed
revision (commit 017f06b).  The heavy-scenario fingerprint was captured
from the same numbers at the fast-path PR revision (verified bit-equal
to the seed) and locks the batched replay path well beyond what the
figure outputs exercise: wall clock, every relaunch latency, per-thread
and per-activity CPU, every counter, and flash traffic.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments import experiment
from repro.experiments.common import scenario_build, workload_trace
from repro.sim.scenario import run_heavy_scenario

#: Seed fig2 (quick): relaunch latency in ms per scheme per app.
GOLDEN_FIG2_LATENCY_MS = {
    "DRAM": {
        "YouTube": 67.999935,
        "Twitter": 59.999976,
        "Firefox": 94.999788,
    },
    "ZRAM": {
        "YouTube": 145.514229,
        "Twitter": 129.19431,
        "Firefox": 229.505808,
    },
    "SWAP": {
        "YouTube": 321.262029,
        "Twitter": 262.488717,
        "Firefox": 477.72576,
    },
}

#: Seed fig13 (quick): compression ratio per (scheme, app).
GOLDEN_FIG13_RATIOS = {
    ("ZRAM", "YouTube"): 2.2817902890307433,
    ("ZRAM", "Twitter"): 2.505847196404621,
    ("ZRAM", "Firefox"): 2.411207987876279,
    ("Ariadne-EHL-1K-4K-16K", "YouTube"): 2.5162762438398705,
    ("Ariadne-EHL-1K-4K-16K", "Twitter"): 2.7833711957146265,
    ("Ariadne-EHL-1K-4K-16K", "Firefox"): 2.7009784122849676,
    ("Ariadne-AL-512-2K-16K", "YouTube"): 2.2257608909309345,
    ("Ariadne-AL-512-2K-16K", "Twitter"): 2.3988222643523125,
    ("Ariadne-AL-512-2K-16K", "Firefox"): 2.3685737164797063,
}


#: Quick-mode heavy scenario (3 apps, 10 simulated seconds, Ariadne):
#: the full measured state of one run, bit-exact.
GOLDEN_HEAVY_FINGERPRINT = {
    "wall_ns": 10066963733,
    "n_relaunches": 135,
    # blake2b-16 over the comma-joined per-relaunch latencies (ns).
    "relaunch_digest": "58f3c15084a7dcaa9e870888bbba8074",
    "cpu_by_thread": {"app": 183710082, "kswapd": 3243473738},
    "cpu_by_activity": {
        "compress": 1810517888,
        "decompress": 136216832,
        "fault": 9344000,
        "file_writeback": 1413120000,
        "flash_read": 2496000,
        "list_ops": 38849100,
        "writeback": 16640000,
    },
    "counters": {
        "bytes_original": 3911680,
        "bytes_stored": 1363691,
        "chunks_written_back": 40,
        "compress_ops": 239,
        "decompress_ops": 73,
        "dram_bytes_moved": 653787136,
        "file_pages_written": 4416,
        "flash_reads": 6,
        "pages_compressed": 955,
        "pages_decompressed": 292,
        "pages_swapped_in": 292,
        "pages_written_back": 160,
        "predecomp_skipped_cold": 66,
    },
    "flash_bytes_read": 2429888,
    "flash_bytes_written": 15320320,
}


#: zswap_compare (quick), ZSWAP cell: the writeback tier's measured
#: behavior on the tight-zpool platform, captured at the PR-9 revision
#: that introduced the scheme.  Exact — the simulation is all-integer,
#: so any drift is an unintended behavior change, not noise.
GOLDEN_ZSWAP_QUICK = {
    "relaunches": 9,
    "mean_latency_ms": 121.08621344444444,
    "zswap": {
        "zswap_writeback_batches": 27,
        "zswap_pages_written_back": 864,
        "zswap_batch_pages_max": 32,
        "zswap_readahead_reads": 350,
        "zswap_readahead_hits": 302,
        "zswap_readahead_wasted": 25,
        "zswap_readahead_aborted": 0,
    },
}

#: zswap_sensitivity (quick): per-config (batches, pages written back,
#: readahead reads, readahead hits, per-device write commands).  Pins
#: the knob responses themselves: page-cluster 0 kills readahead,
#: device count 2 stripes the command train near-evenly.
GOLDEN_ZSWAP_SENSITIVITY = {
    "c32-p0-d1": (26, 832, 0, 0, (380,)),
    "c32-p0-d2": (26, 832, 0, 0, (189, 191)),
    "c32-p3-d1": (27, 864, 350, 302, (395,)),
    "c32-p3-d2": (27, 864, 350, 302, (204, 191)),
}


@pytest.fixture(scope="module")
def fig2_result():
    return experiment("fig2").run(quick=True)


@pytest.fixture(scope="module")
def fig13_result():
    return experiment("fig13").run(quick=True)


class TestFig2Golden:
    def test_schemes_present(self, fig2_result):
        assert set(fig2_result.latency_ms) == set(GOLDEN_FIG2_LATENCY_MS)

    def test_latencies_bit_identical_to_seed(self, fig2_result):
        for scheme, per_app in GOLDEN_FIG2_LATENCY_MS.items():
            for app, golden_ms in per_app.items():
                measured = fig2_result.latency_ms[scheme][app]
                assert measured == golden_ms, (
                    f"fig2 {scheme}/{app}: {measured!r} != seed {golden_ms!r}"
                )


class TestFig13Golden:
    def test_ratios_bit_identical_to_seed(self, fig13_result):
        for (scheme, app), golden_ratio in GOLDEN_FIG13_RATIOS.items():
            measured = fig13_result.ratio(scheme, app)
            assert measured == golden_ratio, (
                f"fig13 {scheme}/{app}: {measured!r} != seed {golden_ratio!r}"
            )

    def test_headline_claim_still_holds(self, fig13_result):
        assert fig13_result.ehl_beats_zram_everywhere()


@pytest.fixture(scope="module")
def zswap_compare_result():
    return experiment("zswap_compare").run(quick=True)


class TestZswapGolden:
    def test_scheme_matrix_includes_zswap(self, zswap_compare_result):
        assert set(zswap_compare_result.cells) == {
            "DRAM", "ZRAM", "SWAP", "ZSWAP", "Ariadne",
        }

    def test_zswap_cell_bit_identical(self, zswap_compare_result):
        cell = zswap_compare_result.cells["ZSWAP"]
        assert cell.relaunches == GOLDEN_ZSWAP_QUICK["relaunches"]
        assert (
            cell.mean_latency_ms == GOLDEN_ZSWAP_QUICK["mean_latency_ms"]
        )
        assert cell.zswap == GOLDEN_ZSWAP_QUICK["zswap"]

    def test_baselines_carry_no_zswap_traffic(self, zswap_compare_result):
        for scheme in ("DRAM", "ZRAM", "SWAP", "Ariadne"):
            counters = zswap_compare_result.cells[scheme].zswap
            assert not any(counters.values()), (scheme, counters)

    def test_sensitivity_knobs_bit_identical(self):
        result = experiment("zswap_sensitivity").run(quick=True)
        measured = {
            key: (
                cell.writeback_batches,
                cell.pages_written_back,
                cell.readahead_reads,
                cell.readahead_hits,
                cell.write_commands_by_device,
            )
            for key, cell in result.cells.items()
        }
        assert measured == GOLDEN_ZSWAP_SENSITIVITY


@pytest.fixture(scope="module")
def heavy_scenario_result():
    trace = workload_trace(n_apps=3, sessions=4)
    system = scenario_build("Ariadne", trace)
    return run_heavy_scenario(system, duration_s=10.0)


class TestHeavyScenarioFingerprint:
    """Bit-exact scenario fingerprint: locks the batched access replay
    (and every other number-invariant optimization) against the seed's
    measured state, far beyond the per-figure golden values."""

    def test_wall_clock(self, heavy_scenario_result):
        assert (
            heavy_scenario_result.wall_ns
            == GOLDEN_HEAVY_FINGERPRINT["wall_ns"]
        )

    def test_every_relaunch_latency(self, heavy_scenario_result):
        latencies = [r.latency_ns for r in heavy_scenario_result.relaunches]
        assert len(latencies) == GOLDEN_HEAVY_FINGERPRINT["n_relaunches"]
        digest = hashlib.blake2b(
            ",".join(map(str, latencies)).encode(), digest_size=16
        ).hexdigest()
        assert digest == GOLDEN_HEAVY_FINGERPRINT["relaunch_digest"]

    def test_cpu_accounting(self, heavy_scenario_result):
        assert (
            heavy_scenario_result.cpu_by_thread
            == GOLDEN_HEAVY_FINGERPRINT["cpu_by_thread"]
        )
        assert (
            heavy_scenario_result.cpu_by_activity
            == GOLDEN_HEAVY_FINGERPRINT["cpu_by_activity"]
        )

    def test_all_counters(self, heavy_scenario_result):
        assert (
            heavy_scenario_result.counters
            == GOLDEN_HEAVY_FINGERPRINT["counters"]
        )

    def test_flash_traffic(self, heavy_scenario_result):
        assert (
            heavy_scenario_result.flash_bytes_read
            == GOLDEN_HEAVY_FINGERPRINT["flash_bytes_read"]
        )
        assert (
            heavy_scenario_result.flash_bytes_written
            == GOLDEN_HEAVY_FINGERPRINT["flash_bytes_written"]
        )
