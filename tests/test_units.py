"""Unit-helper tests."""

from __future__ import annotations

import pytest

from repro import units


def test_page_size_is_4k():
    assert units.PAGE_SIZE == 4096


def test_time_conversions_roundtrip():
    assert units.ns_to_ms(units.MS) == 1.0
    assert units.ns_to_us(units.US) == 1.0
    assert units.ns_to_s(units.SECOND) == 1.0


def test_pages_for_bytes_rounds_up():
    assert units.pages_for_bytes(1) == 1
    assert units.pages_for_bytes(units.PAGE_SIZE) == 1
    assert units.pages_for_bytes(units.PAGE_SIZE + 1) == 2
    assert units.pages_for_bytes(0) == 0


def test_scaled_mb_inverts_scale_factor():
    sim_bytes = 10 * units.MIB
    assert units.scaled_mb(sim_bytes) == pytest.approx(10 * units.SCALE_FACTOR)


def test_fmt_bytes_picks_unit():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2 * units.KIB) == "2.0 KiB"
    assert units.fmt_bytes(3 * units.MIB) == "3.0 MiB"
    assert units.fmt_bytes(4 * units.GIB) == "4.0 GiB"


@pytest.mark.parametrize(
    "size,label",
    [(256, "256"), (512, "512"), (1024, "1K"), (2048, "2K"), (16384, "16K")],
)
def test_fmt_chunk_matches_paper_labels(size, label):
    assert units.fmt_chunk(size) == label


@pytest.mark.parametrize("label", ["256", "512", "1K", "2K", "16K", "32K"])
def test_parse_chunk_inverts_fmt_chunk(label):
    assert units.fmt_chunk(units.parse_chunk(label)) == label
