"""CPU accounting, counters, and latency-breakdown tests."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.metrics import APP, KSWAPD, Counters, CpuAccount, LatencyBreakdown


class TestCpuAccount:
    def test_charges_slice_both_ways(self):
        cpu = CpuAccount()
        cpu.charge(KSWAPD, "compress", 100)
        cpu.charge(APP, "compress", 50)
        cpu.charge(KSWAPD, "file_writeback", 25)
        assert cpu.thread_ns(KSWAPD) == 125
        assert cpu.activity_ns("compress") == 150
        assert cpu.pair_ns(KSWAPD, "compress") == 100
        assert cpu.total_ns == 175

    def test_unknown_keys_read_zero(self):
        cpu = CpuAccount()
        assert cpu.thread_ns("nobody") == 0
        assert cpu.activity_ns("nothing") == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(SchedulingError):
            CpuAccount().charge(APP, "x", -1)

    def test_merged_with_sums_accounts(self):
        a, b = CpuAccount(), CpuAccount()
        a.charge(APP, "decompress", 10)
        b.charge(APP, "decompress", 5)
        b.charge(KSWAPD, "compress", 7)
        merged = a.merged_with(b)
        assert merged.activity_ns("decompress") == 15
        assert merged.thread_ns(KSWAPD) == 7
        # Sources unchanged.
        assert a.total_ns == 10

    def test_snapshots_are_copies(self):
        cpu = CpuAccount()
        cpu.charge(APP, "x", 1)
        snapshot = cpu.activities()
        snapshot["x"] = 999
        assert cpu.activity_ns("x") == 1


class TestCounters:
    def test_increment_and_read(self):
        counters = Counters()
        counters.incr("faults")
        counters.incr("faults", 4)
        assert counters.get("faults") == 5
        assert counters["faults"] == 5

    def test_missing_counter_reads_zero(self):
        assert Counters().get("nope") == 0

    def test_as_dict_is_a_copy(self):
        counters = Counters()
        counters.incr("a")
        exported = counters.as_dict()
        exported["a"] = 100
        assert counters.get("a") == 1


class TestLatencyBreakdown:
    def test_total_is_sum_of_parts(self):
        breakdown = LatencyBreakdown(
            dram_ns=1, decompress_ns=2, compress_ns=3,
            flash_read_ns=4, flash_write_ns=5, process_create_ns=6, other_ns=7,
        )
        assert breakdown.total_ns == 28

    def test_add_accumulates_componentwise(self):
        a = LatencyBreakdown(dram_ns=1, decompress_ns=2)
        b = LatencyBreakdown(dram_ns=10, flash_read_ns=5)
        a.add(b)
        assert a.dram_ns == 11
        assert a.decompress_ns == 2
        assert a.flash_read_ns == 5
