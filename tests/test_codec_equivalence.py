"""Differential tests: optimized encoders vs the reference algorithms.

The optimized LZO/LZ4 encoders restructure the search (vectorized
previous-occurrence precomputation, flat tables, skip scanning) but must
emit *byte-identical* blobs to the straightforward reference parse —
that equivalence is what lets every cached size and every measured
number survive encoder rewrites.  The references below are deliberately
naive transcriptions of the parse rules; they are the contract, kept
independent of the production implementations.
"""

from __future__ import annotations

import random

import pytest

from repro.compression import lzo as lzo_mod
from repro.compression.lz4 import Lz4Compressor
from repro.compression.lzo import LzoCompressor
from repro.rng import derive_rng
from repro.workload.payload import PayloadGenerator
from repro.workload.profiles import APP_CATALOG

# --------------------------------------------------------------- references


def reference_lzo_compress(data: bytes, max_distance: int = 32 * 1024) -> bytes:
    """The LZO-class reference parse: greedy scan, 3-gram dict table."""
    n = len(data)
    out = bytearray()
    if n == 0:
        return b""

    def flush(start: int, end: int) -> None:
        while start < end:
            run = min(end - start, 128)
            out.append(run - 1)
            out.extend(data[start : start + run])
            start += run

    table: dict[bytes, int] = {}
    pos = 0
    literal_start = 0
    while pos + 3 <= n:
        key = data[pos : pos + 3]
        candidate = table.get(key, -1)
        table[key] = pos
        if candidate >= 0 and pos - candidate <= max_distance:
            match_len = 3
            limit = min(n - pos, 130)
            src = candidate + 3
            dst = pos + 3
            while match_len < limit and data[src] == data[dst]:
                src += 1
                dst += 1
                match_len += 1
            flush(literal_start, pos)
            out.append(0x80 | (match_len - 3))
            distance = pos - candidate
            out.append(distance & 0xFF)
            out.append(distance >> 8)
            pos += match_len
            literal_start = pos
        else:
            pos += 1
    flush(literal_start, n)
    return bytes(out)


def _lz4_hash(word: int) -> int:
    return ((word * 2654435761) & 0xFFFFFFFF) >> 16


def _lz4_emit_length(out: bytearray, value: int) -> None:
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _lz4_final_literals(tail: bytes) -> bytes:
    out = bytearray()
    literal_len = len(tail)
    out.append((15 if literal_len >= 15 else literal_len) << 4)
    if literal_len >= 15:
        _lz4_emit_length(out, literal_len - 15)
    out += tail
    return bytes(out)


def reference_lz4_compress(data: bytes, acceleration: int = 1) -> bytes:
    """The LZ4 block-format reference parse with skip acceleration."""
    n = len(data)
    if n == 0:
        return b"\x00"
    if n < 13:
        return _lz4_final_literals(data)
    out = bytearray()
    table: dict[int, int] = {}
    anchor = 0
    pos = 0
    match_limit = n - 12
    search_step = acceleration << 6
    while pos <= match_limit:
        word = int.from_bytes(data[pos : pos + 4], "little")
        slot = _lz4_hash(word)
        candidate = table.get(slot, -1)
        table[slot] = pos
        if (
            candidate >= 0
            and pos - candidate <= 0xFFFF
            and data[candidate : candidate + 4] == data[pos : pos + 4]
        ):
            match_len = 4
            limit = n - 5
            src = candidate + 4
            dst = pos + 4
            while dst < limit and data[src] == data[dst]:
                src += 1
                dst += 1
                match_len += 1
            literal_len = pos - anchor
            ml_code = match_len - 4
            token_lit = 15 if literal_len >= 15 else literal_len
            token_ml = 15 if ml_code >= 15 else ml_code
            out.append((token_lit << 4) | token_ml)
            if literal_len >= 15:
                _lz4_emit_length(out, literal_len - 15)
            out += data[anchor:pos]
            offset = pos - candidate
            out.append(offset & 0xFF)
            out.append(offset >> 8)
            if ml_code >= 15:
                _lz4_emit_length(out, ml_code - 15)
            pos += match_len
            anchor = pos
            search_step = acceleration << 6
            if pos - 2 > candidate and pos - 2 <= match_limit:
                inner = int.from_bytes(data[pos - 2 : pos + 2], "little")
                table[_lz4_hash(inner)] = pos - 2
        else:
            pos += 1 + (search_step >> 6)
            search_step += acceleration
    out += _lz4_final_literals(data[anchor:])
    return bytes(out)


# ------------------------------------------------------------------- corpora


def _structured_corpus(seed: int, count: int) -> list[bytes]:
    """Random mixes of entropy, zeros, and repeated motifs."""
    rng = random.Random(seed)
    corpus = []
    for _ in range(count):
        parts = []
        for _ in range(rng.randrange(1, 7)):
            kind = rng.randrange(3)
            if kind == 0:
                parts.append(rng.randbytes(rng.randrange(1, 400)))
            elif kind == 1:
                parts.append(bytes(rng.randrange(1, 200)))
            else:
                motif = rng.randbytes(rng.randrange(1, 24))
                parts.append(motif * rng.randrange(1, 40))
        corpus.append(b"".join(parts))
    return corpus


def _payload_corpus() -> list[bytes]:
    """Pages from the actual workload generator, single and chunk-joined."""
    corpus = []
    for profile in APP_CATALOG[:3]:
        generator = PayloadGenerator(
            profile, derive_rng(2025, f"pay:{profile.name}")
        )
        pages = [generator.generate_page()[0] for _ in range(8)]
        corpus.extend(pages[:2])
        corpus.append(b"".join(pages[:4]))  # a 16 KiB cold chunk
    return corpus


EDGE_CASES = [
    b"",
    b"x",
    b"ab",
    b"abc",
    b"abc" * 400,
    b"a" * 500,
    bytes(40),
    bytes(4096),
    bytes(range(256)) * 8,
]

#: Straddle both dispatch thresholds (LZO 512, LZ4 256).
BOUNDARY_SIZES = [63, 64, 255, 256, 257, 511, 512, 513]


def full_corpus() -> list[bytes]:
    rng = random.Random(99)
    corpus = list(EDGE_CASES)
    corpus.extend(rng.randbytes(size) for size in BOUNDARY_SIZES)
    corpus.extend(_structured_corpus(seed=7, count=150))
    corpus.extend(_payload_corpus())
    return corpus


CORPUS = full_corpus()


# --------------------------------------------------------------------- tests


class TestLzoEquivalence:
    def test_byte_identical_to_reference(self):
        codec = LzoCompressor()
        for data in CORPUS:
            assert codec.compress(data) == reference_lzo_compress(data)

    @pytest.mark.parametrize("max_distance", [64, 300, 5000, 32 * 1024])
    def test_bounded_window_identical(self, max_distance):
        codec = LzoCompressor(max_distance=max_distance)
        for data in CORPUS:
            assert codec.compress(data) == reference_lzo_compress(
                data, max_distance
            )

    def test_size_fast_path_matches_blob_length(self):
        codec = LzoCompressor()
        for data in CORPUS:
            assert codec.compressed_size(data) == len(codec.compress(data))

    def test_size_fast_path_matches_with_bounded_window(self):
        codec = LzoCompressor(max_distance=128)
        for data in CORPUS:
            assert codec.compressed_size(data) == len(codec.compress(data))

    def test_scan_fallback_matches_indexed_path(self, monkeypatch):
        """The dependency-free path is equivalent too (numpy-less hosts)."""
        codec = LzoCompressor()
        indexed = [codec.compress(data) for data in CORPUS]
        monkeypatch.setattr(lzo_mod, "_np", None)
        for data, expected in zip(CORPUS, indexed):
            assert codec.compress(data) == expected
            assert codec.compressed_size(data) == len(expected)

    def test_roundtrip_on_corpus(self):
        codec = LzoCompressor()
        for data in CORPUS:
            assert codec.decompress(codec.compress(data), len(data)) == data

    @pytest.mark.parametrize("max_distance", [300, 32 * 1024])
    def test_bucketed_index_byte_identical(self, monkeypatch, max_distance):
        """The cache-conscious bucketed previous-occurrence fill must be
        byte-identical to the direct fill (and hence to the reference
        parse) on every corpus input, for blob and size-only parses."""
        codec = LzoCompressor(max_distance=max_distance)
        monkeypatch.setattr(lzo_mod, "_INDEX_MODE", "direct")
        direct = [
            (codec.compress(data), codec.compressed_size(data))
            for data in CORPUS
        ]
        monkeypatch.setattr(lzo_mod, "_INDEX_MODE", "bucketed")
        for data, (blob, size) in zip(CORPUS, direct):
            assert codec.compress(data) == blob
            assert codec.compressed_size(data) == size == len(blob)

    def test_bucketed_index_large_input_exceeds_workspace(self, monkeypatch):
        """Oversized inputs take the dedicated-workspace path; the
        bucketed fill must stay exact there too."""
        rng = random.Random(5)
        big = b"".join(
            rng.choice(CORPUS[-6:]) for _ in range(40)
        )[: 80 * 1024]
        codec = LzoCompressor()
        monkeypatch.setattr(lzo_mod, "_INDEX_MODE", "direct")
        expected = codec.compress(big)
        monkeypatch.setattr(lzo_mod, "_INDEX_MODE", "bucketed")
        assert codec.compress(big) == expected
        assert codec.compressed_size(big) == len(expected)

    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "direct"),
            ("", "direct"),
            ("direct", "direct"),
            ("BUCKETED", "bucketed"),
            ("  bucketed  ", "bucketed"),
            ("warp-drive", "direct"),
        ],
    )
    def test_index_mode_resolution(self, value, expected):
        assert lzo_mod._resolve_index_mode(value) == expected


class TestLz4Equivalence:
    @pytest.mark.parametrize("acceleration", [1, 4, 32])
    def test_byte_identical_to_reference(self, acceleration):
        codec = Lz4Compressor(acceleration=acceleration)
        for data in CORPUS:
            assert codec.compress(data) == reference_lz4_compress(
                data, acceleration
            )

    def test_scan_fallback_matches_vector_path(self):
        codec = Lz4Compressor()
        for data in CORPUS:
            assert codec._compress_scan(data) == codec.compress(data)

    @pytest.mark.parametrize("acceleration", [1, 4, 32])
    def test_size_fast_path_matches_blob_length(self, acceleration):
        codec = Lz4Compressor(acceleration=acceleration)
        for data in CORPUS:
            assert codec.compressed_size(data) == len(codec.compress(data))

    def test_size_scan_fallback_matches_blob_length(self, monkeypatch):
        """The dependency-free size path is exact too (numpy-less hosts)."""
        from repro.compression import lz4 as lz4_mod

        codec = Lz4Compressor()
        blobs = [codec.compress(data) for data in CORPUS]
        monkeypatch.setattr(lz4_mod, "_np", None)
        for data, blob in zip(CORPUS, blobs):
            assert codec.compressed_size(data) == len(blob)

    def test_roundtrip_on_corpus(self):
        codec = Lz4Compressor()
        for data in CORPUS:
            assert codec.decompress(codec.compress(data), len(data)) == data
