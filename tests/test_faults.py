"""Fault-injection tests (repro.faults + scheme recovery paths).

Three properties matter: a zero-rate plan is bit-identical to no plan
at all (injection is free when off), a seeded nonzero-rate run is
deterministic across fresh systems/processes, and every injected fault
is absorbed gracefully — retried to success or counted as a drop plus
cold refault — with a recovery ledger that balances.
"""

from __future__ import annotations

import pytest

from repro.errors import PermanentFlashError, TransientFlashError
from repro.faults import FaultPlan, _stream, install_fault_plan
from repro.metrics import FAULT_COUNTERS, recovery_summary
from repro.sim import run_light_scenario
from repro.units import US
from tests.conftest import build_tiny


def _run_chaotic(scheme_name, trace, rate, seed=7, duration_s=3.0):
    """One tiny scenario under a fresh fault plan; returns all evidence."""
    system = build_tiny(scheme_name, trace)
    plan = FaultPlan(
        seed=seed,
        read_error_rate=rate,
        write_error_rate=rate,
        bitflip_rate=rate / 10.0,
    )
    install_fault_plan(system.ctx, plan)
    result = run_light_scenario(system, duration_s=duration_s)
    return system, plan, result


def _evidence(plan, result):
    """The deterministic footprint of a chaotic run (order-free)."""
    return (
        plan.injected(),
        recovery_summary(result.counters),
        [r.latency_ns for r in result.relaunches],
    )


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="read_error_rate"):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError, match="bitflip_rate"):
            FaultPlan(bitflip_rate=-0.1)

    def test_retry_budget_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=-1)

    def test_backoff_doubles_and_caps(self):
        plan = FaultPlan(retry_backoff_ns=100 * US)
        assert plan.backoff_ns(1) == 100 * US
        assert plan.backoff_ns(2) == 200 * US
        assert plan.backoff_ns(3) == 400 * US
        # Capped at 64x so an abandoned sequence never stalls forever.
        assert plan.backoff_ns(20) == plan.backoff_ns(7) == 6400 * US


class TestDecisionStreams:
    def test_streams_are_seed_deterministic(self):
        # blake2b-derived, so independent of PYTHONHASHSEED: the same
        # (seed, name) always produces the same decision sequence.
        a = [_stream(42, "flash-read").random() for _ in range(5)]
        b = [_stream(42, "flash-read").random() for _ in range(5)]
        assert a == b
        assert a != [_stream(43, "flash-read").random() for _ in range(5)]
        assert a != [_stream(42, "flash-write").random() for _ in range(5)]

    def test_error_mix_spans_transient_and_permanent(self):
        plan = FaultPlan(seed=3, read_error_rate=1.0, permanent_fraction=0.5)
        kinds = set()
        for _ in range(64):
            try:
                plan.before_read()
            except TransientFlashError:
                kinds.add("transient")
            except PermanentFlashError:
                kinds.add("permanent")
        assert kinds == {"transient", "permanent"}
        assert plan.injected()["read_transient"] > 0
        assert plan.injected()["read_permanent"] > 0


class TestRateZeroIdentity:
    @pytest.mark.parametrize("scheme", ["Ariadne", "SWAP", "ZRAM"])
    def test_zero_rate_plan_changes_nothing(self, tiny_trace, scheme):
        baseline = run_light_scenario(
            build_tiny(scheme, tiny_trace), duration_s=3.0
        )
        system, plan, chaotic = _run_chaotic(scheme, tiny_trace, rate=0.0)
        assert plan.injected_total == 0
        assert [r.latency_ns for r in chaotic.relaunches] == [
            r.latency_ns for r in baseline.relaunches
        ]
        assert chaotic.counters == baseline.counters
        assert all(
            value == 0 for value in recovery_summary(chaotic.counters).values()
        )


class TestChaoticRuns:
    def test_seeded_rate_is_deterministic_across_fresh_systems(
        self, tiny_trace
    ):
        first = _run_chaotic("SWAP", tiny_trace, rate=0.02)
        second = _run_chaotic("SWAP", tiny_trace, rate=0.02)
        assert _evidence(first[1], first[2]) == _evidence(second[1], second[2])
        assert first[1].injected_total > 0  # the runs were actually chaotic

    def test_swap_survives_flash_errors_with_balanced_ledger(self, tiny_trace):
        system, plan, result = _run_chaotic(
            "SWAP", tiny_trace, rate=0.05, duration_s=4.0
        )
        assert plan.injected_total > 0
        recovery = recovery_summary(result.counters)
        # Every transient error ended in recovery or a counted abandon.
        transients = (
            plan.injected()["read_transient"]
            + plan.injected()["write_transient"]
        )
        assert (
            recovery["fault_transient_recovered"]
            + recovery["fault_transient_abandoned"]
            == transients
        )
        ledger = plan.ledger(system.ctx.counters)
        assert ledger["consistent"], ledger

    def test_ariadne_detects_bitflips_and_refaults_cold(self, tiny_trace):
        # Force corruption on every stored chunk: each one must be
        # caught by the digest check, dropped, and served as a counted
        # cold refault — never returned silently wrong, never a crash.
        system = build_tiny("Ariadne", tiny_trace)
        plan = FaultPlan(seed=11, bitflip_rate=1.0)
        install_fault_plan(system.ctx, plan)
        result = run_light_scenario(system, duration_s=3.0)
        recovery = recovery_summary(result.counters)
        assert plan.injected()["bitflips"] > 0
        assert recovery["fault_dropped_corrupt"] > 0
        assert recovery["fault_cold_refaults"] > 0
        assert plan.ledger(system.ctx.counters)["consistent"]

    def test_permanent_errors_drop_without_retry_storm(self, tiny_trace):
        system = build_tiny("SWAP", tiny_trace)
        plan = FaultPlan(seed=5, read_error_rate=0.03, permanent_fraction=1.0)
        install_fault_plan(system.ctx, plan)
        result = run_light_scenario(system, duration_s=3.0)
        recovery = recovery_summary(result.counters)
        assert plan.injected()["read_permanent"] > 0
        assert recovery["fault_io_retries"] == 0  # permanent: no retries
        assert recovery["fault_chunks_dropped"] > 0
        assert plan.ledger(system.ctx.counters)["consistent"]


class TestRecoverySummary:
    def test_reads_counters_and_plain_dicts(self):
        assert set(recovery_summary({})) == set(FAULT_COUNTERS)
        assert recovery_summary({"fault_io_retries": 3})[
            "fault_io_retries"
        ] == 3
