"""Latency cost-model tests: calibration anchors and monotonicity."""

from __future__ import annotations

import pytest

from repro.compression import LatencyModel
from repro.errors import ConfigError
from repro.units import KIB

MODEL = LatencyModel()
VOLUME = 8 * 1024 * 1024  # compare equal total volumes, like Figure 6


def total_comp(codec: str, chunk: int) -> int:
    return MODEL.compress_ns(codec, VOLUME, chunk)


def total_decomp(codec: str, chunk: int) -> int:
    return MODEL.decompress_ns(codec, VOLUME, chunk)


def test_lz4_small_vs_large_speedup_matches_paper():
    speedup = total_comp("lz4", 128 * KIB) / total_comp("lz4", 128)
    assert speedup == pytest.approx(59.2, rel=0.05)


def test_lzo_small_vs_large_speedup_matches_paper():
    speedup = total_comp("lzo", 128 * KIB) / total_comp("lzo", 128)
    assert speedup == pytest.approx(41.8, rel=0.05)


@pytest.mark.parametrize("codec", ["lz4", "lzo"])
def test_compression_time_grows_with_chunk_size(codec):
    chunks = [128, 512, 2 * KIB, 8 * KIB, 32 * KIB, 128 * KIB]
    totals = [total_comp(codec, c) for c in chunks]
    assert totals == sorted(totals)


@pytest.mark.parametrize("codec", ["lz4", "lzo"])
def test_decompression_grows_slower_than_compression(codec):
    comp_growth = total_comp(codec, 128 * KIB) / total_comp(codec, 128)
    decomp_growth = total_decomp(codec, 128 * KIB) / total_decomp(codec, 128)
    assert decomp_growth < comp_growth


def test_lzo_slower_than_lz4_at_page_granularity():
    assert total_comp("lzo", 4 * KIB) > total_comp("lz4", 4 * KIB)
    assert total_decomp("lzo", 4 * KIB) > total_decomp("lz4", 4 * KIB)


def test_decompress_faster_than_compress():
    for codec in ("lz4", "lzo"):
        assert total_decomp(codec, 4 * KIB) < total_comp(codec, 4 * KIB)


def test_partial_tail_chunk_charged():
    with_tail = MODEL.compress_ns("lz4", 4 * KIB + 1, 4 * KIB)
    without = MODEL.compress_ns("lz4", 4 * KIB, 4 * KIB)
    assert with_tail > without


def test_every_operation_costs_at_least_one_ns():
    assert MODEL.chunk_compress_ns("null", 1) >= 1
    assert MODEL.chunk_decompress_ns("null", 1) >= 1


def test_unknown_codec_rejected():
    with pytest.raises(ConfigError):
        MODEL.compress_ns("zstd", 4096, 4096)


def test_zero_chunk_size_rejected():
    with pytest.raises(ConfigError):
        MODEL.compress_ns("lz4", 4096, 0)


def test_four_kb_anchor_near_target():
    # LZ4 ~10 us per 4 KB page, LZO ~13 us (the published-throughput anchors).
    assert MODEL.chunk_compress_ns("lz4", 4 * KIB) == pytest.approx(10_000, rel=0.1)
    assert MODEL.chunk_compress_ns("lzo", 4 * KIB) == pytest.approx(13_000, rel=0.1)
