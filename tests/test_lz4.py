"""LZ4 block-format codec tests, including hypothesis round-trips."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import Lz4Compressor
from repro.errors import CompressionError, CorruptDataError

CODEC = Lz4Compressor()


@pytest.mark.parametrize(
    "data",
    [
        b"",
        b"a",
        b"abc",
        b"a" * 1000,
        b"abcd" * 500,
        bytes(range(256)) * 20,
        bytes(4096),
    ],
    ids=["empty", "one", "tiny", "runs", "periodic", "cycle", "zeros"],
)
def test_roundtrip_known_inputs(data):
    assert CODEC.decompress(CODEC.compress(data), len(data)) == data


def test_random_data_roundtrips_without_much_expansion():
    rng = random.Random(3)
    data = bytes(rng.randrange(256) for _ in range(10_000))
    blob = CODEC.compress(data)
    assert CODEC.decompress(blob, len(data)) == data
    # Incompressible data expands by at most the literal-run headers.
    assert len(blob) < len(data) * 1.01 + 16


def test_compressible_data_actually_shrinks():
    data = (b"the quick brown fox " * 300)[:4096]
    assert len(CODEC.compress(data)) < len(data) // 2


def test_empty_input_encodes_to_single_token():
    assert CODEC.compress(b"") == b"\x00"
    assert CODEC.decompress(b"\x00", 0) == b""


def test_overlapping_match_decodes_correctly():
    # "aaaa..." forces offset-1 overlapping copies.
    data = b"a" * 500
    assert CODEC.decompress(CODEC.compress(data), 500) == data


def test_acceleration_trades_ratio_for_speed():
    data = (b"pattern-" * 600)[:4096]
    tight = len(Lz4Compressor(acceleration=1).compress(data))
    loose = len(Lz4Compressor(acceleration=32).compress(data))
    assert tight <= loose


def test_invalid_acceleration_rejected():
    with pytest.raises(CompressionError):
        Lz4Compressor(acceleration=0)


def test_wrong_expected_length_raises():
    blob = CODEC.compress(b"hello world, hello world, hello world")
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 5)


def test_invalid_offset_raises():
    # token: 0 literals + match of 4 at offset 7 with empty output so far.
    blob = bytes([0x00, 0x07, 0x00])
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 4)


def test_truncated_literals_raise():
    blob = bytes([0x50])  # promises 5 literals, provides none
    with pytest.raises(CorruptDataError):
        CODEC.decompress(blob, 5)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=6000))
def test_roundtrip_property(data):
    assert CODEC.decompress(CODEC.compress(data), len(data)) == data


@settings(max_examples=30, deadline=None)
@given(
    st.binary(min_size=1, max_size=64),
    st.integers(min_value=1, max_value=200),
)
def test_repetitive_inputs_compress_below_original(chunk, repeats):
    data = chunk * repeats
    if len(data) > 256:
        assert len(CODEC.compress(data)) < len(data)
