"""MobileSystem lifecycle and relaunch-measurement tests."""

from __future__ import annotations

import pytest

from repro.core import RelaunchScenario
from repro.errors import ConfigError, PageStateError
from repro.sim import make_system
from tests.conftest import build_tiny


class TestLifecycle:
    def test_launch_all_makes_apps_resident_or_stored(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        system.launch_all()
        for live in system.apps:
            assert live.launched
            resident = system.scheme.organizer(live.uid).resident_count()
            stored = sum(
                1 for record in live.trace.pages
                if record.pfn in system.scheme._stored_by_pfn
            )
            assert resident + stored == len(live.trace.pages)

    def test_double_launch_rejected(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        system.launch_app("MiniTube")
        with pytest.raises(PageStateError):
            system.launch_app("MiniTube")

    def test_relaunch_before_launch_rejected(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        with pytest.raises(PageStateError):
            system.relaunch("MiniTube")

    def test_unknown_app_rejected(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        with pytest.raises(ConfigError):
            system.launch_app("Instagram")

    def test_invalid_session_rejected(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        system.launch_all()
        with pytest.raises(ConfigError):
            system.relaunch("MiniTube", session_index=99)


class TestRelaunchMeasurement:
    def test_dram_relaunch_matches_profile_latency(self, tiny_trace):
        system = build_tiny("DRAM", tiny_trace)
        system.launch_all()
        result = system.relaunch("MiniTube", 0)
        expected = tiny_trace.app("MiniTube").profile.dram_relaunch_ms
        assert result.latency_ms == pytest.approx(expected, rel=0.02)
        assert result.pages_from_dram == result.pages_accessed

    def test_breakdown_sums_to_latency(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        system.launch_all()
        system.prepare_relaunch("MiniTube", RelaunchScenario.AL)
        result = system.relaunch("MiniTube", 0)
        assert result.breakdown.total_ns == result.latency_ns

    def test_source_counts_sum_to_accesses(self, tiny_trace):
        system = build_tiny("ZRAM", tiny_trace)
        system.launch_all()
        system.prepare_relaunch("MiniTube", RelaunchScenario.AL)
        result = system.relaunch("MiniTube", 0)
        total_sources = (
            result.pages_from_dram + result.pages_from_zpool
            + result.pages_from_flash + result.pages_from_staging
        )
        assert total_sources == result.pages_accessed
        assert result.pages_accessed == len(
            tiny_trace.app("MiniTube").sessions[0].relaunch_pfns
        )

    def test_zram_slower_than_dram(self, tiny_trace):
        dram = build_tiny("DRAM", tiny_trace)
        dram.launch_all()
        baseline = dram.relaunch("MiniTube", 0).latency_ns

        zram = build_tiny("ZRAM", tiny_trace)
        zram.launch_all()
        zram.prepare_relaunch("MiniTube", RelaunchScenario.AL)
        compressed = zram.relaunch("MiniTube", 0).latency_ns
        assert compressed > baseline

    def test_sessions_advance_automatically(self, tiny_trace):
        system = build_tiny("DRAM", tiny_trace)
        system.launch_all()
        system.relaunch("MiniTube")
        live = system.app("MiniTube")
        assert live.next_session == 1
        system.relaunch("MiniTube")
        assert live.next_session == 2

    def test_clock_advances_by_relaunch_latency(self, tiny_trace):
        system = build_tiny("DRAM", tiny_trace)
        system.launch_all()
        before = system.ctx.clock.now_ns
        result = system.relaunch("MiniTube", 0, run_execution=False)
        assert system.ctx.clock.now_ns - before == result.latency_ns


class TestSchemeFactory:
    def test_all_scheme_names_construct(self, tiny_trace):
        for name in ("DRAM", "ZRAM", "SWAP", "Ariadne"):
            system = build_tiny(name, tiny_trace)
            assert system.scheme.ctx is system.ctx

    def test_unknown_scheme_rejected(self, tiny_trace):
        with pytest.raises(ConfigError):
            make_system("ZSTD", tiny_trace)

    def test_dram_platform_inflated_to_hold_workload(self, tiny_trace):
        system = build_tiny("DRAM", tiny_trace)
        total = sum(a.total_bytes() for a in tiny_trace.apps)
        assert system.ctx.platform.dram_bytes >= 2 * total
