"""Fleet tier: sampler purity, mergeable summaries, and the sharded
``fleet`` experiment's byte-identity and incrementality contracts.

The load-bearing properties, in dependency order: device sampling is a
pure function of ``(seed, index)`` (nothing else — especially not the
fleet size); metric summaries merge associatively and
order-independently with bounded memory; shard execution is the fold of
device simulations, so any shard partition merges to the same
aggregate; and the registered experiment therefore emits byte-identical
``--json`` across job counts and cache states, re-simulating only new
shards when the fleet grows.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.errors import ConfigError
from repro.experiments import experiment
from repro.experiments.common import _SHARED_SIZES
from repro.experiments.fleet import SHARD_SIZE, parse_shard_key, shard_key
from repro.experiments.runner import run_experiments
from repro.experiments.__main__ import main
from repro.fleet import (
    RESERVOIR_K,
    FleetAggregate,
    MetricSummary,
    bucket_bounds,
    bucket_of,
    fleet_device_count,
    fleet_seed,
    fleet_trace,
    run_shard,
    sample_device,
    sample_priority,
)

SEED = 404


class TestPopulationSampling:
    def test_profiles_are_pure_functions_of_seed_and_index(self):
        # Interleaving other indexes (a bigger fleet) must not perturb
        # device 7: no shared stream, no order dependence.
        alone = sample_device(SEED, 7)
        for index in range(40):
            sample_device(SEED, index)
        assert sample_device(SEED, 7) == alone

    def test_seed_and_index_both_matter(self):
        assert sample_device(SEED, 3) != sample_device(SEED, 4)
        assert sample_device(SEED, 3) != sample_device(SEED + 1, 3)

    def test_population_covers_every_axis(self):
        profiles = [sample_device(SEED, index) for index in range(300)]
        assert {p.ram_class for p in profiles} == {"tight", "mid", "roomy"}
        assert {p.flash_class for p in profiles} == {
            "slow", "mainstream", "fast",
        }
        assert {p.scheme for p in profiles} == {
            "Ariadne", "ZRAM", "SWAP", "ZSWAP",
        }
        assert {len(p.app_names) for p in profiles} == {2, 3}
        # Pressure lifecycle runs exactly on the tight-RAM class.
        assert all(p.pressure == (p.ram_class == "tight") for p in profiles)

    def test_profiles_are_hashable_and_picklable(self):
        profile = sample_device(SEED, 0)
        assert pickle.loads(pickle.dumps(profile)) == profile
        assert len({profile, sample_device(SEED, 0)}) == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            sample_device(SEED, -1)

    def test_env_knobs_parse_and_validate(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SEED", "77")
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "123")
        assert fleet_seed() == 77
        assert fleet_device_count(quick=True) == 123
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "0")
        with pytest.raises(ConfigError):
            fleet_device_count(quick=True)
        monkeypatch.setenv("REPRO_FLEET_SEED", "not-a-seed")
        with pytest.raises(ConfigError):
            fleet_seed()

    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_SEED", raising=False)
        monkeypatch.delenv("REPRO_FLEET_DEVICES", raising=False)
        assert fleet_seed() == SEED
        assert fleet_device_count(quick=True) < fleet_device_count(quick=False)


class TestHistogramBuckets:
    def test_buckets_cover_and_partition_the_integers(self):
        # Every sample lands in exactly the bucket whose bounds hold it,
        # and bucket indexes never decrease as values grow.
        previous = -1
        for value in [*range(0, 2048), 10**6, 10**9, 10**12, 2**62]:
            bucket = bucket_of(value)
            lo, hi = bucket_bounds(bucket)
            assert lo <= value < hi
            assert bucket >= previous if value < 2048 else bucket > 0
            if value < 2048:
                previous = bucket
        with pytest.raises(ValueError):
            bucket_of(-1)

    def test_relative_bucket_width_is_bounded(self):
        for value in (100, 10**6, 10**9, 2**40):
            lo, hi = bucket_bounds(bucket_of(value))
            assert (hi - lo) / lo <= 0.125  # 8 sub-buckets per octave


def _summary_from(values, metric="m", device0=0):
    summary = MetricSummary()
    for draw, value in enumerate(values):
        summary.add(value, sample_priority(SEED, metric, device0, draw))
    return summary


class TestMetricSummary:
    def test_merge_is_associative_and_order_independent(self):
        rng = random.Random(12)
        parts = [
            _summary_from([rng.randrange(10**9) for _ in range(30)],
                          device0=index)
            for index in range(4)
        ]
        a, b, c, d = parts
        left = a.merge(b).merge(c).merge(d)
        right = a.merge(b.merge(c.merge(d)))
        shuffled = d.merge(b).merge(a.merge(c))
        assert left.normalized() == right.normalized() == shuffled.normalized()

    def test_reservoir_is_bounded_and_deterministic(self):
        big = _summary_from(range(10 * RESERVOIR_K))
        assert len(big.reservoir) == RESERVOIR_K
        assert big.count == 10 * RESERVOIR_K
        # The kept set is the K smallest priorities of the union —
        # independent of how the samples were partitioned into shards.
        split = _summary_from(range(0, 5 * RESERVOIR_K))
        rest = MetricSummary()
        for draw in range(5 * RESERVOIR_K, 10 * RESERVOIR_K):
            rest.add(draw, sample_priority(SEED, "m", 0, draw))
        assert split.merge(rest).normalized() == big.normalized()

    def test_quantiles_clamped_and_ordered(self):
        summary = _summary_from([17, 3, 900, 900, 64, 5])
        assert summary.quantile(0.0) >= summary.minimum
        assert summary.quantile(1.0) == summary.maximum
        quantiles = [summary.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)
        assert MetricSummary().quantile(0.5) == 0.0

    def test_mean_and_totals_exact(self):
        summary = _summary_from([1, 2, 3, 10])
        assert (summary.count, summary.total) == (4, 16)
        assert summary.mean == 4.0
        assert (summary.minimum, summary.maximum) == (1, 10)


@pytest.fixture(scope="module")
def shard_whole():
    """Devices [0, 10) simulated once, shared across assertions."""
    return run_shard(SEED, 0, 10)


class TestShardExecution:
    def test_any_partition_merges_to_the_same_aggregate(self, shard_whole):
        first = run_shard(SEED, 0, 4)
        second = run_shard(SEED, 4, 10)
        assert second.merge(first).normalized() == shard_whole
        assert first.merge(second).normalized() == shard_whole

    def test_shard_is_reproducible_and_picklable(self, shard_whole):
        assert pickle.loads(pickle.dumps(shard_whole)) == shard_whole
        assert run_shard(SEED, 0, 10) == shard_whole

    def test_aggregate_size_is_independent_of_device_count(self, shard_whole):
        # Streaming contract: 3x the devices must not grow the payload
        # materially (reservoirs cap, histograms are fixed-bucket; only
        # sparse-bucket occupancy can add a few entries).
        bigger = run_shard(SEED, 0, 30)
        assert bigger.devices == 3 * shard_whole.devices
        small = len(pickle.dumps(shard_whole))
        large = len(pickle.dumps(bigger))
        assert large < 2 * small

    def test_pressure_ledger_balances_across_tight_devices(self):
        # Scan forward until the population includes pressure devices
        # with kill/drop activity; their summed ledgers must balance.
        aggregate = run_shard(SEED, 0, 20)
        assert aggregate.pressure_devices > 0
        assert aggregate.ledger_consistent
        assert aggregate.ledger  # summed decision counters present
        assert all(isinstance(v, int) for v in aggregate.ledger.values())

    def test_traces_are_shared_across_devices_with_one_mix(self):
        profile = sample_device(SEED, 0)
        assert fleet_trace(SEED, profile.trace_signature) is fleet_trace(
            SEED, profile.trace_signature
        )

    def test_device_metrics_are_integers(self, shard_whole):
        for metrics in shard_whole.by_scheme.values():
            for summary in metrics.values():
                assert isinstance(summary.total, int)
                assert all(
                    isinstance(value, int) for _, value in summary.reservoir
                )


class TestFleetExperiment:
    def test_cell_keys_embed_seed_and_align_to_shard_boundaries(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "120")
        spec = experiment("fleet")
        keys = spec.cell_keys(quick=True)
        assert keys[0] == shard_key(SEED, 0, SHARD_SIZE)
        assert keys[-1] == shard_key(SEED, 100, 120)
        assert parse_shard_key(keys[1]) == (SEED, 50, 100)
        # Growing the fleet preserves every full shard's key — the
        # persistent-cache incrementality contract.
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "240")
        grown = spec.cell_keys(quick=True)
        assert grown[:2] == keys[:2]
        monkeypatch.setenv("REPRO_FLEET_SEED", "7")
        assert all("s7-" in key for key in spec.cell_keys(quick=True))

    def test_malformed_cell_keys_rejected(self):
        spec = experiment("fleet")
        for bad in ("not-a-cell", "s404-d000010-000005", "s404-d000003-000003"):
            with pytest.raises(KeyError):
                spec.run_cell(bad, quick=True)

    def test_cells_equal_serial_through_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "8")
        spec = experiment("fleet")
        results = {}
        for key in reversed(spec.cell_keys(quick=True)):
            payload = spec.run_cell(key, quick=True)
            results[key] = pickle.loads(pickle.dumps(payload))
        assert spec.merge(results, quick=True) == spec.run(quick=True)

    def test_result_reports_percentiles_per_scheme(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "12")
        result = experiment("fleet").run(quick=True)
        assert result.devices == 12
        for metrics in result.stats.values():
            stats = metrics["relaunch_ns"]
            assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
        rendered = result.render()
        assert "p99" in rendered and "12 devices" in rendered
        assert json.loads(json.dumps(result.to_json())) == result.to_json()


@pytest.fixture()
def persistent_caches(monkeypatch, tmp_path):
    from repro.experiments import common

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()
    yield tmp_path / "cache"
    common.artifact_cache.cache_clear()
    common.result_cache.cache_clear()


class TestFleetDeterminismAndIncrementality:
    def test_json_byte_identical_across_jobs_and_cache_states(
        self, capsys, monkeypatch, persistent_caches
    ):
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "60")
        runs = {}
        for label, jobs in (("cold-1", "1"), ("warm-4", "4"), ("warm-2", "2")):
            assert main(["fleet", "--quick", "--json", "--jobs", jobs]) == 0
            runs[label] = capsys.readouterr().out
        assert runs["cold-1"] == runs["warm-4"] == runs["warm-2"]
        document = json.loads(runs["cold-1"])
        assert document["experiments"][0]["result"]["devices"] == 60

    def test_growing_the_fleet_only_simulates_new_shards(
        self, monkeypatch, persistent_caches
    ):
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "100")
        (first,) = run_experiments(["fleet"], jobs=2, quick=True)
        assert first.ok and first.cells == 2 and first.cached_tasks == 0
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "150")
        (grown,) = run_experiments(["fleet"], jobs=2, quick=True)
        assert grown.ok and grown.cells == 3
        # Both prior shards served from the persistent result cache.
        assert grown.cached_tasks == 2
        assert grown.result.devices == 150

    def test_serial_growth_never_serves_a_stale_whole_result(
        self, monkeypatch, persistent_caches
    ):
        # Regression: at --jobs 1 a sharded experiment runs as one
        # task.  Were its merged result memoized under cell=None, a
        # grown fleet would be served the *old* fleet's percentiles —
        # the key doesn't know the size.  Per-cell caching must kick
        # in instead, reusing prior shards and simulating the rest.
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "100")
        (first,) = run_experiments(["fleet"], jobs=1, quick=True)
        assert first.ok and first.result.devices == 100
        monkeypatch.setenv("REPRO_FLEET_DEVICES", "150")
        (grown,) = run_experiments(["fleet"], jobs=1, quick=True)
        assert grown.ok and grown.result.devices == 150
        assert grown.cached_tasks == 2

    def test_shared_size_cache_is_wired_into_devices(self, shard_whole):
        # simulate_device points every system at the experiment layer's
        # shared compressed-size memo, so fleet devices and the paper
        # suite exchange measurements.
        assert shard_whole.devices == 10
        assert len(_SHARED_SIZES) > 0
