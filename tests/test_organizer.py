"""Data-organizer tests: baseline two-list and Ariadne tri-list."""

from __future__ import annotations

import pytest

from repro.errors import PageStateError
from repro.mem import (
    ActiveInactiveOrganizer,
    Hotness,
    HotWarmColdOrganizer,
    Page,
)


def pages(n: int, uid: int = 1, start: int = 0) -> list[Page]:
    return [Page(pfn=start + i, uid=uid) for i in range(n)]


class TestActiveInactive:
    def test_new_pages_start_inactive(self):
        org = ActiveInactiveOrganizer(uid=1)
        page = pages(1)[0]
        org.add_page(page)
        assert page in org.inactive
        assert org.hotness_estimate(page) is Hotness.COLD

    def test_access_promotes_to_active(self):
        org = ActiveInactiveOrganizer(uid=1)
        page = pages(1)[0]
        org.add_page(page)
        org.on_access(page, now_ns=10)
        assert page in org.active
        assert org.hotness_estimate(page) is Hotness.WARM

    def test_victims_come_from_inactive_in_lru_order(self):
        org = ActiveInactiveOrganizer(uid=1)
        batch = pages(3)
        for page in batch:
            org.add_page(page)
        assert org.pop_victim() is batch[0]
        assert org.pop_victim() is batch[1]

    def test_active_refills_inactive_when_dry(self):
        org = ActiveInactiveOrganizer(uid=1, refill_batch=2)
        batch = pages(2)
        for page in batch:
            org.add_page(page)
            org.on_access(page, now_ns=1)  # all promoted to active
        victim = org.pop_victim()
        assert victim is batch[0]  # demoted active-LRU tail

    def test_access_to_unknown_page_raises(self):
        org = ActiveInactiveOrganizer(uid=1)
        with pytest.raises(PageStateError):
            org.on_access(pages(1)[0], now_ns=0)

    def test_pop_from_empty_raises(self):
        org = ActiveInactiveOrganizer(uid=1)
        with pytest.raises(PageStateError):
            org.pop_victim()

    def test_resident_accounting(self):
        org = ActiveInactiveOrganizer(uid=1)
        for page in pages(4):
            org.add_page(page)
        assert org.resident_count() == 4
        assert org.resident_bytes() == 4 * 4096


class TestHotWarmCold:
    def build(self, seed_limit: int = 3) -> HotWarmColdOrganizer:
        return HotWarmColdOrganizer(uid=1, hot_seed_limit=seed_limit)

    def test_launch_pages_seed_hot_list(self):
        org = self.build(seed_limit=2)
        batch = pages(4)
        for page in batch:
            org.add_page(page)
        assert [p in org.hot for p in batch] == [True, True, False, False]
        assert batch[2] in org.cold

    def test_post_launch_pages_go_cold(self):
        org = self.build(seed_limit=1)
        org.add_page(pages(1)[0])
        org.end_launch_window()
        late = Page(pfn=99, uid=1)
        org.add_page(late)
        assert late in org.cold

    def test_cold_access_promotes_to_warm(self):
        org = self.build(seed_limit=0)
        page = pages(1)[0]
        org.add_page(page)
        org.on_access(page, now_ns=5)
        assert page in org.warm
        assert org.hotness_estimate(page) is Hotness.WARM

    def test_eviction_order_cold_warm_hot(self):
        org = self.build(seed_limit=1)
        hot, cold, warm = pages(3)
        org.add_page(hot)          # seeded hot
        org.add_page(cold)         # cold
        org.add_page(warm)
        org.on_access(warm, 1)     # promoted to warm
        assert org.pop_victim() is cold
        assert org.pop_victim() is warm
        assert org.pop_victim() is hot

    def test_relaunch_update_demotes_stale_hot(self):
        org = self.build(seed_limit=2)
        stale, fresh = pages(2)
        org.add_page(stale)
        org.add_page(fresh)
        org.begin_relaunch()
        org.on_access(fresh, now_ns=1)
        org.end_relaunch()
        assert fresh in org.hot
        assert stale in org.warm

    def test_relaunch_promotes_touched_cold_to_hot(self):
        org = self.build(seed_limit=0)
        page = pages(1)[0]
        org.add_page(page)  # cold
        org.begin_relaunch()
        org.on_access(page, now_ns=1)
        org.end_relaunch()
        assert page in org.hot

    def test_faulted_but_untouched_relaunch_page_demotes_to_warm(self):
        org = self.build(seed_limit=0)
        org.begin_relaunch()
        sibling = Page(pfn=50, uid=1)
        org.add_page(sibling)  # materialized by a group chunk, never read
        org.end_relaunch()
        assert sibling in org.warm

    def test_end_relaunch_without_begin_raises(self):
        with pytest.raises(PageStateError):
            self.build().end_relaunch()

    def test_has_non_hot_victims(self):
        org = self.build(seed_limit=1)
        hot = pages(1)[0]
        org.add_page(hot)
        assert org.has_victims()
        assert not org.has_non_hot_victims()
        org.end_launch_window()
        cold = Page(pfn=10, uid=1)
        org.add_page(cold)
        assert org.has_non_hot_victims()

    def test_negative_seed_limit_rejected(self):
        with pytest.raises(PageStateError):
            HotWarmColdOrganizer(uid=1, hot_seed_limit=-1)

    def test_list_operations_counted(self):
        org = self.build(seed_limit=0)
        page = pages(1)[0]
        org.add_page(page)
        before = org.list_operations
        org.on_access(page, 1)
        assert org.list_operations > before
