"""ZSWAP writeback tier: unit, behavioral, and planted-drift tests.

Covers the three mechanics the scheme models — batched LRU writeback,
slot-locality readahead, multi-device round-robin striping — plus the
config surface, the fault-degradation behavior of a deferred writeback,
and the auditor's zswap cross-checks (each exercised by deliberately
corrupting a live system and asserting the exact violation fires).
"""

from __future__ import annotations

import pytest

from repro.core import ZswapConfig
from repro.errors import ConfigError, FlashFullError, InvariantViolationError
from repro.faults import FaultPlan, install_fault_plan
from repro.flash import FlashDevice, FlashSwapArea
from repro.mem.page import PageLocation
from repro.metrics import ZSWAP_COUNTERS, zswap_summary
from repro.sim import run_light_scenario
from repro.units import KIB, MIB

from tests.conftest import build_tiny


def _build(trace, **kwargs):
    config = ZswapConfig(**kwargs) if kwargs else None
    return build_tiny("ZSWAP", trace, zswap_config=config, tight=True)


def _drive(system):
    system.launch_all()
    names = [app.name for app in system.apps]
    for name in names + names + names[:2]:
        system.relaunch(name)
    return system


class TestConfig:
    def test_defaults_are_the_kernel_knobs(self):
        config = ZswapConfig()
        assert config.swap_cluster_max == 32  # SWAP_CLUSTER_MAX
        assert config.page_cluster == 3      # /proc/sys/vm/page-cluster
        assert config.readahead_window == 8
        assert config.label == "ZSWAP"

    def test_non_default_label_spells_the_knobs(self):
        config = ZswapConfig(swap_cluster_max=8, page_cluster=0, n_devices=2)
        assert config.label == "ZSWAP-c8-p0-d2"

    @pytest.mark.parametrize("kwargs", [
        {"swap_cluster_max": 0},
        {"swap_cluster_max": 513},
        {"page_cluster": -1},
        {"page_cluster": 7},
        {"n_devices": 0},
        {"n_devices": 9},
        {"pool_threshold": 0.0},
        {"pool_threshold": 1.5},
        {"staging_pages": 0},
    ])
    def test_validation_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigError):
            ZswapConfig(**kwargs)


class TestSwapAreaBatches:
    def _area(self, n_devices=1):
        return FlashSwapArea(
            FlashDevice(), capacity_bytes=MIB, n_devices=n_devices
        )

    def test_store_batch_allocates_contiguous_slots(self):
        area = self._area()
        slots, latency = area.store_batch([4 * KIB, 2 * KIB, 4 * KIB])
        ids = [slot.slot_id for slot in slots]
        assert ids == list(range(ids[0], ids[0] + 3))
        assert latency > 0
        assert all(slot.sequential for slot in slots)
        assert area.used_bytes == 10 * KIB

    def test_store_batch_is_one_command_train(self):
        area = self._area()
        area.store_batch([4 * KIB] * 8)  # 32 KiB < one 256 KiB command
        assert area.device.write_commands == 1

    def test_store_batch_rejects_empty_overfull_and_bad_device(self):
        area = self._area()
        with pytest.raises(FlashFullError):
            area.store_batch([])
        with pytest.raises(FlashFullError):
            area.store_batch([2 * MIB])
        with pytest.raises(FlashFullError):
            area.store_batch([KIB], device_index=1)

    def test_load_run_reads_one_device_sequentially(self):
        area = self._area(n_devices=2)
        slots, _ = area.store_batch([4 * KIB] * 4, device_index=1)
        reads_before = area.devices[1].read_commands
        loaded, latency = area.load_run([slot.slot_id for slot in slots])
        assert loaded == slots
        assert latency > 0
        assert area.devices[1].read_commands == reads_before + 1
        assert area.devices[0].read_commands == 0
        # Slots stay allocated: freeing is the caller's decision.
        assert area.used_bytes == 16 * KIB

    def test_load_run_rejects_cross_device_runs(self):
        area = self._area(n_devices=2)
        (a,), _ = area.store_batch([KIB], device_index=0)
        (b,), _ = area.store_batch([KIB], device_index=1)
        with pytest.raises(FlashFullError):
            area.load_run([a.slot_id, b.slot_id])

    def test_per_device_tallies(self):
        area = self._area(n_devices=2)
        area.store_batch([4 * KIB], device_index=0)
        area.store_batch([4 * KIB], device_index=1)
        area.store_batch([4 * KIB], device_index=1)
        commands = area.write_commands_by_device()
        assert commands == (1, 2)
        written = area.host_bytes_written_by_device()
        assert written[1] == 2 * written[0] > 0


class TestWritebackBatching:
    def test_shrinker_engages_on_the_tight_platform(self, tiny_trace):
        system = _drive(_build(tiny_trace))
        summary = zswap_summary(system.ctx.counters)
        assert summary["zswap_writeback_batches"] > 0
        assert summary["zswap_pages_written_back"] > 0
        assert 1 <= summary["zswap_batch_pages_max"] <= 32

    def test_smaller_cluster_means_more_batches(self, tiny_trace):
        big = _drive(_build(tiny_trace, swap_cluster_max=32))
        small = _drive(_build(tiny_trace, swap_cluster_max=4))
        big_s = zswap_summary(big.ctx.counters)
        small_s = zswap_summary(small.ctx.counters)
        assert small_s["zswap_writeback_batches"] > (
            big_s["zswap_writeback_batches"]
        )
        assert small_s["zswap_batch_pages_max"] <= 4

    def test_pool_stays_at_threshold_after_shrink(self, tiny_trace):
        system = _drive(_build(tiny_trace))
        zpool = system.ctx.zpool
        threshold = (
            system.scheme.config.pool_threshold * zpool.capacity_bytes
        )
        assert zpool.used_bytes <= threshold

    def test_runs_are_deterministic(self, tiny_trace):
        first = _drive(_build(tiny_trace)).ctx.counters.as_dict()
        second = _drive(_build(tiny_trace)).ctx.counters.as_dict()
        assert first == second


class TestReadahead:
    def test_hits_require_a_readahead_window(self, tiny_trace):
        on = zswap_summary(_drive(_build(tiny_trace)).ctx.counters)
        off = zswap_summary(
            _drive(_build(tiny_trace, page_cluster=0)).ctx.counters
        )
        assert on["zswap_readahead_reads"] > 0
        assert on["zswap_readahead_hits"] > 0
        for counter in ZSWAP_COUNTERS:
            if counter.startswith("zswap_readahead"):
                assert off[counter] == 0, counter

    def test_wider_window_reads_no_fewer_neighbors(self, tiny_trace):
        narrow = zswap_summary(
            _drive(_build(tiny_trace, page_cluster=1)).ctx.counters
        )
        wide = zswap_summary(
            _drive(_build(tiny_trace, page_cluster=3)).ctx.counters
        )
        assert narrow["zswap_readahead_reads"] > 0
        assert (
            wide["zswap_readahead_reads"]
            >= narrow["zswap_readahead_reads"]
        )

    def test_accounting_balances(self, tiny_trace):
        # Every speculative decompression ends exactly one way: claimed
        # by an access (hit), aged out and recompressed (wasted), or
        # still sitting in the staging buffer.
        system = _drive(_build(tiny_trace))
        summary = zswap_summary(system.ctx.counters)
        staged = len(system.scheme.staging._pages)
        assert summary["zswap_readahead_reads"] == (
            summary["zswap_readahead_hits"]
            + summary["zswap_readahead_wasted"]
            + staged
        )


class TestDeviceStriping:
    def test_batches_round_robin_across_devices(self, tiny_trace):
        system = _drive(_build(tiny_trace, n_devices=2))
        commands = system.ctx.flash_swap.write_commands_by_device()
        assert len(commands) == 2
        assert all(count > 0 for count in commands)
        # Equal-priority striping: neither device dominates.
        assert max(commands) <= 2 * min(commands)

    def test_single_device_default_uses_one(self, tiny_trace):
        system = _drive(_build(tiny_trace))
        assert system.ctx.flash_swap.write_commands_by_device() == (
            system.ctx.flash_device.write_commands,
        )


class TestFaultDegradation:
    def test_unwritable_flash_defers_writeback_without_losing_pages(
        self, tiny_trace
    ):
        system = _build(tiny_trace)
        install_fault_plan(
            system.ctx,
            FaultPlan(seed=5, write_error_rate=1.0, permanent_fraction=1.0),
        )
        result = run_light_scenario(system, duration_s=2.0)
        counters = system.ctx.counters
        assert result.relaunches, "scenario stalled when flash went bad"
        assert counters.get("fault_writeback_deferred") > 0
        # Nothing ever reached flash: the shrinker made no progress and
        # overflow fell back to counted drops, not to corrupt state.
        assert counters.get("zswap_writeback_batches") == 0
        assert not system.ctx.flash_swap._slots
        assert system.ctx.flash_device.host_bytes_written == 0


class TestPlantedDrift:
    """Corrupt a live system; the auditor must name the violation."""

    def _audited(self, tiny_trace, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        system = _drive(_build(tiny_trace))
        scheme = system.scheme
        assert scheme._batches, "drive left no live writeback batch"
        scheme._auditor.audit(scheme)  # sanity: clean before the plant
        return scheme

    def test_clean_run_audits_clean(self, tiny_trace, monkeypatch):
        self._audited(tiny_trace, monkeypatch)

    def test_ledger_imbalance_is_caught(self, tiny_trace, monkeypatch):
        scheme = self._audited(tiny_trace, monkeypatch)
        chunk = next(
            c for c in scheme._chunks.values() if c.in_zpool
        )
        chunk.location = PageLocation.DRAM  # visible to neither census
        with pytest.raises(
            InvariantViolationError, match="ledger unbalanced"
        ):
            scheme._auditor.audit(scheme)

    def test_lost_contiguity_is_caught(self, tiny_trace, monkeypatch):
        scheme = self._audited(tiny_trace, monkeypatch)
        live = None
        for batch_id, (_first, members) in scheme._batches.items():
            live = [
                c for c in members
                if scheme._batch_of.get(c.chunk_id) == batch_id
            ]
            if len(live) >= 2:
                break
        assert live and len(live) >= 2, "no batch with two live members"
        # Swap two members' slots: the slot<->chunk bijection the swap
        # area audit checks still holds, but the layout lie remains.
        first, second = live[0], live[1]
        first.flash_slot, second.flash_slot = (
            second.flash_slot, first.flash_slot
        )
        with pytest.raises(
            InvariantViolationError, match="lost slot contiguity"
        ):
            scheme._auditor.audit(scheme)

    def test_bogus_membership_is_caught(self, tiny_trace, monkeypatch):
        scheme = self._audited(tiny_trace, monkeypatch)
        chunk = next(
            c for c in scheme._chunks.values() if c.in_zpool
        )
        scheme._batch_of[chunk.chunk_id] = 999_999
        with pytest.raises(
            InvariantViolationError, match="does not record it"
        ):
            scheme._auditor.audit(scheme)
