"""LRU-list tests, including a hypothesis model check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageStateError
from repro.mem import LruList, Page


def make_page(pfn: int) -> Page:
    return Page(pfn=pfn, uid=1)


def test_pop_lru_returns_oldest():
    lru = LruList()
    pages = [make_page(i) for i in range(3)]
    for page in pages:
        lru.add(page)
    assert lru.pop_lru() is pages[0]
    assert lru.pop_lru() is pages[1]


def test_touch_moves_to_mru():
    lru = LruList()
    pages = [make_page(i) for i in range(3)]
    for page in pages:
        lru.add(page)
    lru.touch(pages[0])
    assert lru.pop_lru() is pages[1]
    assert lru.peek_mru() is pages[0]


def test_add_lru_inserts_at_evict_end():
    lru = LruList()
    lru.add(make_page(1))
    oldest = make_page(2)
    lru.add_lru(oldest)
    assert lru.pop_lru() is oldest


def test_duplicate_add_rejected():
    lru = LruList()
    page = make_page(1)
    lru.add(page)
    with pytest.raises(PageStateError):
        lru.add(page)


def test_remove_missing_rejected_discard_tolerates():
    lru = LruList()
    page = make_page(1)
    with pytest.raises(PageStateError):
        lru.remove(page)
    assert lru.discard(page) is False
    lru.add(page)
    assert lru.discard(page) is True


def test_empty_list_operations_raise():
    lru = LruList()
    with pytest.raises(PageStateError):
        lru.pop_lru()
    with pytest.raises(PageStateError):
        lru.peek_lru()
    with pytest.raises(PageStateError):
        lru.peek_mru()


def test_total_bytes_counts_pages():
    lru = LruList()
    lru.add(make_page(1))
    lru.add(make_page(2))
    assert lru.total_bytes == 2 * 4096


def test_iteration_is_lru_to_mru():
    lru = LruList()
    pages = [make_page(i) for i in range(5)]
    for page in pages:
        lru.add(page)
    lru.touch(pages[2])
    assert [p.pfn for p in lru] == [0, 1, 3, 4, 2]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "touch", "pop"]), st.integers(0, 9)),
        max_size=60,
    )
)
def test_matches_reference_model(ops):
    """The LruList must agree with a simple list-based reference model."""
    lru = LruList()
    model: list[int] = []
    pages = {i: make_page(i) for i in range(10)}
    for op, pfn in ops:
        if op == "add" and pfn not in model:
            lru.add(pages[pfn])
            model.append(pfn)
        elif op == "touch" and pfn in model:
            lru.touch(pages[pfn])
            model.remove(pfn)
            model.append(pfn)
        elif op == "pop" and model:
            assert lru.pop_lru().pfn == model.pop(0)
    assert [p.pfn for p in lru] == model


class TestBulkOps:
    """touch_run / add_run equal their per-page loops."""

    def test_touch_run_matches_touch_loop(self):
        bulk, loop = LruList(), LruList()
        for i in range(6):
            bulk.add(make_page(i))
            loop.add(make_page(i))
        sequence = [2, 4, 2, 0, 5, 2]
        bulk.touch_run(sequence)
        for pfn in sequence:
            loop.touch(make_page(pfn))
        assert [p.pfn for p in bulk] == [p.pfn for p in loop]

    def test_touch_run_returns_count(self):
        lru = LruList()
        for i in range(3):
            lru.add(make_page(i))
        assert lru.touch_run([0, 1, 0]) == 3

    def test_touch_run_absent_pfn_raises(self):
        lru = LruList()
        lru.add(make_page(1))
        with pytest.raises(PageStateError):
            lru.touch_run([1, 99])

    def test_add_run_matches_add_loop(self):
        bulk, loop = LruList(), LruList()
        pages = [make_page(i) for i in (3, 1, 4, 1 + 10, 5)]
        bulk.add_run(pages)
        for page in pages:
            loop.add(page)
        assert [p.pfn for p in bulk] == [p.pfn for p in loop]

    def test_add_run_duplicate_raises(self):
        lru = LruList()
        lru.add(make_page(7))
        with pytest.raises(PageStateError):
            lru.add_run([make_page(8), make_page(7)])
