"""Differential and unit coverage of the columnar page-metadata core.

The columnar organizers (``repro.mem.columnar``) promise *bit-identical*
numbers to the object core: same final list orders, same
``list_operations``, same CPU ledger, counters, and epochs.  This file
pins that promise three ways:

- organizer-level randomized differentials (every list operation, with
  within-run duplicate pfns and relaunch bracketing — including the
  journal-bounded ``end_relaunch``'s warm-LRU ordering equivalence);
- system-level randomized differentials (launch / relaunch /
  force-compress / kill / terminate interleavings with fault and
  pressure plans installed), asserting full system fingerprints;
- auditor coverage: ``REPRO_AUDIT=1`` green under the columnar core,
  and planted-drift tests proving the new columnar cross-checks catch
  corrupted counts, list ids, and order/pos linkage.

Plus the core-selection contract (``REPRO_CORE``, numpy-missing
fallback warning) and :class:`repro.mem.lru.IndexLruList` API edges.
"""

from __future__ import annotations

import random

import pytest

from tiny_workload import build_tiny
from repro.errors import ConfigError, InvariantViolationError, PageStateError
from repro.faults import FaultPlan, install_fault_plan
from repro.lmk import PressureConfig, PressurePlan, install_pressure
from repro.mem import columnar
from repro.mem.columnar import (
    ColumnarActiveInactiveOrganizer,
    ColumnarHotWarmColdOrganizer,
    ColumnarOrganizerMixin,
    make_tri_list_organizer,
    make_two_list_organizer,
    resolve_core,
)
from repro.mem.lru import IndexLruList
from repro.mem.organizer import ActiveInactiveOrganizer, HotWarmColdOrganizer
from repro.mem.page import Page


def make_pages(n: int, uid: int = 1) -> list[Page]:
    return [Page(pfn=1000 + i, uid=uid) for i in range(n)]


# --------------------------------------------------------------------------
# Core selection (REPRO_CORE + numpy fallback)
# --------------------------------------------------------------------------


class TestCoreSelection:
    def test_default_resolves_columnar_when_numpy_present(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        assert resolve_core() == "columnar"
        assert isinstance(
            make_tri_list_organizer(1, 4), ColumnarHotWarmColdOrganizer
        )
        assert isinstance(
            make_two_list_organizer(1), ColumnarActiveInactiveOrganizer
        )

    def test_object_forces_reference_classes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "object")
        tri = make_tri_list_organizer(1, 4)
        two = make_two_list_organizer(1)
        assert type(tri) is HotWarmColdOrganizer
        assert type(two) is ActiveInactiveOrganizer
        assert not isinstance(tri, ColumnarOrganizerMixin)

    def test_invalid_value_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "vectorized")
        with pytest.raises(ConfigError, match="REPRO_CORE"):
            resolve_core()

    def test_missing_numpy_falls_back_with_one_warning(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(columnar, "_np", None)
        monkeypatch.setattr(columnar, "_warned_no_numpy", False)
        for mode in ("auto", "columnar"):
            monkeypatch.setenv("REPRO_CORE", mode)
            assert resolve_core() == "object"
            assert type(make_tri_list_organizer(1, 2)) is HotWarmColdOrganizer
        err = capsys.readouterr().err
        assert err.count("numpy unavailable") == 1  # warned once, not twice

    def test_columnar_is_subclass_for_isinstance_dispatch(self):
        # ariadne.py gates HotnessOrg paths on isinstance(...,
        # HotWarmColdOrganizer); the columnar organizer must satisfy it.
        assert issubclass(ColumnarHotWarmColdOrganizer, HotWarmColdOrganizer)
        assert issubclass(
            ColumnarActiveInactiveOrganizer, ActiveInactiveOrganizer
        )


# --------------------------------------------------------------------------
# IndexLruList API edges
# --------------------------------------------------------------------------


def tri_views():
    org = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=0)
    return org, org.cold


class TestIndexLruList:
    def test_matches_lrulist_semantics_on_basics(self):
        org, lru = tri_views()
        pages = make_pages(5)
        for page in pages:
            lru.add(page)
        assert len(lru) == 5
        assert [p.pfn for p in lru] == [p.pfn for p in pages]
        assert lru.peek_lru() is pages[0]
        assert lru.peek_mru() is pages[-1]
        lru.touch(pages[0])
        assert [p.pfn for p in lru] == [p.pfn for p in pages[1:] + pages[:1]]
        assert lru.pop_lru() is pages[1]
        assert lru.discard(pages[2]) and not lru.discard(pages[2])
        assert pages[3] in lru and pages[2] not in lru
        assert lru.total_bytes == len(lru) * pages[0].size

    def test_add_duplicate_raises(self):
        org, lru = tri_views()
        page = make_pages(1)[0]
        lru.add(page)
        with pytest.raises(PageStateError, match="already on list"):
            lru.add(page)
        with pytest.raises(PageStateError, match="already on list"):
            lru.add_lru(page)

    def test_add_while_on_sibling_list_raises(self):
        org, _ = tri_views()
        page = make_pages(1)[0]
        org.warm.add(page)
        with pytest.raises(PageStateError, match="sibling"):
            org.cold.add(page)

    def test_add_run_duplicate_in_batch_raises(self):
        org, lru = tri_views()
        page = make_pages(1)[0]
        with pytest.raises(PageStateError, match="duplicate"):
            lru.add_run([page, page])

    def test_empty_pops_and_peeks_raise(self):
        org, lru = tri_views()
        for op in (lru.pop_lru, lru.peek_lru, lru.peek_mru):
            with pytest.raises(PageStateError, match="empty"):
                op()

    def test_touch_absent_raises(self):
        org, lru = tri_views()
        with pytest.raises(PageStateError, match="not on list"):
            lru.touch(make_pages(1)[0])

    def test_add_lru_inserts_at_eviction_end(self):
        org, lru = tri_views()
        first, second = make_pages(2)
        lru.add(first)
        lru.add_lru(second)
        assert lru.pop_lru() is second

    def test_survives_compaction_churn(self):
        # Touch-churn far past the initial array capacity: liveness
        # filtering and compaction must keep order and count exact.
        org, lru = tri_views()
        pages = make_pages(8)
        for page in pages:
            lru.add(page)
        rng = random.Random(5)
        shadow = [p.pfn for p in pages]
        for _ in range(500):
            page = pages[rng.randrange(len(pages))]
            lru.touch(page)
            shadow.remove(page.pfn)
            shadow.append(page.pfn)
        assert [p.pfn for p in lru] == shadow
        assert len(lru) == 8


# --------------------------------------------------------------------------
# Organizer-level randomized differentials
# --------------------------------------------------------------------------


def drive_pair(reference, columnar_org, seed: int, steps: int = 400):
    """Apply one random op stream to both organizers; compare throughout."""
    rng = random.Random(seed)
    pages = make_pages(40)
    added: list[Page] = []
    in_relaunch = False

    def sync_check():
        assert reference.list_operations == columnar_org.list_operations
        if isinstance(reference, HotWarmColdOrganizer):
            names = ("hot", "warm", "cold")
        else:
            names = ("active", "inactive")
        for name in names:
            ref_list = getattr(reference, name)
            col_list = getattr(columnar_org, name)
            assert [p.pfn for p in ref_list] == [p.pfn for p in col_list], name
            assert len(ref_list) == len(col_list)
        columnar_org.audit_columnar_state()

    for step in range(steps):
        op = rng.random()
        if op < 0.30 and len(added) < len(pages):
            page = next(p for p in pages if p not in added)
            reference.add_page(page)
            columnar_org.add_page(page)
            added.append(page)
        elif op < 0.40 and len(added) < len(pages) - 3:
            batch = [p for p in pages if p not in added][: rng.randrange(1, 4)]
            reference.add_page_run(list(batch))
            columnar_org.add_page_run(list(batch))
            added.extend(batch)
        elif op < 0.70 and added:
            # Access run with duplicates (a pfn can repeat within a run).
            run = [rng.choice(added) for _ in range(rng.randrange(1, 8))]
            reference.on_access_run(list(run), now_ns=step)
            columnar_org.on_access_run(list(run), now_ns=step)
        elif op < 0.78 and added:
            page = rng.choice(added)
            reference.on_access(page, now_ns=step)
            columnar_org.on_access(page, now_ns=step)
        elif op < 0.86 and added:
            ref_victim = reference.pop_victim()
            col_victim = columnar_org.pop_victim()
            assert ref_victim.pfn == col_victim.pfn
            added.remove(ref_victim)
        elif op < 0.90 and added:
            page = rng.choice(added)
            reference.remove_page(page)
            columnar_org.remove_page(page)
            added.remove(page)
        elif op < 0.95 and isinstance(reference, HotWarmColdOrganizer):
            if in_relaunch:
                reference.end_relaunch()
                columnar_org.end_relaunch()
                in_relaunch = False
            else:
                reference.begin_relaunch()
                columnar_org.begin_relaunch()
                in_relaunch = True
        if step == 40 and isinstance(reference, HotWarmColdOrganizer):
            reference.end_launch_window()
            columnar_org.end_launch_window()
        sync_check()
    if in_relaunch:
        reference.end_relaunch()
        columnar_org.end_relaunch()
        sync_check()


class TestOrganizerDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_tri_list_random_interleavings(self, seed):
        drive_pair(
            HotWarmColdOrganizer(uid=1, hot_seed_limit=6),
            ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=6),
            seed=seed,
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_two_list_random_interleavings(self, seed):
        drive_pair(
            ActiveInactiveOrganizer(uid=1, refill_batch=4),
            ColumnarActiveInactiveOrganizer(uid=1, refill_batch=4),
            seed=seed,
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_end_relaunch_journal_ordering_equivalence(self, seed):
        """The journal-bounded promotion scan must reproduce the object
        core's full warm+cold walk *order*, not just its membership: the
        new hot list is rebuilt in warm-LRU-then-cold-LRU order, which
        seeds the next relaunch's demotion order.  Touch patterns with
        repeats, cold->warm promotions mid-relaunch, and untouched hot
        pages all have to land identically."""
        reference = HotWarmColdOrganizer(uid=1, hot_seed_limit=8)
        under_test = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=8)
        rng = random.Random(seed)
        pages = make_pages(24)
        for org in (reference, under_test):
            org.add_page_run(list(pages))
            org.end_launch_window()
        for _ in range(4):
            for org in (reference, under_test):
                org.begin_relaunch()
            for _ in range(rng.randrange(1, 5)):
                run = [rng.choice(pages) for _ in range(rng.randrange(1, 10))]
                reference.on_access_run(list(run), now_ns=1)
                under_test.on_access_run(list(run), now_ns=1)
            for org in (reference, under_test):
                org.end_relaunch()
            for name in ("hot", "warm", "cold"):
                assert [p.pfn for p in getattr(reference, name)] == [
                    p.pfn for p in getattr(under_test, name)
                ], name
            assert reference.list_operations == under_test.list_operations
            under_test.audit_columnar_state()

    def test_cold_page_touched_twice_in_one_run_counts_three_ops(self):
        # The trap case: occurrence 1 promotes cold->warm (+2), and the
        # second occurrence must count as a *warm* touch (+1) even
        # though the snapshot classified it cold.
        reference = HotWarmColdOrganizer(uid=1, hot_seed_limit=0)
        under_test = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=0)
        page = make_pages(1)[0]
        for org in (reference, under_test):
            org.add_page(page)
            base = org.list_operations
            org.on_access_run([page, page], now_ns=5)
            assert org.list_operations - base == 3
        assert [p.pfn for p in reference.warm] == [
            p.pfn for p in under_test.warm
        ]

    def test_access_stamps_live_in_the_columns(self):
        org = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=4)
        pages = make_pages(3)
        org.add_page_run(list(pages))
        org.on_access_run([pages[0], pages[0], pages[2]], now_ns=77)
        table = org._table
        h0 = table.index[pages[0].pfn]
        h2 = table.index[pages[2].pfn]
        assert table.access_count[h0] == 2  # duplicate counted per occurrence
        assert table.access_count[h2] == 1
        assert table.last_access_ns[h0] == 77

    def test_access_to_nonresident_page_raises(self):
        org = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=4)
        resident, absent = make_pages(2)
        org.add_page(resident)
        with pytest.raises(PageStateError, match="not resident"):
            org.on_access(absent, now_ns=1)
        with pytest.raises(PageStateError, match="not resident"):
            org.on_access_run([resident, absent], now_ns=1)


# --------------------------------------------------------------------------
# System-level randomized differentials (faults + pressure installed)
# --------------------------------------------------------------------------


def _organizer_fingerprint(organizer) -> dict:
    if isinstance(organizer, HotWarmColdOrganizer):
        names = ("hot", "warm", "cold")
    else:
        names = ("active", "inactive")
    return {
        "lists": {
            name: [p.pfn for p in getattr(organizer, name)] for name in names
        },
        "list_operations": organizer.list_operations,
    }


def _system_fingerprint(system) -> dict:
    scheme = system.scheme
    return {
        "clock": system.ctx.clock.now_ns,
        "cpu": dict(system.ctx.cpu._by_pair),
        "counters": system.ctx.counters.as_dict(),
        "epoch": scheme.eviction_epoch,
        "epoch_skips": scheme.epoch_skips,
        "residency_probes": scheme.residency_probes,
        "organizers": {
            uid: _organizer_fingerprint(org)
            for uid, org in scheme._organizers.items()
        },
    }


def _drive_scenario(core: str, scheme_name: str, trace, seed: int) -> dict:
    """One seeded lifecycle scenario under ``core``; returns fingerprint."""
    import os

    os.environ["REPRO_CORE"] = core
    try:
        # ZSWAP runs on the tight platform so its writeback/readahead
        # machinery (batch records, staging buffer) engages under both
        # cores; the roomy tiny platform would leave it a ZRAM clone.
        system = build_tiny(
            scheme_name, trace, tight=(scheme_name == "ZSWAP")
        )
        install_fault_plan(
            system.ctx,
            FaultPlan(
                seed=seed,
                read_error_rate=0.05,
                bitflip_rate=0.02,
                permanent_fraction=0.5,
            ),
        )
        install_pressure(
            system, PressurePlan(PressureConfig(policy="hybrid"))
        )
        names = [live.name for live in system.apps]
        for name in names:
            system.launch_app(name)
        rng = random.Random(seed)
        for _ in range(14):
            action = rng.random()
            name = rng.choice(names)
            live = system.app(name)
            if action < 0.55:
                system.relaunch(name)
            elif action < 0.70:
                system.switch_away(name)
            elif action < 0.85 and scheme_name != "DRAM":
                # The DRAM baseline never evicts (prepare_relaunch skips
                # it for the same reason).
                system.scheme.force_compress_app(
                    live.uid, exclude_hot=rng.random() < 0.5
                )
            elif not live.killed:
                system.scheme.terminate_app(live.uid)
                system.mark_killed(live.uid)
        return _system_fingerprint(system)
    finally:
        os.environ.pop("REPRO_CORE", None)


class TestSystemDifferential:
    @pytest.mark.parametrize("scheme_name", ["Ariadne", "ZRAM", "ZSWAP"])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_lifecycle_interleavings_fingerprint_identical(
        self, tiny_trace, scheme_name, seed
    ):
        object_fp = _drive_scenario("object", scheme_name, tiny_trace, seed)
        columnar_fp = _drive_scenario(
            "columnar", scheme_name, tiny_trace, seed
        )
        assert object_fp == columnar_fp

    def test_swap_and_dram_schemes_fingerprint_identical(self, tiny_trace):
        for scheme_name in ("SWAP", "DRAM"):
            assert _drive_scenario(
                "object", scheme_name, tiny_trace, 7
            ) == _drive_scenario("columnar", scheme_name, tiny_trace, 7)


# --------------------------------------------------------------------------
# Auditor: REPRO_AUDIT=1 green + planted drift caught
# --------------------------------------------------------------------------


class TestColumnarAudit:
    def test_audited_columnar_scenario_is_green(
        self, tiny_trace, monkeypatch
    ):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        monkeypatch.setenv("REPRO_CORE", "columnar")
        system = build_tiny("Ariadne", tiny_trace)
        names = [live.name for live in system.apps]
        for name in names:
            system.launch_app(name)
        for name in (names * 2)[:5]:
            system.relaunch(name)
        assert system.scheme._auditor is not None
        assert system.scheme._auditor.audits_performed > 0

    def _audited_organizer(self):
        org = ColumnarHotWarmColdOrganizer(uid=1, hot_seed_limit=2)
        org.add_page_run(make_pages(6))
        org.audit_columnar_state()  # sanity: green before planting drift
        return org

    def test_planted_count_drift_is_caught(self):
        org = self._audited_organizer()
        org.cold._count += 1
        with pytest.raises(InvariantViolationError, match="census"):
            org.audit_columnar_state()

    def test_planted_list_id_corruption_is_caught(self):
        org = self._audited_organizer()
        table = org._table
        table.list_id[table.index[make_pages(6)[-1].pfn]] = 99
        with pytest.raises(InvariantViolationError, match="census|accounted"):
            org.audit_columnar_state()

    def test_planted_pos_corruption_is_caught(self):
        org = self._audited_organizer()
        table = org._table
        handle = table.index[make_pages(6)[0].pfn]
        table.pos[handle] += 1  # points at a neighbor's slot (or dead)
        with pytest.raises(InvariantViolationError, match="linkage|window"):
            org.audit_columnar_state()

    def test_planted_handle_table_corruption_is_caught(self):
        org = self._audited_organizer()
        org._table.index[999999] = 0  # alias two pfns to one handle
        with pytest.raises(InvariantViolationError, match="handle table"):
            org.audit_columnar_state()
