"""Cross-scheme conformance battery.

Every registered scheme — the baselines, Ariadne, and the ZSWAP
writeback tier — must honor the same behavioral contracts regardless of
its internal machinery:

- *batch equivalence*: the fast ``access_batch`` override leaves exactly
  the state the per-page reference path leaves, on a platform tight
  enough that every migration tier (zpool overflow, flash writeback,
  readahead staging) actually engages;
- *fault degradation*: under an injected fault plan the scenario still
  completes and the injection ledger balances — every fault is retried,
  counted-degraded, or legitimately invisible to that scheme;
- *pressure off-identity*: an inert pressure plan (thresholds no PSI
  sample can reach) changes nothing observable;
- *audit cleanliness*: a full workload under ``REPRO_AUDIT=1`` passes
  every invariant checkpoint.
"""

from __future__ import annotations

from types import MethodType

import pytest

from repro.core import AriadneConfig, PressureConfig, RelaunchScenario
from repro.core.scheme import SwapScheme
from repro.faults import FaultPlan, install_fault_plan
from repro.lmk import PressurePlan, install_pressure
from repro.sim import run_light_scenario

from tests.conftest import build_tiny
from tests.test_access_batch import _system_fingerprint

SCHEMES = ["DRAM", "ZRAM", "SWAP", "ZSWAP", "Ariadne"]

#: A plan that observes but can never act: the ``swap`` policy never
#: kills, and a boost cap of 1 means escalation has nowhere to go even
#: when the saturated tiny platform pins PSI at 1.0 (the experiment's
#: ``hybrid`` inert plan relies on PSI < 1.0, which a roomier platform
#: guarantees but this one does not).
_INERT_PRESSURE = PressureConfig(
    policy="swap",
    some_threshold=1.0,
    full_threshold=1.0,
    kswapd_boost_max=1,
)

#: Counters the inert plan legitimately moves: PSI sampling is pure
#: observation, and overflow relief routes through the plan so the very
#: same oldest-chunk drops gain a decision label (``chunks_dropped``
#: stays in the compared set, proving the drops themselves are
#: identical).  Everything else must match bit-for-bit.
_OBSERVATION_COUNTERS = ("pressure_samples", "pressure_overflow_drops")


def _build(scheme_name, trace):
    """Tight tiny system: zpool overflows, so writeback tiers engage."""
    config = (
        AriadneConfig(scenario=RelaunchScenario.EHL)
        if scheme_name == "Ariadne"
        else None
    )
    return build_tiny(scheme_name, trace, config, tight=True)


def _drive(system):
    """Deterministic relaunch mix long enough to churn every tier."""
    system.launch_all()
    names = [app.name for app in system.apps]
    for name in names + names + names[:2]:
        system.relaunch(name)


class TestBatchEquivalence:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fast_path_matches_per_page_reference(
        self, scheme_name, tiny_trace
    ):
        def run(force_default):
            system = _build(scheme_name, tiny_trace)
            if force_default:
                system.scheme.access_batch = MethodType(
                    SwapScheme.access_batch, system.scheme
                )
            _drive(system)
            return _system_fingerprint(system)

        assert run(False) == run(True)


class TestFaultDegradation:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_scenario_survives_with_balanced_ledger(
        self, scheme_name, tiny_trace
    ):
        system = _build(scheme_name, tiny_trace)
        plan = FaultPlan(
            seed=7,
            read_error_rate=0.05,
            write_error_rate=0.05,
            bitflip_rate=0.005,
        )
        install_fault_plan(system.ctx, plan)
        result = run_light_scenario(system, duration_s=3.0)
        assert result.relaunches, "scenario stalled under faults"
        ledger = plan.ledger(system.ctx.counters)
        assert ledger["consistent"], ledger


class TestPressureOffIdentity:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_inert_plan_changes_nothing(self, scheme_name, tiny_trace):
        def run(with_pressure):
            system = _build(scheme_name, tiny_trace)
            if with_pressure:
                install_pressure(system, PressurePlan(_INERT_PRESSURE))
            _drive(system)
            fingerprint = _system_fingerprint(system)
            for name in _OBSERVATION_COUNTERS:
                fingerprint["counters"].pop(name, None)
            return fingerprint

        assert run(True) == run(False)


class TestAuditCleanliness:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_full_workload_passes_every_checkpoint(
        self, scheme_name, tiny_trace, monkeypatch
    ):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        system = _build(scheme_name, tiny_trace)
        auditor = system.scheme._auditor
        assert auditor is not None
        _drive(system)  # raises InvariantViolationError on any drift
        # A scheme that never hit a checkpoint (DRAM evicts nothing on
        # a roomy enough run) still gets a final end-state audit.
        auditor.audit(system.scheme)
        assert auditor.audits_performed > 0
