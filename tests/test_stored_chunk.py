"""StoredChunk invariant tests."""

from __future__ import annotations

import pytest

from repro.core import StoredChunk
from repro.errors import PageStateError
from repro.mem import Hotness, Page, PageLocation
from repro.units import PAGE_SIZE


def make_chunk(n_pages: int, chunk_size: int, stored: int = 1000) -> StoredChunk:
    pages = tuple(Page(pfn=i, uid=1) for i in range(n_pages))
    return StoredChunk(
        chunk_id=1, uid=1, pages=pages, chunk_size=chunk_size,
        codec_name="lzo", stored_bytes=stored, hotness_at_compress=Hotness.COLD,
    )


def test_ratio_and_sizes():
    chunk = make_chunk(4, 16 * 1024, stored=4096)
    assert chunk.original_bytes == 4 * PAGE_SIZE
    assert chunk.ratio == 4.0
    assert chunk.page_count == 4


def test_sub_page_chunk_must_cover_one_page():
    with pytest.raises(PageStateError):
        make_chunk(2, 1024)


def test_group_cannot_exceed_chunk_capacity():
    with pytest.raises(PageStateError):
        make_chunk(5, 16 * 1024)  # 16K holds at most 4 pages


def test_empty_chunk_rejected():
    with pytest.raises(PageStateError):
        StoredChunk(
            chunk_id=1, uid=1, pages=(), chunk_size=4096,
            codec_name="lzo", stored_bytes=10, hotness_at_compress=Hotness.COLD,
        )


def test_non_positive_stored_size_rejected():
    with pytest.raises(PageStateError):
        make_chunk(1, 4096, stored=0)


def test_location_predicates():
    chunk = make_chunk(1, 4096)
    assert chunk.in_zpool
    assert not chunk.in_flash
    chunk.location = PageLocation.FLASH
    assert chunk.in_flash
