"""Whole-system invariants under randomized operation sequences.

Property-based state-machine testing: whatever sequence of launches,
relaunches, switches, and forced compressions a scheme executes, the
bookkeeping must stay coherent — every page accounted for exactly once,
pools within capacity, free-memory arithmetic consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AriadneConfig, RelaunchScenario
from repro.mem.page import PageLocation
from repro.trace import TraceGenerator
from tests.conftest import TINY_PROFILES, build_tiny

APPS = [profile.name for profile in TINY_PROFILES]


def fresh_system(scheme_name: str):
    trace = TraceGenerator(seed=55).generate_workload(
        profiles=TINY_PROFILES, n_sessions=3
    )
    config = None
    if scheme_name == "Ariadne":
        config = AriadneConfig(scenario=RelaunchScenario.AL)
    system = build_tiny(scheme_name, trace, config)
    system.launch_all()
    return system


def assert_invariants(system) -> None:
    scheme = system.scheme
    ctx = system.ctx
    for live in system.apps:
        organizer = scheme.organizer(live.uid)
        resident = {page.pfn for page in organizer.resident_pages()}
        stored = {
            record.pfn for record in live.trace.pages
            if record.pfn in scheme._stored_by_pfn
        }
        staged = {
            record.pfn for record in live.trace.pages
            if getattr(scheme, "staging", None) is not None
            and record.pfn in scheme.staging
        }
        lost = {
            record.pfn for record in live.trace.pages
            if record.pfn in scheme._lost_pfns
        }
        all_pfns = {record.pfn for record in live.trace.pages}
        # Every page is in exactly one place.
        assert resident | stored | staged | lost == all_pfns
        assert not (resident & stored)
        assert not (resident & staged)
        assert not (stored & staged)
        # Resident pages really occupy DRAM.
        for page in organizer.resident_pages():
            assert ctx.dram.is_resident(page)
            assert page.location is PageLocation.DRAM
    # Pools within capacity; free accounting non-negative.
    assert 0 <= ctx.zpool.used_bytes <= ctx.zpool.capacity_bytes
    assert 0 <= ctx.flash_swap.used_bytes <= ctx.flash_swap.capacity_bytes
    assert scheme.free_dram_bytes() >= 0
    # The O(1) running counters equal a from-scratch recompute: the
    # incremental accounting layer may never drift from ground truth.
    assert ctx.dram.used_bytes == ctx.dram.audit_used_bytes()
    assert ctx.zpool.used_bytes == ctx.zpool.audit_used_bytes()
    assert scheme.free_dram_bytes() == scheme.audit_free_dram_bytes()
    # Stored-chunk placement fields are consistent.
    for chunk in scheme.stored_chunks():
        if chunk.in_zpool:
            assert chunk.zpool_handle is not None
            assert ctx.zpool.contains(chunk.zpool_handle)
        else:
            assert chunk.flash_slot is not None
    # Eviction-epoch layer: the per-app non-resident counters that gate
    # the probe-free replay path must equal a ground-truth recompute,
    # per-app eviction stamps may never pass the global epoch, and a
    # currently-valid full-residency verification must mean exactly
    # that — zero pages away from DRAM.
    staging = getattr(scheme, "staging", None)
    for live in system.apps:
        uid = live.uid
        ground_truth = sum(
            1
            for record in live.trace.pages
            if record.pfn in scheme._stored_by_pfn
            or record.pfn in scheme._lost_pfns
            or (staging is not None and record.pfn in staging)
        )
        assert scheme._nonresident_pages.get(uid, 0) == ground_truth
        app_stamp = scheme._app_eviction_epoch.get(uid, 0)
        assert 0 <= app_stamp <= scheme.eviction_epoch
        if scheme._resident_verified_epoch.get(uid, -1) >= app_stamp:
            assert ground_truth == 0, (
                f"app {uid} verified fully resident while {ground_truth} "
                "pages are away from DRAM"
            )


@pytest.mark.parametrize("scheme_name", ["ZRAM", "SWAP", "Ariadne"])
def test_invariants_after_launch(scheme_name):
    assert_invariants(fresh_system(scheme_name))


@settings(max_examples=12, deadline=None)
@given(
    st.sampled_from(["ZRAM", "Ariadne"]),
    st.lists(
        st.tuples(
            st.sampled_from(["relaunch", "switch", "prepare_al", "prepare_ehl"]),
            st.integers(min_value=0, max_value=len(APPS) - 1),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_invariants_under_random_operations(scheme_name, operations):
    system = fresh_system(scheme_name)
    last_epoch = system.scheme.eviction_epoch
    for op, app_index in operations:
        name = APPS[app_index]
        if op == "relaunch":
            system.relaunch(name)
        elif op == "switch":
            system.switch_away(name)
        elif op == "prepare_al":
            system.prepare_relaunch(name, RelaunchScenario.AL)
        else:
            system.prepare_relaunch(name, RelaunchScenario.EHL)
        assert_invariants(system)
        # The eviction epoch is a monotone counter: whatever the
        # operation mix, it may only grow.
        assert system.scheme.eviction_epoch >= last_epoch
        last_epoch = system.scheme.eviction_epoch


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(["ZRAM", "SWAP", "Ariadne"]),
    st.lists(
        st.tuples(
            st.sampled_from(
                # admit (relaunch faults pages back in), evict
                # (prepare/compress force reclaim), and writeback
                # (Ariadne moves cold chunks to flash under pressure
                # and on background reclaim) all exercise the hooks.
                ["relaunch", "compress_all", "compress_cold",
                 "background_reclaim", "prepare_al"],
            ),
            st.integers(min_value=0, max_value=len(APPS) - 1),
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_free_counter_equals_recompute_under_admit_evict_writeback(
    scheme_name, operations
):
    """The running free-bytes counter tracks a from-scratch recompute
    through randomized admit/evict/writeback sequences — the invariant
    the O(1) accounting layer must uphold to be number-invariant."""
    system = fresh_system(scheme_name)
    scheme = system.scheme
    for op, app_index in operations:
        name = APPS[app_index]
        uid = system.app(name).uid
        if op == "relaunch":
            system.relaunch(name)
        elif op == "compress_all":
            scheme.force_compress_app(uid)
        elif op == "compress_cold":
            scheme.force_compress_app(uid, exclude_hot=True)
        elif op == "background_reclaim":
            scheme.background_reclaim()
        else:
            system.prepare_relaunch(name, RelaunchScenario.AL)
        assert system.ctx.dram.used_bytes == system.ctx.dram.audit_used_bytes()
        assert system.ctx.zpool.used_bytes == system.ctx.zpool.audit_used_bytes()
        assert scheme.free_dram_bytes() == scheme.audit_free_dram_bytes()


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=2))
def test_clock_monotone_under_relaunch_cycles(app_index):
    system = fresh_system("Ariadne")
    name = APPS[app_index]
    stamps = [system.ctx.clock.now_ns]
    for _ in range(3):
        system.relaunch(name)
        stamps.append(system.ctx.clock.now_ns)
    assert stamps == sorted(stamps)
    assert stamps[-1] > stamps[0]


def test_counters_consistent_after_full_cycle():
    system = fresh_system("Ariadne")
    for name in APPS:
        system.prepare_relaunch(name, RelaunchScenario.AL)
        system.relaunch(name)
    counters = system.ctx.counters
    # Each decompressed page was once compressed (or prefetched from a
    # compressed chunk); compression events cannot be outnumbered.
    assert counters.get("pages_compressed") >= counters.get("pages_decompressed") - \
        counters.get("staging_recompressed")
    # Ratio bookkeeping is self-consistent.
    assert counters.get("bytes_stored") <= counters.get("bytes_original")
