"""Cells-vs-serial equivalence for every sharded experiment.

Each sharded module defines ``run()`` as the serial merge of its cells,
so the contract under test is the part that construction alone cannot
give: cells must be *independent* (executable in any order, in any
process) and their payloads must survive the worker boundary (pickle)
— i.e. ``merge(run_cell(c) for c in cells)`` equals ``run()`` exactly
even when the cells ran reversed and round-tripped through pickle.
The absolute values themselves are pinned separately by
``tests/test_golden_numbers.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import (
    SHARDED_EXPERIMENTS,
    fig2,
    fig3,
    fig12,
    fig13,
    table2,
)


def merged_from_reversed_cells(module):
    """Run every cell in reverse order, through a pickle round-trip."""
    results = {}
    for key in reversed(module.cells(quick=True)):
        payload = module.run_cell(key, quick=True)
        results[key] = pickle.loads(pickle.dumps(payload))
    return module.merge(results, quick=True)


def test_every_sharded_module_exposes_the_protocol():
    for name, module in SHARDED_EXPERIMENTS.items():
        keys = module.cells(quick=True)
        assert keys, f"{name} advertises no cells"
        assert len(keys) == len(set(keys)), f"{name} cell keys collide"
        assert callable(module.run_cell) and callable(module.merge)


@pytest.mark.parametrize("module", [fig2, fig3, table2, fig12, fig13])
def test_unknown_cell_key_rejected(module):
    with pytest.raises(KeyError):
        module.run_cell("not-a-cell", quick=True)


def test_fig12_cells_equal_serial():
    assert merged_from_reversed_cells(fig12) == fig12.run(quick=True)


def test_fig13_cells_equal_serial():
    assert merged_from_reversed_cells(fig13) == fig13.run(quick=True)


@pytest.mark.slow
def test_fig2_cells_equal_serial():
    assert merged_from_reversed_cells(fig2) == fig2.run(quick=True)


@pytest.mark.slow
def test_fig3_cells_equal_serial():
    assert merged_from_reversed_cells(fig3) == fig3.run(quick=True)


@pytest.mark.slow
def test_table2_cells_equal_serial():
    assert merged_from_reversed_cells(table2) == table2.run(quick=True)
