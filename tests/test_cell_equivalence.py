"""Cells-vs-serial equivalence for every sharded experiment.

Each sharded spec's ``run()`` is the serial merge of its cells (base
class), so the contract under test is the part that construction alone
cannot give: cells must be *independent* (executable in any order, in
any process) and their payloads must survive the worker boundary
(pickle) — i.e. ``merge(run_cell(c) for c in cells)`` equals ``run()``
exactly even when the cells ran reversed and round-tripped through
pickle.  The absolute values themselves are pinned separately by
``tests/test_golden_numbers.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import CellSpec, all_experiments, experiment


def sharded_specs():
    return [spec for spec in all_experiments() if spec.sharded]


def merged_from_reversed_cells(spec):
    """Run every cell in reverse order, through a pickle round-trip."""
    results = {}
    for key in reversed(spec.cell_keys(quick=True)):
        payload = spec.run_cell(key, quick=True)
        results[key] = pickle.loads(pickle.dumps(payload))
    return spec.merge(results, quick=True)


def test_sharded_flags_cover_the_scheme_matrix():
    assert {spec.id for spec in sharded_specs()} == {
        "fig2", "fig3", "table2", "fig10", "fig11", "fig12", "fig13",
        "chaos", "pressure", "zswap_compare", "zswap_sensitivity", "fleet",
    }


def test_every_sharded_spec_exposes_the_protocol():
    for spec in sharded_specs():
        keys = spec.cell_keys(quick=True)
        assert keys, f"{spec.id} advertises no cells"
        assert len(keys) == len(set(keys)), f"{spec.id} cell keys collide"
        assert spec.cells(quick=True) == [
            CellSpec(spec.id, key) for key in keys
        ]


@pytest.mark.parametrize("name", ["fig2", "fig3", "table2", "fig12", "fig13"])
def test_unknown_cell_key_rejected(name):
    with pytest.raises(KeyError):
        experiment(name).run_cell("not-a-cell", quick=True)


def test_unsharded_spec_rejects_cell_protocol():
    spec = experiment("platform")
    assert spec.cells(quick=True) == []
    with pytest.raises(NotImplementedError):
        spec.run_cell("anything", quick=True)


def test_fig12_cells_equal_serial():
    spec = experiment("fig12")
    assert merged_from_reversed_cells(spec) == spec.run(quick=True)


def test_fig13_cells_equal_serial():
    spec = experiment("fig13")
    assert merged_from_reversed_cells(spec) == spec.run(quick=True)


@pytest.mark.slow
def test_fig2_cells_equal_serial():
    spec = experiment("fig2")
    assert merged_from_reversed_cells(spec) == spec.run(quick=True)


@pytest.mark.slow
def test_fig3_cells_equal_serial():
    spec = experiment("fig3")
    assert merged_from_reversed_cells(spec) == spec.run(quick=True)


@pytest.mark.slow
def test_table2_cells_equal_serial():
    spec = experiment("table2")
    assert merged_from_reversed_cells(spec) == spec.run(quick=True)
