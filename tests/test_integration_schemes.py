"""Cross-scheme integration tests: the paper's headline orderings must
hold end-to-end on the tiny workload."""

from __future__ import annotations

import pytest

from repro.core import AriadneConfig, RelaunchScenario
from repro.mem.page import Hotness
from tests.conftest import build_tiny


def measured_latency(system, target: str, scenario, session: int) -> float:
    system.prepare_relaunch(target, scenario)
    for other in ("MiniChat", "MiniGame"):
        if other != target:
            system.relaunch(other)
    return system.relaunch(target, session).latency_ms


@pytest.fixture(scope="module")
def latencies(tiny_trace):
    """Session-1 relaunch latency per scheme for the same target."""
    results = {}
    for scheme_name, config, scenario in (
        ("DRAM", None, None),
        ("ZRAM", None, RelaunchScenario.AL),
        ("SWAP", None, RelaunchScenario.AL),
        ("Ariadne", AriadneConfig(scenario=RelaunchScenario.EHL),
         RelaunchScenario.EHL),
    ):
        system = build_tiny(scheme_name, tiny_trace, config)
        system.launch_all()
        results[system.scheme.name] = measured_latency(
            system, "MiniTube", scenario, 1
        )
    return results


def test_dram_is_fastest(latencies):
    dram = latencies["DRAM"]
    assert all(dram <= value for value in latencies.values())


def test_zram_beats_swap(latencies):
    assert latencies["ZRAM"] < latencies["SWAP"]


def test_ariadne_beats_zram(latencies):
    ariadne = latencies["Ariadne-EHL-1K-2K-16K"]
    assert ariadne < latencies["ZRAM"]


def test_ariadne_close_to_dram(latencies):
    ariadne = latencies["Ariadne-EHL-1K-2K-16K"]
    assert ariadne <= latencies["DRAM"] * 1.6


def test_zram_compresses_hot_data_early(tiny_trace):
    """The Figure 4 pathology: LRU compresses launch (hot) pages first."""
    system = build_tiny("ZRAM", tiny_trace)
    system.launch_all()
    uid = tiny_trace.app("MiniTube").uid
    first_compressed = [
        hotness for log_uid, hotness in system.scheme.compression_log
        if log_uid == uid
    ][:8]
    assert first_compressed, "pressure should have compressed something"
    hot_share = sum(1 for h in first_compressed if h is Hotness.HOT)
    assert hot_share > 0


def test_ariadne_compresses_cold_before_hot(tiny_trace):
    """HotnessOrg's fix: pages Ariadne *identifies* as hot are compressed
    last — every chunk stored while cold/warm victims remain carries a
    non-hot identification."""
    system = build_tiny(
        "Ariadne", tiny_trace, AriadneConfig(scenario=RelaunchScenario.EHL)
    )
    system.launch_all()
    uid = tiny_trace.app("MiniTube").uid
    chunks = [c for c in system.scheme.stored_chunks() if c.uid == uid][:8]
    assert chunks, "pressure should have compressed something"
    assert all(c.hotness_at_compress is not Hotness.HOT for c in chunks)


def test_ariadne_flash_writes_are_compressed_swap_writes_raw(tiny_trace):
    """Ariadne writes compressed cold chunks; SWAP writes raw pages —
    so for the same pressure Ariadne writes fewer flash bytes per page."""
    swap = build_tiny("SWAP", tiny_trace)
    swap.launch_all()
    swap_pages = swap.ctx.counters.get("pages_swapped_out")
    swap_bytes = swap.ctx.flash_device.host_bytes_written

    ariadne = build_tiny(
        "Ariadne", tiny_trace, AriadneConfig(scenario=RelaunchScenario.AL)
    )
    ariadne.launch_all()
    ariadne.prepare_relaunch("MiniTube", RelaunchScenario.AL)
    for target in ("MiniChat", "MiniGame", "MiniTube"):
        ariadne.relaunch(target)
    wb_pages = ariadne.ctx.counters.get("pages_written_back")
    wb_bytes = ariadne.ctx.flash_device.host_bytes_written
    if swap_pages and wb_pages:
        assert wb_bytes / wb_pages < swap_bytes / swap_pages


def test_determinism_same_seed_same_results(tiny_trace):
    first = build_tiny("ZRAM", tiny_trace)
    first.launch_all()
    first.prepare_relaunch("MiniTube", RelaunchScenario.AL)
    a = first.relaunch("MiniTube", 0).latency_ns

    second = build_tiny("ZRAM", tiny_trace)
    second.launch_all()
    second.prepare_relaunch("MiniTube", RelaunchScenario.AL)
    b = second.relaunch("MiniTube", 0).latency_ns
    assert a == b
