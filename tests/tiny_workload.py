"""Tiny-workload builders shared by fixtures and direct test imports.

Lives in its own uniquely named module (not ``conftest``) so test files
can import it by name: a repo-wide pytest run loads *both*
``tests/conftest.py`` and ``benchmarks/conftest.py`` under the module
name ``conftest``, and a ``from conftest import ...`` in a test file
resolves to whichever loaded first.
"""

from __future__ import annotations

from repro.core import AriadneConfig, PlatformConfig, ZswapConfig
from repro.sim import MobileSystem, make_system
from repro.trace import WorkloadTrace
from repro.units import KIB, MIB
from repro.workload import AppProfile

TINY_PROFILES = (
    AppProfile(
        name="MiniTube", uid=1,
        anon_mb_10s=8, anon_mb_5min=16,
        hot_fraction=0.25, warm_fraction=0.30,
        hot_similarity=0.75, reused_fraction=0.97,
        locality_p2=0.80, locality_p4=0.60,
        dram_relaunch_ms=50.0,
        incompressible_fraction=0.15,
    ),
    AppProfile(
        name="MiniChat", uid=2,
        anon_mb_10s=6, anon_mb_5min=12,
        hot_fraction=0.30, warm_fraction=0.25,
        hot_similarity=0.70, reused_fraction=0.98,
        locality_p2=0.75, locality_p4=0.50,
        dram_relaunch_ms=40.0,
        incompressible_fraction=0.10,
    ),
    AppProfile(
        name="MiniGame", uid=3,
        anon_mb_10s=10, anon_mb_5min=20,
        hot_fraction=0.12, warm_fraction=0.28,
        hot_similarity=0.60, reused_fraction=0.96,
        locality_p2=0.65, locality_p4=0.35,
        dram_relaunch_ms=70.0,
        incompressible_fraction=0.25,
    ),
)


def tiny_platform(total_trace_bytes: int) -> PlatformConfig:
    """A pressured platform sized for the tiny workload."""
    return PlatformConfig(
        dram_bytes=max(64 * KIB, int(total_trace_bytes * 0.55)),
        zpool_bytes=max(256 * KIB, total_trace_bytes),
        swap_bytes=4 * MIB,
    )


def tight_tiny_platform(total_trace_bytes: int) -> PlatformConfig:
    """Like :func:`tiny_platform` but with an overflowing zpool.

    ``tiny_platform`` gives the zpool the whole trace, so writeback tiers
    (ZSWAP, Ariadne's cold writeback) never engage.  This variant caps
    the pool well below the cold footprint so they must.
    """
    return PlatformConfig(
        dram_bytes=max(64 * KIB, int(total_trace_bytes * 0.55)),
        zpool_bytes=max(64 * KIB, int(total_trace_bytes * 0.04)),
        swap_bytes=16 * MIB,
    )


def build_tiny(
    scheme_name: str,
    trace: WorkloadTrace,
    config: AriadneConfig | None = None,
    zswap_config: ZswapConfig | None = None,
    tight: bool = False,
) -> MobileSystem:
    """System over the tiny workload with matching pressure."""
    total = sum(app.total_bytes() for app in trace.apps)
    platform = tight_tiny_platform(total) if tight else tiny_platform(total)
    return make_system(
        scheme_name, trace, platform=platform, ariadne_config=config,
        zswap_config=zswap_config,
    )
