"""Energy-model tests."""

from __future__ import annotations

import pytest

from repro.energy import EnergyCoefficients, EnergyModel
from repro.errors import ConfigError
from repro.units import SECOND


def test_base_power_dominates_idle_scenarios():
    model = EnergyModel()
    report = model.energy(
        wall_ns=60 * SECOND,
        cpu_busy_ns=0,
        dram_bytes_moved=0,
        flash_bytes_read=0,
        flash_bytes_written=0,
    )
    assert report.total_j == pytest.approx(60 * 2.5)
    assert report.cpu_j == 0


def test_cpu_term_scales_with_busy_time():
    model = EnergyModel()
    idle = model.energy(60 * SECOND, 0, 0, 0, 0)
    busy = model.energy(60 * SECOND, 10 * SECOND, 0, 0, 0)
    assert busy.total_j - idle.total_j == pytest.approx(
        10 * model.coefficients.cpu_busy_power_w
    )


def test_flash_writes_cost_more_than_reads():
    model = EnergyModel()
    read = model.energy(0, 0, 0, 1 << 30, 0)
    write = model.energy(0, 0, 0, 0, 1 << 30)
    assert write.total_j > read.total_j


def test_dram_movement_charged():
    model = EnergyModel()
    report = model.energy(0, 0, 1 << 30, 0, 0)
    assert report.dram_j > 0
    assert report.total_j == report.dram_j


def test_negative_time_rejected():
    with pytest.raises(ConfigError):
        EnergyModel().energy(-1, 0, 0, 0, 0)


def test_negative_coefficient_rejected():
    with pytest.raises(ConfigError):
        EnergyModel(EnergyCoefficients(base_power_w=-1.0))


def test_report_total_is_sum_of_terms():
    report = EnergyModel().energy(SECOND, SECOND // 2, 1000, 2000, 3000)
    assert report.total_j == pytest.approx(
        report.base_j + report.cpu_j + report.dram_j + report.flash_j
    )
