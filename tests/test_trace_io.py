"""Trace persistence tests."""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.trace import TraceGenerator, load_trace, save_trace
from repro.workload import profile_by_name


@pytest.fixture(scope="module")
def small_workload():
    generator = TraceGenerator(seed=11)
    return generator.generate_workload(
        profiles=(profile_by_name("Twitter"),), n_sessions=2, duration_s=15
    )


def test_roundtrip_preserves_everything(tmp_path, small_workload):
    path = tmp_path / "workload.trace"
    save_trace(small_workload, path)
    loaded = load_trace(path)
    assert loaded.seed == small_workload.seed
    assert loaded.names == small_workload.names
    original = small_workload.apps[0]
    restored = loaded.apps[0]
    assert restored.pages == original.pages
    assert restored.sessions == original.sessions
    assert restored.launch_page_count == original.launch_page_count
    assert restored.profile == original.profile


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "not_a_trace.bin"
    path.write_bytes(b"GARBAGE!" + bytes(64))
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_truncated_file_rejected(tmp_path, small_workload):
    path = tmp_path / "truncated.trace"
    save_trace(small_workload, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises((TraceFormatError, Exception)):
        load_trace(path)


def test_truncated_header_rejected(tmp_path):
    path = tmp_path / "short.trace"
    path.write_bytes(b"ARTRACE1" + bytes(4))
    with pytest.raises(TraceFormatError):
        load_trace(path)
