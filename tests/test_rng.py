"""Deterministic RNG-derivation tests."""

from __future__ import annotations

from repro.rng import derive_rng, derive_seed


def test_same_inputs_same_seed():
    assert derive_seed(42, "a") == derive_seed(42, "a")


def test_different_labels_different_seeds():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_different_parents_different_seeds():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derived_rng_streams_are_reproducible():
    first = derive_rng(7, "stream")
    second = derive_rng(7, "stream")
    assert [first.random() for _ in range(10)] == [
        second.random() for _ in range(10)
    ]


def test_derived_rng_streams_are_independent():
    one = derive_rng(7, "one")
    two = derive_rng(7, "two")
    assert [one.random() for _ in range(5)] != [two.random() for _ in range(5)]
