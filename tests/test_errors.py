"""Exception-hierarchy tests: one base class catches everything."""

from __future__ import annotations

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc_type",
    [
        errors.ConfigError,
        errors.CompressionError,
        errors.CorruptDataError,
        errors.MemoryPressureError,
        errors.ZpoolFullError,
        errors.FlashFullError,
        errors.PageStateError,
        errors.TraceFormatError,
        errors.SchedulingError,
    ],
)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, errors.ReproError)


def test_corrupt_data_is_a_compression_error():
    assert issubclass(errors.CorruptDataError, errors.CompressionError)


def test_pool_full_errors_are_memory_pressure():
    assert issubclass(errors.ZpoolFullError, errors.MemoryPressureError)
    assert issubclass(errors.FlashFullError, errors.MemoryPressureError)
