"""Simulated-clock tests."""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.errors import SchedulingError


def test_clock_starts_at_zero_by_default():
    assert SimClock().now_ns == 0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(10)
    clock.advance(5)
    assert clock.now_ns == 15


def test_advance_rejects_negative_delta():
    clock = SimClock()
    with pytest.raises(SchedulingError):
        clock.advance(-1)


def test_negative_start_rejected():
    with pytest.raises(SchedulingError):
        SimClock(start_ns=-5)


def test_advance_to_is_monotonic():
    clock = SimClock(100)
    clock.advance_to(50)  # in the past: no-op
    assert clock.now_ns == 100
    clock.advance_to(200)
    assert clock.now_ns == 200


def test_fork_is_independent():
    clock = SimClock(10)
    fork = clock.fork()
    fork.advance(5)
    assert clock.now_ns == 10
    assert fork.now_ns == 15


def test_now_ms_converts():
    clock = SimClock(2_000_000)
    assert clock.now_ms == 2.0
