"""DRAM and SWAP baseline scheme tests."""

from __future__ import annotations

from repro.core import (
    DramScheme,
    FlashSwapScheme,
    PlatformConfig,
    build_context,
)
from repro.mem import Page, PageLocation
from repro.metrics import APP, KSWAPD
from repro.units import KIB, PAGE_SIZE


def platform(dram_pages: int) -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=dram_pages * PAGE_SIZE,
        zpool_bytes=256 * KIB,
        swap_bytes=1 << 20,
        scale=1,
        parallelism=1,
    )


def make_page(pfn: int) -> Page:
    return Page(pfn=pfn, uid=1, payload=(b"%d" % pfn * 4096)[:PAGE_SIZE])


class TestDram:
    def test_accesses_never_stall(self):
        scheme = DramScheme(build_context(platform(64)))
        scheme.register_app(1)
        scheme.note_app_switch(1)
        pages = [make_page(i) for i in range(8)]
        scheme.on_pages_created(1, pages)
        for page in pages:
            assert scheme.access(page).stall_ns == 0

    def test_file_writeback_charged_beyond_pressure_budget(self):
        ctx = build_context(platform(64))
        scheme = DramScheme(ctx, pressure_budget_bytes=2 * PAGE_SIZE)
        scheme.register_app(1)
        scheme.note_app_switch(1)
        scheme.on_pages_created(1, [make_page(i) for i in range(6)])
        assert ctx.cpu.pair_ns(KSWAPD, "file_writeback") > 0
        assert ctx.counters.get("file_pages_written") == 4

    def test_background_reclaim_never_touches_anon(self):
        ctx = build_context(platform(16))
        scheme = DramScheme(ctx)
        scheme.register_app(1)
        scheme.note_app_switch(1)
        pages = [make_page(i) for i in range(4)]
        scheme.on_pages_created(1, pages)
        scheme.background_reclaim()
        assert all(ctx.dram.is_resident(page) for page in pages)


class TestSwap:
    def make_scheme(self, dram_pages: int = 4) -> FlashSwapScheme:
        scheme = FlashSwapScheme(build_context(platform(dram_pages)))
        scheme.register_app(1)
        scheme.note_app_switch(1)
        return scheme

    def test_pressure_swaps_raw_pages_to_flash(self):
        scheme = self.make_scheme(dram_pages=4)
        pages = [make_page(i) for i in range(8)]
        scheme.on_pages_created(1, pages)
        swapped = [p for p in pages if p.location is PageLocation.FLASH]
        assert swapped
        # Raw pages: flash stores full page size per swapped page.
        assert scheme.ctx.flash_swap.used_bytes == len(swapped) * PAGE_SIZE

    def test_fault_reads_from_flash_with_stall(self):
        scheme = self.make_scheme(dram_pages=4)
        pages = [make_page(i) for i in range(8)]
        scheme.on_pages_created(1, pages)
        victim = next(p for p in pages if p.location is PageLocation.FLASH)
        result = scheme.access(victim, thread=APP)
        assert result.source is PageLocation.FLASH
        assert result.breakdown.flash_read_ns > 0
        assert scheme.ctx.dram.is_resident(victim)

    def test_swap_never_uses_zpool(self):
        scheme = self.make_scheme(dram_pages=4)
        scheme.on_pages_created(1, [make_page(i) for i in range(8)])
        assert scheme.ctx.zpool.entry_count == 0

    def test_swap_wear_counted(self):
        scheme = self.make_scheme(dram_pages=4)
        scheme.on_pages_created(1, [make_page(i) for i in range(8)])
        assert scheme.ctx.flash_device.nand_bytes_written > 0
