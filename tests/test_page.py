"""Page model tests."""

from __future__ import annotations

import pytest

from repro.mem import Hotness, Page, PageKind, PageLocation
from repro.units import PAGE_SIZE


def test_default_payload_is_zero_page():
    page = Page(pfn=1, uid=2)
    assert page.payload == bytes(PAGE_SIZE)


def test_wrong_payload_length_rejected():
    with pytest.raises(ValueError):
        Page(pfn=1, uid=1, payload=b"short")


def test_record_access_updates_recency():
    page = Page(pfn=1, uid=1)
    page.record_access(123)
    page.record_access(456)
    assert page.last_access_ns == 456
    assert page.access_count == 2


def test_equality_is_by_identity_tuple():
    assert Page(pfn=1, uid=1) == Page(pfn=1, uid=1)
    assert Page(pfn=1, uid=1) != Page(pfn=1, uid=2)
    assert Page(pfn=1, uid=1) != Page(pfn=2, uid=1)


def test_pages_hash_consistently():
    a, b = Page(pfn=7, uid=3), Page(pfn=7, uid=3)
    assert len({a, b}) == 1


def test_hotness_eviction_ranks():
    # Cold evicts first, hot last.
    assert Hotness.COLD.rank > Hotness.WARM.rank > Hotness.HOT.rank


def test_default_state():
    page = Page(pfn=1, uid=1)
    assert page.location is PageLocation.DRAM
    assert page.kind is PageKind.HEAP_OBJECTS
    assert page.true_hotness is Hotness.COLD
    assert page.size == PAGE_SIZE
