"""Simulated clock.

The whole simulator is driven by one :class:`SimClock` holding integer
nanoseconds.  Components *advance* the clock when they model work that
takes time on the critical path (a decompression stall, a flash read) and
merely *account* CPU time when work happens off the critical path (kswapd
compressing in the background while the app runs).
"""

from __future__ import annotations

from .errors import SchedulingError
from .units import ns_to_ms


class SimClock:
    """Monotonic simulated clock with integer-nanosecond resolution."""

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SchedulingError(f"clock cannot start at negative time {start_ns}")
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds (for reporting)."""
        return ns_to_ms(self._now_ns)

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Raises :class:`SchedulingError` on negative deltas: simulated time
        never flows backwards, and a negative delta always indicates a cost
        model bug.
        """
        if delta_ns < 0:
            raise SchedulingError(f"cannot advance clock by negative delta {delta_ns}")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_to(self, when_ns: int) -> int:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if when_ns > self._now_ns:
            self._now_ns = when_ns
        return self._now_ns

    def fork(self) -> "SimClock":
        """Return an independent clock starting at the current time."""
        return SimClock(self._now_ns)

    def __repr__(self) -> str:
        return f"SimClock(t={self._now_ns}ns)"
