"""Device energy model (the simulator's Power Rails).

The paper measures whole-device energy over 60 s scenarios (Table 2).
We model energy as::

    E = P_base * wall_time              (screen/SoC baseline)
      + e_cpu * cpu_busy_time           (reclaim + codec work, app work)
      + e_dram * dram_bytes_moved       (compression data movement)
      + e_flash_r * flash_bytes_read
      + e_flash_w * flash_bytes_written

The coefficients approximate a flagship phone: ~2.5 W of base draw
while interacting, ~1.2 W extra per busy core, tens of pJ per DRAM byte
and ~0.2/0.5 nJ per flash byte read/written.  The paper's claims are
comparative (ZRAM +12.2%/+19.5% over DRAM; SWAP roughly level), and the
comparison depends on the *ratios* of these terms, which the defaults
preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError
from .units import SECOND


@dataclass(frozen=True)
class EnergyCoefficients:
    """Tunable power/energy constants."""

    base_power_w: float = 2.5
    cpu_busy_power_w: float = 1.2
    dram_nj_per_byte: float = 0.05
    flash_read_nj_per_byte: float = 0.2
    flash_write_nj_per_byte: float = 0.5

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"energy coefficient {name} cannot be negative")


@dataclass
class EnergyReport:
    """Energy tally for one scenario run, in joules."""

    base_j: float
    cpu_j: float
    dram_j: float
    flash_j: float

    @property
    def total_j(self) -> float:
        """Total scenario energy."""
        return self.base_j + self.cpu_j + self.dram_j + self.flash_j


class EnergyModel:
    """Computes scenario energy from simulator counters."""

    def __init__(self, coefficients: EnergyCoefficients | None = None) -> None:
        self.coefficients = (
            coefficients if coefficients is not None else EnergyCoefficients()
        )
        self.coefficients.validate()

    def energy(
        self,
        wall_ns: int,
        cpu_busy_ns: int,
        dram_bytes_moved: int,
        flash_bytes_read: int,
        flash_bytes_written: int,
    ) -> EnergyReport:
        """Tally energy for a scenario.

        Args:
            wall_ns: Scenario wall-clock duration (simulated).
            cpu_busy_ns: Total busy CPU time across threads.
            dram_bytes_moved: Bytes moved for compression/decompression
                (each compressed/decompressed byte crosses DRAM twice:
                once read, once written — callers pass the doubled count).
            flash_bytes_read: Host bytes read from flash.
            flash_bytes_written: Host bytes written to flash.
        """
        if wall_ns < 0 or cpu_busy_ns < 0:
            raise ConfigError("times passed to the energy model cannot be negative")
        c = self.coefficients
        base_j = c.base_power_w * (wall_ns / SECOND)
        cpu_j = c.cpu_busy_power_w * (cpu_busy_ns / SECOND)
        dram_j = c.dram_nj_per_byte * dram_bytes_moved * 1e-9
        flash_j = (
            c.flash_read_nj_per_byte * flash_bytes_read
            + c.flash_write_nj_per_byte * flash_bytes_written
        ) * 1e-9
        return EnergyReport(base_j=base_j, cpu_j=cpu_j, dram_j=dram_j, flash_j=flash_j)
