"""AdaptiveComp: size-adaptive compression (Section 4.3).

Maps hotness levels to compression chunk sizes and gathers multi-page
cold groups.  The policy is deliberately tiny — the power comes from the
separation HotnessOrg provides:

- hot data -> SmallSize chunks: fastest decompression, paid on the
  relaunch critical path;
- warm data -> MediumSize chunks: still sub-page, cheap execution-time
  faults;
- cold data -> LargeSize multi-page chunks: best ratio; the whole-chunk
  decompression penalty is acceptable because cold data is rarely read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..mem.organizer import HotWarmColdOrganizer
from ..mem.page import Hotness, Page
from .config import AriadneConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheme import SwapScheme


def chunk_size_for(level: Hotness, config: AriadneConfig) -> int:
    """Compression chunk size AdaptiveComp uses for ``level`` data."""
    if level is Hotness.HOT:
        return config.small_size
    if level is Hotness.WARM:
        return config.medium_size
    return config.large_size


def gather_cold_group(
    organizer: HotWarmColdOrganizer,
    scheme: "SwapScheme",
    first: Page,
    group_pages: int,
) -> list[Page]:
    """Collect up to ``group_pages`` cold victims for one LargeSize chunk.

    ``first`` has already been detached; the rest are pulled from the
    same app's cold list in LRU order (allocation order for untouched
    pages), which keeps a chunk's pages adjacent — the layout PreDecomp's
    next-sector prediction and the paper's Insight 3 rely on.  Detaching
    goes through the scheme so the eviction-epoch layer sees every page
    that leaves DRAM.
    """
    cold = organizer.cold
    pop_run = getattr(cold, "pop_lru_run", None)
    if pop_run is not None:
        # Columnar core: one walk pops the whole group; the batched
        # detach leaves the epoch/stamp state exactly where the
        # per-page walk would (see ``_detach_pages``).
        rest = pop_run(group_pages - 1)
        organizer.list_operations += len(rest)
        scheme._detach_pages(rest)
        return [first, *rest]
    group = [first]
    while len(group) < group_pages and len(organizer.cold) > 0:
        page = organizer.cold.pop_lru()
        organizer.list_operations += 1
        scheme._detach_page(page)
        group.append(page)
    return group
