"""ZSWAP: compressed DRAM pool with batched flash writeback and
slot-locality readahead.

The production Linux design point for many-idle-app workloads: pages
compress into the zpool exactly as under ZRAM, but an LRU-driven
shrinker migrates the coldest compressed entries to the flash swap area
instead of deleting data when the pool fills.  Three kernel mechanics
are modeled faithfully (see PAPERS.md, "Revisiting Swapping in
User-space with Lightweight Threading"):

- **Batched reclaim** — one shrinker pass writes back up to
  ``swap_cluster_max`` (the kernel's ``SWAP_CLUSTER_MAX``) of the
  oldest compressed chunks as a single batch, allocated to contiguous
  swap slots and submitted as one sequential command train
  (:meth:`~repro.flash.swaparea.FlashSwapArea.store_batch`).
- **Slot-locality readahead** — a fault from flash speculatively
  decompresses the other live slots in its aligned ``2**page_cluster``
  window of the *same writeback batch* (``/proc/sys/vm/page-cluster``
  semantics), charged one sequential device read.  Readahead
  decompressions land in a FIFO staging buffer; an app touch claims
  them (hit), aging out unused recompresses them (wasted work).
- **Multi-device round-robin** — with ``n_devices > 1`` equal-priority
  swap devices, successive batches stripe across devices, as the
  kernel does for same-priority swap areas.

Writeback rides the PR-6 retry/degradation hooks: the batch store goes
through :meth:`SwapScheme._flash_store_with_retry` (one fault-injection
decision per batch — ``write_many`` is one command train), corrupted
readahead neighbors are dropped through
:meth:`SwapScheme._drop_unreadable_chunk`, and an unrecoverable
speculative read simply aborts the readahead (the chunks stay safely in
flash for the demand path to retry with its own budget).
"""

from __future__ import annotations

from ..errors import FlashFullError, PermanentFlashError, TransientFlashError
from ..mem.columnar import make_two_list_organizer
from ..mem.organizer import DataOrganizer
from ..mem.page import Hotness, Page, PageLocation
from ..metrics import APP, KSWAPD, ZSWAPD, AccessBatchSummary, LatencyBreakdown
from ..units import PAGE_SIZE
from .config import ZswapConfig
from .context import SchemeContext
from .predecomp import StagingBuffer
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk


class ZswapScheme(SwapScheme):
    """Compressed DRAM pool that writes cold entries back to flash."""

    name = "ZSWAP"
    uses_zpool = True

    def __init__(
        self, ctx: SchemeContext, config: ZswapConfig | None = None
    ) -> None:
        super().__init__(ctx)
        self.config = config if config is not None else ZswapConfig()
        self.name = self.config.label
        self.staging = StagingBuffer(self.config.staging_pages)
        #: Writeback-batch records for slot-locality readahead:
        #: batch id -> (first slot id, chunks in slot order).  Member
        #: chunks leave :attr:`_batch_of` as they fault in, read ahead,
        #: or drop; a batch retires once no live member remains.
        self._batches: dict[int, tuple[int, list[StoredChunk]]] = {}
        #: chunk_id -> batch id, for every chunk currently in flash.
        self._batch_of: dict[int, int] = {}
        self._next_batch = 0
        #: Round-robin cursor over the swap area's devices.
        self._next_device = 0

    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        return make_two_list_organizer(uid)

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Batched replay: the generic epoch-gated path stays exact.

        Staged (readahead) pages are non-resident, so an app with any
        staged page can never be epoch-verified fully resident — its
        batches take the probing path, where :meth:`_staging_hit` runs
        per page exactly as the reference ``access()`` loop would.
        """
        return self._access_batch_runs(pages, thread)

    # ------------------------------------------------------------- eviction

    def _evict(self, page: Page, thread: str) -> int:
        """Compress one LRU victim; then shrink the pool to threshold."""
        _, stall = self._compress_and_store(
            [page],
            chunk_size=PAGE_SIZE,
            hotness=Hotness.COLD,  # zswap's LRU has no hotness notion
            thread=thread,
        )
        threshold = self.config.pool_threshold * self.ctx.zpool.capacity_bytes
        while self.ctx.zpool.used_bytes > threshold:
            if not self._writeback_batch(thread):
                break
        return stall

    def _relieve_zpool_lossless(self) -> bool:
        """zpool overflow: write a batch back instead of dropping data."""
        return self._writeback_batch(KSWAPD)

    # ------------------------------------------------------------ writeback

    def _writeback_batch(self, thread: str) -> bool:
        """One shrinker pass: the oldest compressed entries go to flash.

        Up to ``swap_cluster_max`` in-zpool chunks (compression order —
        the pool's LRU) move as one batch into contiguous slots on the
        round-robin device.  Returns whether any progress was made.
        """
        ctx = self.ctx
        victims: list[StoredChunk] = []
        for chunk in self._chunks.values():
            if chunk.in_zpool:
                victims.append(chunk)
                if len(victims) >= self.config.swap_cluster_max:
                    break
        if not victims:
            return False
        # Trim the batch to what the swap area can hold; capacity
        # exhaustion is policy, not a fault.
        free = ctx.flash_swap.free_bytes
        total = 0
        fit: list[StoredChunk] = []
        for chunk in victims:
            if total + chunk.stored_bytes > free:
                break
            total += chunk.stored_bytes
            fit.append(chunk)
        if not fit:
            ctx.counters.incr("swap_area_full")
            return False
        victims = fit
        device_index = self._next_device
        sizes = [chunk.stored_bytes for chunk in victims]
        try:
            stored = self._flash_store_with_retry(
                total,
                sequential=True,
                thread=thread,
                store=lambda: ctx.flash_swap.store_batch(
                    sizes, device_index=device_index
                ),
            )
        except FlashFullError:
            ctx.counters.incr("swap_area_full")
            return False
        if stored is None:
            # Unrecoverable injected write fault: every chunk stays
            # safely in the zpool (store_batch allocates nothing before
            # the device write) and the shrinker reports no progress.
            ctx.counters.incr("fault_writeback_deferred")
            return False
        slots, _write_ns, _backoff_ns = stored
        self._next_device = (device_index + 1) % len(ctx.flash_swap.devices)
        batch_id = self._next_batch
        self._next_batch += 1
        uids = set()
        for chunk, slot in zip(victims, slots):
            ctx.zpool.free(chunk.zpool_handle)
            self._by_zpool_handle.pop(chunk.zpool_handle, None)
            chunk.zpool_handle = None
            chunk.sector = None
            chunk.location = PageLocation.FLASH
            chunk.flash_slot = slot.slot_id
            for page in chunk.pages:
                page.location = PageLocation.FLASH
            self._batch_of[chunk.chunk_id] = batch_id
            uids.add(chunk.uid)
        self._batches[batch_id] = (slots[0].slot_id, list(victims))
        # One submission per batch: amortizing the submit cost is the
        # point of SWAP_CLUSTER_MAX (smaller clusters pay it oftener).
        submit_ns = ctx.platform.swap_submit_ns * ctx.platform.scale
        self._charge(thread, "writeback", submit_ns)
        for uid in sorted(uids):
            self._bump_app_epoch(uid)
        counts = ctx.counters.mutable()
        counts["chunks_written_back"] += len(victims)
        counts["pages_written_back"] += sum(c.page_count for c in victims)
        counts["zswap_writeback_batches"] += 1
        counts["zswap_pages_written_back"] += sum(
            c.page_count for c in victims
        )
        if len(victims) > counts["zswap_batch_pages_max"]:
            counts["zswap_batch_pages_max"] = len(victims)
        return True

    def _unregister_chunk(self, chunk: StoredChunk) -> None:
        """Every chunk-removal path also retires its batch membership."""
        batch_id = self._batch_of.pop(chunk.chunk_id, None)
        super()._unregister_chunk(chunk)
        if batch_id is not None:
            self._retire_batch(batch_id)

    def _retire_batch(self, batch_id: int) -> None:
        """Drop a batch record once no live member remains."""
        entry = self._batches.get(batch_id)
        if entry is None:
            return
        _first, members = entry
        if not any(
            self._batch_of.get(chunk.chunk_id) == batch_id
            for chunk in members
        ):
            del self._batches[batch_id]

    # ------------------------------------------------------------- fault-in

    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        source = chunk.location
        batch_id = self._batch_of.get(chunk.chunk_id)
        faulted_slot = chunk.flash_slot
        decomp_stall, breakdown = self._decompress_chunk(chunk, page, thread)
        admit_stall, admit_bd = self._admit_pages(chunk, page, thread)
        breakdown.add(admit_bd)
        if batch_id is not None and self.config.page_cluster > 0:
            self._readahead(batch_id, faulted_slot)
        return AccessResult(
            stall_ns=decomp_stall + admit_stall,
            source=source,
            breakdown=breakdown,
        )

    def _readahead(self, batch_id: int, faulted_slot: int) -> None:
        """Speculatively decompress the faulted slot's batch neighbors.

        Linux ``page-cluster`` semantics: the window is the aligned
        ``2**page_cluster`` slot range containing the fault (``start =
        pos & ~(window-1)``), restricted to the batch that wrote the
        slots — only those are contiguous on the device.  The window's
        surviving slots are read as one sequential command train and
        decompressed in the background (CPU charged to ``zswapd``, no
        app stall), landing in the staging buffer.
        """
        entry = self._batches.get(batch_id)
        if entry is None:
            return
        first_slot, members = entry
        window = self.config.readahead_window
        pos = faulted_slot - first_slot
        start = pos & ~(window - 1)
        neighbors: list[StoredChunk] = []
        for idx in range(start, min(start + window, len(members))):
            if idx == pos:
                continue  # the faulted chunk itself (demand path)
            chunk = members[idx]
            # Members already faulted in, read ahead, dropped, or torn
            # down left _batch_of; skip them.
            if self._batch_of.get(chunk.chunk_id) != batch_id:
                continue
            if not chunk.in_flash or chunk.flash_slot is None:
                continue
            neighbors.append(chunk)
        if not neighbors:
            return
        loaded = self._load_run_with_retry(
            [chunk.flash_slot for chunk in neighbors], ZSWAPD
        )
        if loaded is None:
            # Unrecoverable injected read fault on a *speculative* read:
            # abort quietly.  Nothing moved — the chunks stay in flash
            # and a later demand fault retries with its own budget.
            self.ctx.counters.incr("zswap_readahead_aborted")
            return
        _slots, _read_ns = loaded
        ctx = self.ctx
        platform = ctx.platform
        ctx.counters.incr("flash_reads")
        self._charge(ZSWAPD, "flash_read", platform.swap_submit_ns * platform.scale)
        for chunk in neighbors:
            if chunk.corrupted:
                # The digest check catches the bit-flip here, before the
                # corrupt payload can enter the staging buffer; the drop
                # frees the slot and marks the pages lost.
                self._drop_unreadable_chunk(chunk, "corrupt")
                continue
            ctx.flash_swap.free(chunk.flash_slot)
            span = PAGE_SIZE * chunk.page_count
            decomp_ns = platform.scale * ctx.latency.decompress_ns(
                chunk.codec_name, span, chunk.chunk_size
            )
            self._charge(ZSWAPD, "decompress", decomp_ns)
            counts = ctx.counters.mutable()
            counts["zswap_readahead_reads"] += 1
            counts["pages_decompressed"] += chunk.page_count
            counts["decompress_ops"] += 1
            counts["dram_bytes_moved"] += 2 * span * platform.scale
            self._unregister_chunk(chunk)
            for page in chunk.pages:
                for old in self.staging.stage(page):
                    self._recompress_staged(old)

    def _load_run_with_retry(self, slot_ids: list[int], thread: str):
        """Read a slot run, absorbing injected flash faults.

        Returns ``(slots, read_ns)`` or ``None`` when the read
        unrecoverably failed.  Mirrors :meth:`_flash_load_with_retry`'s
        transient-retry accounting, but never drops data: the read is
        speculative, so failure degrades to "no readahead" rather than
        to lost pages.  Without a fault plan this is exactly one
        ``flash_swap.load_run``.
        """
        ctx = self.ctx
        plan = ctx.fault_plan
        if plan is None:
            return ctx.flash_swap.load_run(slot_ids)
        counters = ctx.counters
        failed = 0
        while True:
            try:
                return_value = ctx.flash_swap.load_run(slot_ids)
            except TransientFlashError:
                counters.incr("fault_flash_read_transient")
                failed += 1
                if failed > plan.max_retries:
                    counters.incr("fault_transient_abandoned", failed)
                    return None
                self._charge(thread, "fault_retry", plan.backoff_ns(failed))
                counters.incr("fault_io_retries")
            except PermanentFlashError:
                counters.incr("fault_flash_read_permanent")
                if failed:
                    counters.incr("fault_transient_abandoned", failed)
                return None
            else:
                if failed:
                    counters.incr("fault_transient_recovered", failed)
                return return_value

    # -------------------------------------------------------------- staging

    def _staging_hit(self, page: Page) -> AccessResult | None:
        staged = self.staging.claim(page.pfn)
        if staged is None:
            return None
        platform = self.ctx.platform
        # The page leaves the staging buffer and becomes ordinary
        # resident memory: it needs a DRAM page like any fault, but the
        # decompression already happened off-path (the readahead win).
        stall = self._make_room(1, direct=True, thread=KSWAPD)
        self.ctx.dram.add_page(staged)
        self._note_pages_resident(page.uid, 1)
        organizer = self.organizer(page.uid)
        organizer.add_page(staged)
        organizer.on_access(staged, self.ctx.clock.now_ns)
        hit_ns = platform.staging_hit_ns * platform.scale
        self._charge(KSWAPD, "staging_hit", hit_ns)
        stall += self._stall(hit_ns)
        self.ctx.counters.incr("staging_hits")
        self.ctx.counters.incr("zswap_readahead_hits")
        return AccessResult(
            stall_ns=stall,
            source=PageLocation.STAGING,
            breakdown=LatencyBreakdown(other_ns=stall),
        )

    def _recompress_staged(self, page: Page) -> None:
        """A staged page aged out unclaimed: the readahead was wasted.

        The page only ever lived in the staging buffer, so there is no
        DRAM residency to release — just the recompression back into
        the zpool.
        """
        self.ctx.counters.incr("zswap_readahead_wasted")
        self._compress_and_store(
            [page],
            chunk_size=PAGE_SIZE,
            hotness=Hotness.COLD,
            thread=ZSWAPD,
        )

    def _purge_staged(self, uid: int) -> int:
        """Kill teardown: drop ``uid``'s staged readahead pages.

        Staged pages are non-resident, so moving them to
        :attr:`_lost_pfns` keeps the per-app non-resident ground truth
        balanced; they bypass ``claim()`` so the buffer's hit/miss
        statistics stay honest.
        """
        purged = 0
        for pfn, page in list(self.staging._pages.items()):
            if page.uid != uid:
                continue
            del self.staging._pages[pfn]
            self._lost_pfns[pfn] = uid
            purged += 1
        return purged

    def app_has_reclaimable(self, uid: int) -> bool:
        if super().app_has_reclaimable(uid):
            return True
        return any(page.uid == uid for page in self.staging._pages.values())
