"""Compressed-chunk bookkeeping shared by all swap schemes.

A :class:`StoredChunk` records one compression operation's output: which
pages it covers, at what chunk granularity, how many bytes it stores, and
where it currently lives (zpool or flash).

Granularity semantics (one simulated page stands for ``scale`` real
pages):

- ``chunk_size <= PAGE_SIZE``: the chunk covers exactly one page, whose
  4 KB were compressed as ``PAGE_SIZE / chunk_size`` independent
  sub-chunks.  Decompressing the page touches only its own sub-chunks —
  the fast path AdaptiveComp buys for hot/warm data.
- ``chunk_size > PAGE_SIZE``: the chunk groups ``chunk_size / PAGE_SIZE``
  pages whose real pages interleave across the underlying real chunks, so
  decompressing *any* member materializes *all* members (the Figure 9(b)
  worst case: whole-chunk decompression, wasted work if the neighbours
  were not wanted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PageStateError
from ..mem.page import Hotness, Page, PageLocation
from ..units import PAGE_SIZE


@dataclass
class StoredChunk:
    """One compressed chunk and its placement."""

    chunk_id: int
    uid: int
    pages: tuple[Page, ...]
    chunk_size: int
    codec_name: str
    stored_bytes: int
    hotness_at_compress: Hotness
    location: PageLocation = PageLocation.ZPOOL
    zpool_handle: int | None = None
    sector: int | None = None
    flash_slot: int | None = None
    #: Ground-truth hotness per page at compression time (Figure 4 data).
    true_hotness_log: tuple[Hotness, ...] = field(default_factory=tuple)
    #: Set by an injected bit-flip (:mod:`repro.faults`): the stored
    #: payload no longer matches its content digest.  Detected when the
    #: chunk is next read — the digest check fails and the scheme drops
    #: the chunk instead of delivering corrupt data.
    corrupted: bool = False

    def __post_init__(self) -> None:
        if not self.pages:
            raise PageStateError(f"chunk {self.chunk_id} covers no pages")
        if self.stored_bytes <= 0:
            raise PageStateError(
                f"chunk {self.chunk_id} has non-positive stored size "
                f"{self.stored_bytes}"
            )
        expected = max(1, self.chunk_size // PAGE_SIZE)
        if self.chunk_size > PAGE_SIZE and len(self.pages) > expected:
            raise PageStateError(
                f"chunk {self.chunk_id} groups {len(self.pages)} pages but "
                f"chunk_size {self.chunk_size} allows at most {expected}"
            )
        if self.chunk_size <= PAGE_SIZE and len(self.pages) != 1:
            raise PageStateError(
                f"sub-page chunk {self.chunk_id} must cover exactly one page"
            )

    @property
    def original_bytes(self) -> int:
        """Uncompressed size of the covered pages."""
        return len(self.pages) * PAGE_SIZE

    @property
    def ratio(self) -> float:
        """Compression ratio achieved by this chunk."""
        return self.original_bytes / self.stored_bytes

    @property
    def page_count(self) -> int:
        """Number of simulated pages covered."""
        return len(self.pages)

    @property
    def in_zpool(self) -> bool:
        """Whether the chunk currently sits in the zpool."""
        return self.location is PageLocation.ZPOOL

    @property
    def in_flash(self) -> bool:
        """Whether the chunk was written back to flash."""
        return self.location is PageLocation.FLASH
