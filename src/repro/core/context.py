"""Shared simulation context handed to every scheme.

Bundles the substrates (clock, DRAM, zpool, flash, codec, latency model,
accounting) so schemes receive one object and experiments construct one
line at a time.  :func:`build_context` is the canonical factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimClock
from ..compression import Compressor, LatencyModel, get_compressor
from ..compression.chunking import SizeCache
from ..flash import FlashDevice, FlashSwapArea
from ..mem import MainMemory
from ..metrics import Counters, CpuAccount
from ..units import PAGE_SIZE
from ..zpool import Zpool
from .config import PlatformConfig, pixel7_platform


@dataclass
class SchemeContext:
    """Everything a swap scheme needs to operate."""

    platform: PlatformConfig
    clock: SimClock
    dram: MainMemory
    zpool: Zpool
    flash_device: FlashDevice
    flash_swap: FlashSwapArea
    codec: Compressor
    latency: LatencyModel
    sizes: SizeCache
    cpu: CpuAccount = field(default_factory=CpuAccount)
    counters: Counters = field(default_factory=Counters)
    #: Optional :class:`repro.faults.FaultPlan` — install through
    #: :func:`repro.faults.install_fault_plan` so the flash device sees
    #: the same plan.  ``None`` (the default) keeps every path exactly
    #: fault-free.
    fault_plan: object | None = None

    def compressed_size(self, payload: bytes, chunk_size: int) -> int:
        """Measured compressed size of ``payload`` at ``chunk_size``.

        Incompressible chunks are stored raw plus a small header, exactly
        as zram does, so stored size never exceeds original size by more
        than the header.
        """
        measured = self.sizes.compressed_size(self.codec, payload, chunk_size)
        raw_limit = len(payload) + 16
        return min(measured, raw_limit)

    def compressed_size_of_pages(self, pages, chunk_size: int) -> int:
        """:meth:`compressed_size` of the pages' concatenated payloads.

        Identical value by construction — page payloads are always
        ``PAGE_SIZE`` bytes, so the raw-store clamp is computable
        without building the concatenation, and the size cache's
        page-run front door skips the build entirely on repeat groups.
        """
        measured = self.sizes.compressed_size_of_pages(
            self.codec, pages, chunk_size
        )
        raw_limit = PAGE_SIZE * len(pages) + 16
        return min(measured, raw_limit)


def build_context(
    platform: PlatformConfig | None = None,
    codec_name: str = "lzo",
    latency: LatencyModel | None = None,
    sizes: SizeCache | None = None,
    n_flash_devices: int = 1,
) -> SchemeContext:
    """Construct a fresh context (new clock, empty pools, zero counters).

    Args:
        platform: Platform constants; defaults to the Pixel 7 preset.
        codec_name: Which codec the swap path uses (the paper evaluates
            LZO, the Pixel 7 default; LZ4 is also available).
        latency: Override latency model (tests inject simplified ones).
        sizes: Shared size cache (e.g. the experiment harness's
            disk-backed cache); a private in-memory cache by default.
        n_flash_devices: Equal-priority swap devices behind the swap
            area (zswap's round-robin batch striping); ``flash_device``
            stays the primary (device 0) either way.
    """
    config = platform if platform is not None else pixel7_platform()
    device = FlashDevice()
    return SchemeContext(
        platform=config,
        clock=SimClock(),
        dram=MainMemory(config.dram_bytes),
        zpool=Zpool(config.zpool_bytes),
        flash_device=device,
        flash_swap=FlashSwapArea(
            device,
            config.swap_bytes,
            byte_scale=config.scale,
            n_devices=n_flash_devices,
        ),
        codec=get_compressor(codec_name),
        latency=latency if latency is not None else LatencyModel(),
        sizes=sizes if sizes is not None else SizeCache(),
    )
