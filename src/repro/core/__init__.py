"""The paper's contribution and its baselines.

- :class:`ZramScheme` — the state-of-the-art baseline: LRU victim order,
  one-page (4 KB) compression chunks, on-demand decompression only.
- :class:`FlashSwapScheme` — the SWAP baseline (uncompressed pages to
  flash).
- :class:`DramScheme` — the optimistic no-swap lower bound.
- :class:`ZswapScheme` — the production Linux design point: compressed
  DRAM pool with batched LRU writeback to flash and slot-locality
  readahead.
- :class:`AriadneScheme` — HotnessOrg + AdaptiveComp + PreDecomp (+
  compressed cold writeback to flash).

All schemes implement :class:`SwapScheme` and run against the same
substrates (DRAM model, zpool, flash, codecs, latency model), so every
comparison in the experiment suite is apples-to-apples.
"""

from .ariadne import AriadneScheme
from .config import (
    AriadneConfig,
    PlatformConfig,
    PressureConfig,
    RelaunchScenario,
    ZswapConfig,
    pixel7_platform,
)
from .context import SchemeContext, build_context
from .dram_scheme import DramScheme
from .predecomp import StagingBuffer
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk
from .swap_scheme import FlashSwapScheme
from .zram import ZramScheme
from .zswap import ZswapScheme

__all__ = [
    "AccessResult",
    "AriadneConfig",
    "AriadneScheme",
    "DramScheme",
    "FlashSwapScheme",
    "PlatformConfig",
    "PressureConfig",
    "RelaunchScenario",
    "SchemeContext",
    "StagingBuffer",
    "StoredChunk",
    "SwapScheme",
    "ZramScheme",
    "ZswapConfig",
    "ZswapScheme",
    "build_context",
    "pixel7_platform",
]
