"""Swap-scheme interface and shared machinery.

All four schemes (DRAM / SWAP / ZRAM / Ariadne) share the same skeleton:

- resident pages are tracked per app by a :class:`DataOrganizer`;
- apps are ordered by recency (the kernel's per-memcg reclaim order —
  least-recently-switched-to apps are reclaimed from first);
- memory accounting follows zram's reality: the zpool lives *in* DRAM,
  so ``free = dram_budget - resident - zpool_used``.  Compressing a page
  frees ``4 KB - compressed_size``; writing a compressed chunk back to
  flash frees its full zpool footprint;
- when an allocation or fault would push free memory below the low
  watermark, reclaim is *direct* (synchronous — its latency lands on the
  faulting path: the paper's "on-demand compression"); between events the
  system lets kswapd restore the high watermark in the background
  (CPU time, no stall).

Latency/CPU scaling: one simulated page stands for ``platform.scale``
real pages, so every per-page charge is multiplied by ``scale``;
critical-path stalls are divided by ``platform.parallelism`` (several
big cores service a relaunch's swap-in storm concurrently) while CPU
*time* is charged undivided.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field

from ..audit import auditor_from_env
from ..errors import (
    ChunkLostError,
    CorruptDataError,
    MemoryPressureError,
    PageStateError,
    PermanentFlashError,
    TransientFlashError,
)
from ..mem.columnar import ColumnarOrganizerMixin
from ..mem.organizer import DataOrganizer
from ..mem.page import Hotness, Page, PageLocation
from ..metrics import (
    APP,
    EMPTY_BREAKDOWN,
    KSWAPD,
    AccessBatchSummary,
    AccessRun,
    LatencyBreakdown,
)
from ..units import PAGE_SIZE
from .context import SchemeContext
from .stored import StoredChunk


@dataclass
class AccessResult:
    """Outcome of one page access."""

    stall_ns: int
    source: PageLocation
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)


#: Shared result for zero-stall DRAM hits: every field is identical for
#: every hit and callers only read access results, so one instance
#: serves the most frequent operation in the simulator allocation-free.
_DRAM_HIT = AccessResult(
    stall_ns=0, source=PageLocation.DRAM, breakdown=EMPTY_BREAKDOWN
)


class SwapScheme(ABC):
    """Base class for all compressed/flash swap schemes."""

    #: Scheme identifier used in reports ("ZRAM", "SWAP", "DRAM", config label).
    name: str = "abstract"
    #: Whether this scheme keeps a zpool in DRAM.
    uses_zpool: bool = True
    #: Whether free DRAM depends on pool occupancy at all (the DRAM
    #: baseline's does not, so it skips the hook subscriptions).
    tracks_free_dram: bool = True

    def __init__(self, ctx: SchemeContext) -> None:
        self.ctx = ctx
        #: Running free-DRAM counter: maintained by the byte-delta hooks
        #: below, so a watermark probe is an integer compare, never a
        #: recompute.  ``tests/test_invariants.py`` holds it against the
        #: from-scratch :meth:`audit_free_dram_bytes` after randomized
        #: admit/evict/writeback sequences.
        self._free_dram_bytes = ctx.platform.dram_bytes - ctx.dram.used_bytes
        if self.tracks_free_dram:
            if self.uses_zpool:
                self._free_dram_bytes -= ctx.zpool.used_bytes
                ctx.zpool.subscribe(self._on_used_bytes_delta)
            ctx.dram.subscribe(self._on_used_bytes_delta)
        #: Accounting-layer observability (profiling, not simulation
        #: state): how often the watermark was probed and how often the
        #: occupancy hooks fired.
        self.watermark_probes = 0
        self.accounting_updates = 0
        #: Eviction epoch: a monotone counter bumped whenever residency
        #: can shrink (a page leaves DRAM) and, conservatively, on
        #: writeback and purge.  Verification stamps (per app and per
        #: memoized replay run) are compared against the *owning app's*
        #: last bump, so one app's reclaim traffic does not invalidate
        #: another app's verified-resident state — see
        #: :meth:`_access_batch_runs`.
        self.eviction_epoch = 0
        #: Per app: the epoch stamped at its last residency-affecting
        #: event (a page of this app left DRAM; a chunk of this app was
        #: purged or written back).  A verification stamp at least this
        #: new is still valid: epochs only advance at those events, so
        #: nothing of this app's left DRAM since the verification.
        self._app_eviction_epoch: dict[int, int] = {}
        #: Per app: the epoch at which the app was last *verified* fully
        #: resident (every one of its pages in DRAM).
        self._resident_verified_epoch: dict[int, int] = {}
        #: Per app: how many of its pages are currently *not* resident
        #: (stored + staged + lost).  Maintained exactly at every
        #: residency transition; reaching zero re-verifies the app at
        #: the current epoch.  ``tests/test_invariants.py`` holds it
        #: against a ground-truth recompute under randomized sequences.
        self._nonresident_pages: dict[int, int] = {}
        #: Batch-replay observability (profiling, not simulation state):
        #: batches served entirely by the epoch fast path, and per-page
        #: residency probes the run-splitting fallback performed.
        self.epoch_skips = 0
        self.residency_probes = 0
        self._organizers: dict[int, DataOrganizer] = {}
        #: Recency order over apps: first key is least recently used.
        self._app_lru: OrderedDict[int, None] = OrderedDict()
        self._stored_by_pfn: dict[int, StoredChunk] = {}
        self._chunks: OrderedDict[int, StoredChunk] = OrderedDict()
        self._by_zpool_handle: dict[int, StoredChunk] = {}
        self._chunk_seq = 0
        self._foreground_uid: int | None = None
        #: Lost (dropped) pages: pfn -> owning uid.  The uid lets the
        #: runtime auditor recompute per-app non-resident ground truth
        #: without a trace; membership tests read like the old set.
        self._lost_pfns: dict[int, int] = {}
        #: Opt-in runtime invariant auditor (``REPRO_AUDIT=1``); ``None``
        #: in normal runs, so the only steady-state cost is one ``is
        #: None`` test per kswapd wakeup.
        self._auditor = auditor_from_env()
        #: Memory-pressure lifecycle plan (:mod:`repro.lmk`); ``None``
        #: keeps every pressure hook a single ``is None`` test, so
        #: pressure-off runs stay bit-identical.
        self._pressure = None
        #: Page runs in compression order, expanded lazily by
        #: :attr:`compression_log` (the Figure 4 measurement).  Storing
        #: the chunk's page tuple is O(1) per eviction; the per-page
        #: ``(uid, true_hotness)`` expansion is paid once per report
        #: read, and ``true_hotness`` is immutable ground truth, so the
        #: deferred read equals the eager log entry for entry.
        self._compression_log_runs: list[tuple[Page, ...]] = []
        #: (uid, zpool sector) per zpool fault in access order (the
        #: Table 3 locality measurement).
        self.sector_access_log: list[tuple[int, int]] = []

    # ------------------------------------------------------------------ setup

    @abstractmethod
    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        """Create this scheme's per-app resident-page organizer."""

    def register_app(self, uid: int, hot_seed_limit: int = 0) -> None:
        """Introduce an application to the scheme."""
        if uid in self._organizers:
            raise PageStateError(f"app {uid} already registered")
        self._organizers[uid] = self._make_organizer(uid, hot_seed_limit)
        self._app_lru[uid] = None
        # A freshly registered app owns no pages, so it is (vacuously)
        # fully resident at the current epoch; new allocations are born
        # resident and keep the verification valid until one of *its*
        # pages leaves DRAM and stamps a newer per-app epoch.
        self._nonresident_pages[uid] = 0
        self._app_eviction_epoch[uid] = 0
        self._resident_verified_epoch[uid] = self.eviction_epoch

    def organizer(self, uid: int) -> DataOrganizer:
        """The per-app organizer (raises for unknown apps)."""
        try:
            return self._organizers[uid]
        except KeyError:
            raise PageStateError(f"app {uid} is not registered") from None

    # -------------------------------------------------------------- accounting

    def _on_used_bytes_delta(self, delta: int) -> None:
        """Occupancy hook: DRAM/zpool usage moved by ``delta`` bytes."""
        self._free_dram_bytes -= delta
        self.accounting_updates += 1

    def free_dram_bytes(self) -> int:
        """Free DRAM under the shared resident+zpool budget (O(1)).

        The running counter is maintained by the occupancy hooks, so
        this never recomputes from the pools — reclaim loops probe the
        watermark at integer-compare cost.
        """
        self.watermark_probes += 1
        return self._free_dram_bytes

    def audit_free_dram_bytes(self) -> int:
        """From-scratch recompute of :meth:`free_dram_bytes`.

        Rebuilds the figure from the pools' own audited occupancy —
        the invariant tests assert the running counter equals this
        after arbitrary operation sequences.
        """
        used = self.ctx.dram.audit_used_bytes()
        if self.uses_zpool:
            used += self.ctx.zpool.audit_used_bytes()
        return self.ctx.platform.dram_bytes - used

    # ------------------------------------------------------- residency epochs

    def _detach_page(self, page: Page) -> None:
        """Take ``page`` out of DRAM and advance the eviction epoch.

        Every path on which a resident page leaves DRAM funnels through
        here so the epoch layer can never miss a residency loss: the
        owner's per-app stamp moves past every verification made so
        far, and its non-resident count grows so the app can only
        re-verify once every page is back.
        """
        self.ctx.dram.remove_page(page)
        self._nonresident_pages[page.uid] += 1
        self.eviction_epoch += 1
        self._app_eviction_epoch[page.uid] = self.eviction_epoch

    def _detach_pages(self, pages: list[Page]) -> None:
        """Batched :meth:`_detach_page`: same final state, one DRAM call.

        The epoch/stamp bookkeeping still runs per page (each uid's
        stamp lands on the epoch of its last detached page, exactly as
        the per-page walk leaves it); nothing probes residency between
        the individual detaches, so the single summed DRAM delta is
        unobservable.
        """
        if not pages:
            return
        self.ctx.dram.remove_pages(pages)
        nonresident = self._nonresident_pages
        app_epoch = self._app_eviction_epoch
        epoch = self.eviction_epoch
        for page in pages:
            uid = page.uid
            nonresident[uid] += 1
            epoch += 1
            app_epoch[uid] = epoch
        self.eviction_epoch = epoch

    def _bump_app_epoch(self, uid: int) -> None:
        """Conservatively invalidate ``uid``'s verifications (writeback,
        purge: no residency changed, but the epoch contract treats every
        residency-adjacent event as an invalidation — it only costs one
        cheap re-verification)."""
        self.eviction_epoch += 1
        self._app_eviction_epoch[uid] = self.eviction_epoch

    def _note_pages_resident(self, uid: int, count: int) -> None:
        """Record that ``count`` previously non-resident pages of ``uid``
        became resident again; at zero outstanding the app is fully
        resident and re-verifies at the current epoch."""
        remaining = self._nonresident_pages[uid] - count
        self._nonresident_pages[uid] = remaining
        if remaining == 0:
            self._resident_verified_epoch[uid] = self.eviction_epoch

    def _charge(self, thread: str, activity: str, ns: int) -> None:
        self.ctx.cpu.charge(thread, activity, ns)

    def _stall(self, ns: int) -> int:
        """Convert modeled work into critical-path stall time."""
        return max(0, ns // self.ctx.platform.parallelism)

    # ------------------------------------------------------------ app switching

    def note_app_switch(self, uid: int) -> None:
        """Record that the user switched to app ``uid`` (app-level LRU)."""
        if uid not in self._app_lru:
            raise PageStateError(f"app {uid} is not registered")
        self._app_lru.move_to_end(uid)
        self._foreground_uid = uid

    def begin_relaunch(self, uid: int) -> None:
        """Hook: a measured relaunch of ``uid`` is starting."""
        self.note_app_switch(uid)

    def end_relaunch(self, uid: int) -> None:
        """Hook: the measured relaunch of ``uid`` finished."""

    def end_launch(self, uid: int) -> None:
        """Hook: app ``uid``'s initial launch window has closed."""

    # -------------------------------------------------------------- allocation

    def on_pages_created(self, uid: int, pages: list[Page]) -> None:
        """An app allocated new anonymous pages (launch or execution).

        Allocation itself is not a measured path, so reclaim here is
        treated as background work (CPU charged, no stall returned).

        Batch admission, number-invariant by construction: when the
        whole batch fits above the high watermark, one check admits
        everything — the per-page reference would have evicted nothing
        either (free only shrinks by one page per admission, so every
        intermediate check passes too).  Under pressure the exact
        per-page reference walk runs, because eviction-victim selection
        may legitimately reach into this very batch (pages admitted a
        step earlier become candidates — e.g. the foreground app as the
        last-resort pool, or its cold list under Ariadne's global
        cold-first order), which no pre-batched walk can reproduce.
        """
        if not pages:
            return
        organizer = self.organizer(uid)
        ctx = self.ctx
        target_free = len(pages) * PAGE_SIZE + ctx.platform.high_watermark_bytes
        if self.free_dram_bytes() >= target_free:
            ctx.dram.add_pages(pages)
            organizer.add_page_run(pages)
        else:
            # The per-page reference walk admits pages while
            # free >= PAGE_SIZE + high_watermark and calls
            # _make_room(1) exactly when the check fails.  Admissions
            # between two reclaim points are pure state writes (no
            # reads the walk branches on), so admitting that whole
            # stretch as one batch reproduces the reference decision
            # sequence exactly: the next _make_room observes the same
            # free level at the same batch offset.  After _make_room
            # the reference admits one page unconditionally (it may
            # return with the watermark missed but the allocation
            # fitting), hence the max(fit, 1).
            high_wm = ctx.platform.high_watermark_bytes
            free = self.free_dram_bytes
            make_room = self._make_room
            add_resident_run = ctx.dram.add_pages
            add_to_lists_run = organizer.add_page_run
            i, count = 0, len(pages)
            while i < count:
                fit = (free() - high_wm) // PAGE_SIZE
                if fit <= 0:
                    make_room(1, direct=False, thread=KSWAPD)
                    fit = max((free() - high_wm) // PAGE_SIZE, 1)
                batch = pages[i : i + fit]
                add_resident_run(batch)
                add_to_lists_run(batch)
                i += len(batch)
        self._charge(APP, "list_ops", ctx.platform.list_op_ns * len(pages))

    # ----------------------------------------------------------------- access

    def access(self, page: Page, thread: str = APP) -> AccessResult:
        """Touch ``page``, faulting it in if necessary.

        The resident-hit path is checked first (a page is never both
        resident and staged, so the probe order is free) and kept lean:
        it is the single most frequent operation in any scenario run.
        """
        ctx = self.ctx
        if page.pfn in ctx.dram._resident:
            self._organizers[page.uid].on_access(page, ctx.clock.now_ns)
            ctx.cpu.charge(thread, "list_ops", ctx.platform.list_op_ns)
            return _DRAM_HIT
        staged = self._staging_hit(page)
        if staged is not None:
            return staged
        if page.pfn in self._lost_pfns:
            return self._access_lost(page, thread)
        chunk = self._stored_by_pfn.get(page.pfn)
        if chunk is None:
            raise PageStateError(
                f"page {page.pfn} is neither resident, staged, stored, nor lost"
            )
        try:
            return self._fault_in(page, chunk, thread)
        except (ChunkLostError, CorruptDataError):
            # Graceful degradation: the chunk became unreadable (injected
            # permanent flash error, exhausted retries, or a bit-flip the
            # digest check caught).  Its pages were marked lost when it
            # was dropped, so the access degrades to a counted cold
            # refault instead of crashing the run.
            self.ctx.counters.incr("fault_cold_refaults")
            return self._access_lost(page, thread)

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Touch a known sequence of pages; returns the aggregate summary.

        This default replays the batch one :meth:`access` at a time and
        is correct by construction for any scheme.  Concrete schemes
        override it with :meth:`_access_batch_runs` (or a tighter
        specialization), which must leave *identical* simulator state
        and aggregate numbers — ``tests/test_access_batch.py`` holds the
        two paths against each other.
        """
        summary = AccessBatchSummary()
        add = summary.add_result
        access = self.access
        for page in pages:
            add(access(page, thread))
        return summary

    def _access_batch_runs(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Shared fast batch path: epoch-verified apps skip residency
        probes entirely; otherwise coalesce resident runs, fault singly.

        The epoch layer comes first: an app verified fully resident at
        the current :attr:`eviction_epoch` cannot fault — every one of
        its pages is in DRAM, and epochs advance whenever any page
        leaves DRAM — so its whole uid-segment (in practice the whole
        batch: replays are single-app) is serviced as one resident run
        with zero per-page membership probes.  Equivalence is by
        construction: the probes the fallback would have made were all
        guaranteed hits, and hits never change residency.  The moment
        anything is evicted mid-batch (a fault's direct reclaim), the
        epoch moves and the verification check fails for the rest of
        the batch, forcing re-probe.

        Unverified segments take the exact probing path: a run of
        currently-resident pages is serviced with one shared zero-stall
        outcome (count bumps on the summary), one bulk organizer touch,
        and one CPU charge — exactly the sums the per-page loop
        produces, since hits never change residency, the clock is
        frozen across a replay, and CPU/list accounting is additive.
        Every non-resident page falls back to the exact per-page
        :meth:`access`, because a fault may change the residency of
        *later* batch pages (chunk siblings materialize, staging fills,
        reclaim can evict) — so residency is re-probed from the faulted
        page onward.
        """
        summary = AccessBatchSummary()
        n = len(pages)
        if n == 0:
            return summary
        ctx = self.ctx
        app_epochs = self._app_eviction_epoch
        run_uid = pages.uid if type(pages) is AccessRun else None
        if run_uid is not None:
            app_stamp = app_epochs[run_uid]
            if pages.verified_epoch >= app_stamp:
                # Run-level fast path: the previous replay of this very
                # run ended with every page resident, and no page of
                # this app has left DRAM since — so every page is still
                # resident and the whole batch is one hit run.
                self._organizers[run_uid].on_access_run(
                    pages, ctx.clock.now_ns
                )
                ctx.cpu.charge(
                    thread, "list_ops", ctx.platform.list_op_ns * n
                )
                summary.add_hits(n)
                self.epoch_skips += 1
                return summary
            organizer = self._organizers[run_uid]
            if isinstance(organizer, ColumnarOrganizerMixin):
                # Columnar core: probe residency against the organizer's
                # list_id column (equivalent to the DRAM probe — see
                # leading_resident) and touch resident runs through the
                # handle kernels, skipping per-page work entirely.
                return self._access_batch_runs_columnar(
                    pages, thread, organizer, app_stamp, summary
                )
        resident = ctx.dram._resident
        verified = self._resident_verified_epoch
        organizers = self._organizers
        i = 0
        while i < n:
            page = pages[i]
            uid = page.uid
            # ``.get`` with an always-stale default keeps unregistered
            # apps on the exact path (where the reference error surfaces).
            if verified.get(uid, -1) >= app_epochs.get(uid, 0):
                # App-level fast path: the app was verified fully
                # resident (non-resident count zero) and none of *its*
                # pages left DRAM since, so this uid-segment (in
                # practice the whole batch) cannot miss.
                j = i + 1
                while j < n and pages[j].uid == uid:
                    j += 1
                organizers[uid].on_access_run(
                    pages[i:j] if i or j < n else pages, ctx.clock.now_ns
                )
                ctx.cpu.charge(
                    thread, "list_ops", ctx.platform.list_op_ns * (j - i)
                )
                summary.add_hits(j - i)
                self.epoch_skips += 1
                i = j
            elif page.pfn in resident:
                j = i + 1
                while j < n and pages[j].pfn in resident:
                    j += 1
                # Probes: one per page of the run, plus the failing
                # probe that terminated it (re-probed by the dispatch
                # above when the loop resumes there).
                self.residency_probes += (j - i) + (1 if j < n else 0)
                self._touch_resident_run(pages[i:j] if i or j < n else pages,
                                         thread)
                summary.add_hits(j - i)
                i = j
            else:
                self.residency_probes += 1
                summary.add_result(self.access(page, thread))
                i += 1
        if run_uid is not None and app_epochs[run_uid] == app_stamp:
            # Every page of the run was (made) resident when touched,
            # and no page of this app left DRAM at any point during the
            # batch — so all of them are resident *now*: stamp the run
            # verified for its next replay.  A mid-batch same-app
            # eviction (a fault's direct reclaim reaching into this
            # app) moved the app stamp and leaves the run unverified.
            pages.verified_epoch = self.eviction_epoch
        return summary

    def _access_batch_runs_columnar(
        self,
        pages: AccessRun,
        thread: str,
        organizer,
        app_stamp: int,
        summary: AccessBatchSummary,
    ) -> AccessBatchSummary:
        """The probing loop of :meth:`_access_batch_runs`, columnar.

        Identical dispatch structure and numbers — app-level verified
        segments, resident-run coalescing with the same probe counts,
        per-page fallback on the first non-resident page — but residency
        is probed against the organizer's ``list_id`` column (equivalent
        to the DRAM probe: the lists cover exactly the app's resident
        pages, the ``_audit_lru_membership`` invariant) and resident
        runs are touched as handle-array kernels, so a fully resident
        replay does no per-page Python work at all.
        """
        ctx = self.ctx
        uid = pages.uid
        app_epochs = self._app_eviction_epoch
        verified = self._resident_verified_epoch
        handles = organizer.run_handles(pages)
        charge = ctx.cpu.charge
        list_op_ns = ctx.platform.list_op_ns
        n = len(pages)
        i = 0
        while i < n:
            if verified.get(uid, -1) >= app_epochs.get(uid, 0):
                organizer._on_access_handles(
                    handles[i:] if i else handles, ctx.clock.now_ns
                )
                charge(thread, "list_ops", list_op_ns * (n - i))
                summary.add_hits(n - i)
                self.epoch_skips += 1
                break
            k = organizer.leading_resident(handles, i)
            if k:
                self.residency_probes += k + (1 if i + k < n else 0)
                organizer._on_access_handles(
                    handles[i:i + k], ctx.clock.now_ns
                )
                charge(thread, "list_ops", list_op_ns * k)
                summary.add_hits(k)
                i += k
            else:
                self.residency_probes += 1
                summary.add_result(self.access(pages[i], thread))
                i += 1
        if app_epochs[uid] == app_stamp:
            pages.verified_epoch = self.eviction_epoch
        return summary

    def _touch_resident_run(self, run: list[Page], thread: str) -> None:
        """Bulk bookkeeping for a run of resident hits (no stall, no fault).

        Splits the run into per-app segments (in practice a replay is
        single-app, so this is one segment), hands each to its
        organizer's bulk touch, and charges the per-hit list-op CPU in
        one call.  A memoized :class:`AccessRun` names its app, so the
        segment scan is skipped outright (same call, same charge).
        """
        n = len(run)
        if n == 0:
            # No hits, no charge: a zero-ns charge would still create a
            # ledger key the per-page reference never creates.
            return
        ctx = self.ctx
        now_ns = ctx.clock.now_ns
        if type(run) is AccessRun:
            self._organizers[run.uid].on_access_run(run, now_ns)
            ctx.cpu.charge(thread, "list_ops", ctx.platform.list_op_ns * n)
            return
        organizers = self._organizers
        i = 0
        while i < n:
            uid = run[i].uid
            j = i + 1
            while j < n and run[j].uid == uid:
                j += 1
            organizers[uid].on_access_run(run[i:j] if i or j < n else run,
                                          now_ns)
            i = j
        ctx.cpu.charge(thread, "list_ops", ctx.platform.list_op_ns * n)

    def _staging_hit(self, page: Page) -> AccessResult | None:
        """Hook for PreDecomp's staging buffer (Ariadne overrides)."""
        return None

    def _access_lost(self, page: Page, thread: str) -> AccessResult:
        """Access to data the scheme dropped (app was terminated).

        The real system would pay a full cold launch; we charge the
        fault path and re-materialize the page, and count the event so
        experiments can report termination rates.
        """
        platform = self.ctx.platform
        self.ctx.counters.incr("lost_page_accesses")
        if self._pressure is not None:
            self._pressure.note_refault(1)
        stall = self._make_room(1, direct=True, thread=thread)
        fault_ns = platform.fault_overhead_ns * platform.scale
        self._charge(thread, "fault", fault_ns // 4)
        stall += self._stall(fault_ns)
        self._lost_pfns.pop(page.pfn, None)
        self.ctx.dram.add_page(page)
        self._note_pages_resident(page.uid, 1)
        organizer = self.organizer(page.uid)
        organizer.add_page(page)
        organizer.on_access(page, self.ctx.clock.now_ns)
        breakdown = LatencyBreakdown(other_ns=stall)
        return AccessResult(stall_ns=stall, source=PageLocation.DRAM,
                            breakdown=breakdown)

    @abstractmethod
    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        """Service a fault for a stored page."""

    # ----------------------------------------------------------------- reclaim

    def background_reclaim(self) -> None:
        """kswapd: restore the high watermark without stalling anyone.

        Every wakeup also shrinks the file LRU (kswapd balances both
        LRUs), so a fixed batch of file-writeback CPU is charged per
        wakeup for every scheme — the common floor under the per-scheme
        anonymous-reclaim costs in Figure 3.
        """
        platform = self.ctx.platform
        file_ns = (
            platform.file_writeback_ns
            * platform.kswapd_batch_pages
            * platform.scale
        )
        self._charge(KSWAPD, "file_writeback", file_ns)
        self.ctx.counters.incr("file_pages_written", platform.kswapd_batch_pages)
        self._make_room(0, direct=False, thread=KSWAPD)
        if self._pressure is not None:
            self._pressure.on_kswapd(self)
        if self._auditor is not None:
            self._auditor.checkpoint(self)

    def _make_room(self, incoming_pages: int, direct: bool, thread: str) -> int:
        """Ensure room for ``incoming_pages`` plus the watermark; returns stall.

        Background mode restores the high watermark; direct mode only
        clears the low watermark (the kernel's direct-reclaim exit
        condition) so faulting paths do the minimum synchronous work.
        """
        platform = self.ctx.platform
        target_free = incoming_pages * PAGE_SIZE + (
            platform.low_watermark_bytes
            if direct
            else platform.high_watermark_bytes
        )
        stall_total = 0
        guard = 0
        while self.free_dram_bytes() < target_free:
            victim = self._pop_victim()
            if victim is None:
                if self.free_dram_bytes() >= incoming_pages * PAGE_SIZE:
                    break  # watermark missed but the allocation itself fits
                if self._pressure is not None and self._pressure.emergency_relief(
                    self
                ):
                    # Policied hard-exhaustion fallback (emergency kill
                    # or counted drop) made progress; re-probe.
                    guard += 1
                    if guard > 1_000_000:
                        raise MemoryPressureError(
                            "reclaim loop failed to make progress"
                        )
                    continue
                raise MemoryPressureError(
                    "reclaim found no victims and the allocation does not fit"
                )
            stall_ns = self._evict(victim, thread)
            if direct:
                stall_total += stall_ns
            guard += 1
            if guard > 1_000_000:
                raise MemoryPressureError("reclaim loop failed to make progress")
        if direct and stall_total and self._pressure is not None:
            self._pressure.note_stall(stall_total)
        return stall_total

    def _pop_victim(self) -> Page | None:
        """Next page to reclaim: least-recent app first, foreground last."""
        candidates = [uid for uid in self._app_lru if uid != self._foreground_uid]
        if self._foreground_uid is not None:
            # The foreground app is reclaimed from only as a last resort.
            candidates.append(self._foreground_uid)
        for uid in candidates:
            organizer = self._organizers.get(uid)
            if organizer is not None and organizer.has_victims():
                return self._pop_victim_from(organizer)
        return None

    def _pop_victim_from(self, organizer: DataOrganizer) -> Page:
        """Detach the next victim from one organizer (and from DRAM)."""
        page = organizer.pop_victim()
        self._detach_page(page)
        return page

    def force_compress_app(self, uid: int, exclude_hot: bool = False) -> None:
        """Evict an app's resident data (the EHL/AL relaunch setups).

        With ``exclude_hot`` the hot list stays resident (EHL); otherwise
        everything is compressed/swapped (AL).  Runs as background work.
        """
        organizer = self.organizer(uid)
        while True:
            if exclude_hot and not self._has_non_hot_victims(organizer):
                break
            if not organizer.has_victims():
                break
            page = self._pop_victim_from(organizer)
            self._evict(page, KSWAPD)

    def _has_non_hot_victims(self, organizer: DataOrganizer) -> bool:
        """Whether eviction can proceed without touching hot data."""
        checker = getattr(organizer, "has_non_hot_victims", None)
        if checker is not None:
            return checker()
        return organizer.has_victims()

    @abstractmethod
    def _evict(self, page: Page, thread: str) -> int:
        """Move one page out of DRAM; returns the synchronous cost in ns.

        The page has already been detached from DRAM and its organizer.
        """

    # ------------------------------------------------------- chunk bookkeeping

    def _next_chunk_id(self) -> int:
        self._chunk_seq += 1
        return self._chunk_seq

    @property
    def compression_log(self) -> list[tuple[int, "Hotness"]]:
        """(uid, ground-truth hotness) per page in compression order."""
        return [
            (page.uid, page.true_hotness)
            for run in self._compression_log_runs
            for page in run
        ]

    def _register_chunk(self, chunk: StoredChunk) -> None:
        self._chunks[chunk.chunk_id] = chunk
        for page in chunk.pages:
            self._stored_by_pfn[page.pfn] = chunk
        self._compression_log_runs.append(chunk.pages)

    def _unregister_chunk(self, chunk: StoredChunk) -> None:
        self._chunks.pop(chunk.chunk_id, None)
        if chunk.zpool_handle is not None:
            self._by_zpool_handle.pop(chunk.zpool_handle, None)
        for page in chunk.pages:
            self._stored_by_pfn.pop(page.pfn, None)

    def chunk_by_zpool_handle(self, handle: int) -> StoredChunk | None:
        """Live chunk stored under a zpool handle, if any."""
        return self._by_zpool_handle.get(handle)

    def stored_chunks(self) -> list[StoredChunk]:
        """Live stored chunks in storage order."""
        return list(self._chunks.values())

    def stored_page_count(self) -> int:
        """Number of pages currently swapped out."""
        return len(self._stored_by_pfn)

    def hotness_estimate(self, page: Page) -> Hotness:
        """The scheme's current belief about ``page``'s hotness."""
        if self.ctx.dram.is_resident(page):
            return self.organizer(page.uid).hotness_estimate(page)
        chunk = self._stored_by_pfn.get(page.pfn)
        if chunk is not None:
            return chunk.hotness_at_compress
        return Hotness.COLD

    # -------------------------------------------------------- shared evict path

    def _zpool_lane(self, uid: int, hotness: Hotness) -> int:
        """Sector lane for a chunk.  Android groups compressed data by
        application (Section 5), so the baseline keeps one lane per app;
        Ariadne refines this per hotness level (see
        :meth:`repro.core.ariadne.AriadneScheme._zpool_lane`)."""
        return uid % 1024

    def _compress_and_store(
        self,
        pages: list[Page],
        chunk_size: int,
        hotness: Hotness,
        thread: str,
    ) -> tuple[StoredChunk | None, int]:
        """Compress ``pages`` at ``chunk_size`` into the zpool.

        Returns (chunk, synchronous latency ns).  The caller has already
        removed the pages from DRAM/organizer.  If the zpool is full the
        scheme-specific overflow hook runs first; with a pressure plan
        installed, a still-full zpool becomes a counted admission
        refusal (pages lost, ``(None, 0)`` returned) instead of an
        unhandled :class:`~repro.errors.ZpoolFullError`.
        """
        ctx = self.ctx
        platform = ctx.platform
        # Page payloads are always PAGE_SIZE bytes, so every payload-
        # length figure is computable without concatenating; the size
        # cache's page-run front door only builds the payload on a
        # first-seen chunk group (see SizeCache.compressed_size_of_pages).
        span = PAGE_SIZE * len(pages)
        stored = ctx.compressed_size_of_pages(pages, chunk_size)
        while not ctx.zpool.has_room_for(stored):
            if self._pressure is not None:
                # The plan owns the lossy step: lossless relief first,
                # then its policy (kill / counted drop) decides.
                if self._pressure.zpool_relief(self):
                    continue
                break
            if self._relieve_zpool():
                continue
            break
        if self._pressure is not None and not ctx.zpool.has_room_for(stored):
            # Admission refusal: the zpool cannot take this chunk even
            # after relief — drop the pages with full accounting rather
            # than raise mid-eviction.
            self._pressure.note_refusal(len(pages))
            for page in pages:
                self._lost_pfns[page.pfn] = page.uid
            self._bump_app_epoch(pages[0].uid)
            ctx.counters.incr("pressure_admission_refusals")
            ctx.counters.incr("pressure_pages_refused", len(pages))
            ctx.counters.incr("pages_lost", len(pages))
            return None, 0
        comp_ns = platform.scale * ctx.latency.compress_ns(
            ctx.codec.name, span, chunk_size
        )
        self._charge(thread, "compress", comp_ns)
        counts = ctx.counters.mutable()
        counts["pages_compressed"] += len(pages)
        counts["compress_ops"] += 1
        counts["dram_bytes_moved"] += 2 * span * platform.scale
        entry = ctx.zpool.store(stored, lane=self._zpool_lane(pages[0].uid, hotness))
        chunk = StoredChunk(
            chunk_id=self._next_chunk_id(),
            uid=pages[0].uid,
            pages=tuple(pages),
            chunk_size=chunk_size,
            codec_name=ctx.codec.name,
            stored_bytes=stored,
            hotness_at_compress=hotness,
            location=PageLocation.ZPOOL,
            zpool_handle=entry.handle,
            sector=entry.sector,
        )
        for page in pages:
            page.location = PageLocation.ZPOOL
        plan = ctx.fault_plan
        if plan is not None and plan.corrupt_on_store():
            chunk.corrupted = True
        self._register_chunk(chunk)
        self._by_zpool_handle[entry.handle] = chunk
        counts["bytes_original"] += span
        counts["bytes_stored"] += stored
        return chunk, self._stall(comp_ns)

    def _relieve_zpool_lossless(self) -> bool:
        """Non-destructive response to zpool pressure; returns progress.

        The base schemes have none (no flash writeback path); Ariadne
        overrides this with its cold-first writeback.  An installed
        pressure plan tries this before its lossy policy step.
        """
        return False

    def _relieve_zpool(self) -> bool:
        """Scheme-specific response to zpool pressure; returns progress."""
        if self._relieve_zpool_lossless():
            return True
        return self._drop_oldest_chunk()

    def _drop_oldest_chunk(self) -> bool:
        """ZRAM's last resort: delete the oldest compressed data.

        Deleting a process's anonymous data terminates it (Section 2.2);
        we count the event and mark the pages lost.
        """
        for chunk in self._chunks.values():
            if chunk.in_zpool:
                self.ctx.zpool.free(chunk.zpool_handle)
                self._unregister_chunk(chunk)
                for page in chunk.pages:
                    self._lost_pfns[page.pfn] = page.uid
                # Purge conservatively advances the owner's epoch (the
                # pages were already non-resident, but a dropped chunk
                # is a residency-adjacent event the fast path respects).
                self._bump_app_epoch(chunk.uid)
                self.ctx.counters.incr("chunks_dropped")
                self.ctx.counters.incr("pages_lost", chunk.page_count)
                return True
        return False

    # --------------------------------------------------------- low-memory kill

    def app_has_reclaimable(self, uid: int) -> bool:
        """Whether killing ``uid`` would free any memory at all.

        The low-memory killer skips apps this returns ``False`` for —
        killing them frees nothing, so selecting one could stall the
        emergency-relief loop without making progress.
        """
        organizer = self._organizers.get(uid)
        if organizer is not None and organizer.resident_count() > 0:
            return True
        return any(chunk.uid == uid for chunk in self._chunks.values())

    def _purge_staged(self, uid: int) -> int:
        """Hook: drop ``uid``'s pre-decompressed pages (Ariadne overrides);
        returns how many pages were purged."""
        return 0

    def terminate_app(self, uid: int) -> int:
        """Low-memory kill: tear down every trace of ``uid``'s data.

        Resident pages leave DRAM through :meth:`_detach_page` (the
        epoch layer can never miss a residency loss), stored chunks
        release their zpool handle or swap slot, staged pages are
        purged, and everything joins :attr:`_lost_pfns` — the same
        bookkeeping contract as :meth:`_drop_oldest_chunk`, so the
        runtime auditor's ground truth stays balanced.  The app stays
        registered: a later relaunch is a cold launch of the same uid,
        charged ``process_create_ns`` by the system layer.  Returns the
        number of pages freed.
        """
        ctx = self.ctx
        organizer = self.organizer(uid)
        pages_freed = 0
        while organizer.has_victims():
            page = organizer.pop_victim()
            self._detach_page(page)
            self._lost_pfns[page.pfn] = uid
            pages_freed += 1
        pages_freed += self._purge_staged(uid)
        for chunk in [c for c in self._chunks.values() if c.uid == uid]:
            if chunk.in_flash and chunk.flash_slot is not None:
                ctx.flash_swap.free(chunk.flash_slot)
            elif chunk.in_zpool and chunk.zpool_handle is not None:
                ctx.zpool.free(chunk.zpool_handle)
            self._unregister_chunk(chunk)
            for page in chunk.pages:
                self._lost_pfns[page.pfn] = uid
            pages_freed += chunk.page_count
        self._bump_app_epoch(uid)
        ctx.counters.incr("lmk_kills")
        ctx.counters.incr("lmk_pages_killed", pages_freed)
        ctx.counters.incr("pages_lost", pages_freed)
        return pages_freed

    # ---------------------------------------------------------- fault recovery

    def _flash_load_with_retry(
        self, chunk: StoredChunk, thread: str
    ) -> tuple[object, int, int]:
        """Read ``chunk``'s swap slot, absorbing injected flash faults.

        Returns ``(slot, read_ns, backoff_ns)`` — ``backoff_ns`` is the
        retry wait the caller adds to the stall.  Transient errors are
        retried up to the plan's budget with doubling backoff (charged
        as CPU too); a permanent error or an exhausted budget drops the
        chunk (pages lost, epoch bumped) and raises
        :class:`ChunkLostError`, which the access dispatcher turns into
        a counted cold refault.  Without a fault plan this is exactly
        one ``flash_swap.load``.
        """
        ctx = self.ctx
        plan = ctx.fault_plan
        if plan is None:
            slot, read_ns = ctx.flash_swap.load(chunk.flash_slot)
            return slot, read_ns, 0
        counters = ctx.counters
        failed = 0
        backoff_total = 0
        while True:
            try:
                slot, read_ns = ctx.flash_swap.load(chunk.flash_slot)
            except TransientFlashError:
                counters.incr("fault_flash_read_transient")
                failed += 1
                if failed > plan.max_retries:
                    counters.incr("fault_transient_abandoned", failed)
                    self._drop_unreadable_chunk(chunk, "flash_io")
                    raise ChunkLostError(
                        f"chunk {chunk.chunk_id} (uid {chunk.uid}): flash "
                        f"read still failing after {plan.max_retries} retries"
                    ) from None
                wait_ns = plan.backoff_ns(failed)
                self._charge(thread, "fault_retry", wait_ns)
                backoff_total += wait_ns
                counters.incr("fault_io_retries")
            except PermanentFlashError:
                counters.incr("fault_flash_read_permanent")
                if failed:
                    counters.incr("fault_transient_abandoned", failed)
                self._drop_unreadable_chunk(chunk, "flash_io")
                raise ChunkLostError(
                    f"chunk {chunk.chunk_id} (uid {chunk.uid}): permanent "
                    "flash read error"
                ) from None
            else:
                if failed:
                    counters.incr("fault_transient_recovered", failed)
                return slot, read_ns, backoff_total

    def _flash_store_with_retry(
        self, nbytes: int, sequential: bool, thread: str, store=None
    ) -> tuple[object, int, int] | None:
        """Store ``nbytes`` to swap, absorbing injected flash faults.

        Returns ``(slot, write_ns, backoff_ns)``, or ``None`` when the
        write unrecoverably failed (permanent error or retry budget
        exhausted) — the caller degrades scheme-specifically (SWAP marks
        the page lost; Ariadne's writeback just reports no progress).
        :class:`~repro.errors.FlashFullError` propagates unchanged:
        capacity exhaustion is policy, not a fault.  ``store`` overrides
        the write call itself (zswap passes its batched contiguous-slot
        store; the ``slot`` position of the return then carries the slot
        tuple) — it must leak nothing on a raised fault so a retry is an
        exact re-execution, which ``FlashSwapArea`` guarantees by
        writing the device before allocating slots.  Without a fault
        plan this is exactly one store call.
        """
        ctx = self.ctx
        if store is None:
            store = lambda: ctx.flash_swap.store(  # noqa: E731
                nbytes, sequential=sequential
            )
        plan = ctx.fault_plan
        if plan is None:
            slot, write_ns = store()
            return slot, write_ns, 0
        counters = ctx.counters
        failed = 0
        backoff_total = 0
        while True:
            try:
                slot, write_ns = store()
            except TransientFlashError:
                counters.incr("fault_flash_write_transient")
                failed += 1
                if failed > plan.max_retries:
                    counters.incr("fault_transient_abandoned", failed)
                    counters.incr("fault_write_gave_up")
                    return None
                wait_ns = plan.backoff_ns(failed)
                self._charge(thread, "fault_retry", wait_ns)
                backoff_total += wait_ns
                counters.incr("fault_io_retries")
            except PermanentFlashError:
                counters.incr("fault_flash_write_permanent")
                if failed:
                    counters.incr("fault_transient_abandoned", failed)
                return None
            else:
                if failed:
                    counters.incr("fault_transient_recovered", failed)
                return slot, write_ns, backoff_total

    def _drop_unreadable_chunk(self, chunk: StoredChunk, reason: str) -> None:
        """Degrade: release an unreadable chunk and mark its pages lost.

        The backing storage is freed (the data is gone either way; the
        accounting must not leak), the pages join :attr:`_lost_pfns` so
        the next access cold-refaults them, and the owner's eviction
        epoch advances — exactly the bookkeeping contract of
        :meth:`_drop_oldest_chunk`, plus the ``fault_*`` recovery
        counters (``reason`` is ``"flash_io"`` or ``"corrupt"``).
        """
        ctx = self.ctx
        if chunk.in_flash and chunk.flash_slot is not None:
            ctx.flash_swap.free(chunk.flash_slot)
        elif chunk.in_zpool and chunk.zpool_handle is not None:
            ctx.zpool.free(chunk.zpool_handle)
        self._unregister_chunk(chunk)
        for page in chunk.pages:
            self._lost_pfns[page.pfn] = page.uid
        self._bump_app_epoch(chunk.uid)
        counters = ctx.counters
        counters.incr("fault_chunks_dropped")
        counters.incr(f"fault_dropped_{reason}")
        counters.incr("pages_lost", chunk.page_count)

    def _decompress_chunk(
        self, chunk: StoredChunk, faulted: Page, thread: str
    ) -> tuple[int, LatencyBreakdown]:
        """Decompress a chunk for a faulting page; returns (stall, breakdown).

        Sub-page chunks decompress only the faulted page's own sub-chunks;
        multi-page chunks decompress everything they cover.
        """
        ctx = self.ctx
        platform = ctx.platform
        if chunk.corrupted:
            # The stored payload fails its content-digest check: drop it
            # rather than deliver corrupt data.  The access dispatcher
            # turns this into a counted cold refault.
            self._drop_unreadable_chunk(chunk, "corrupt")
            raise CorruptDataError(
                f"chunk {chunk.chunk_id} (uid {chunk.uid}, "
                f"{chunk.page_count} pages) failed its digest check"
            )
        breakdown = LatencyBreakdown()
        stall = 0
        if chunk.in_flash:
            slot, read_ns, backoff_ns = self._flash_load_with_retry(chunk, thread)
            ctx.flash_swap.free(chunk.flash_slot)
            ctx.counters.incr("flash_reads")
            read_stall = read_ns // platform.flash_queue_depth
            stall += read_stall + backoff_ns
            breakdown.flash_read_ns += read_stall
            breakdown.other_ns += backoff_ns
            self._charge(thread, "flash_read", platform.swap_submit_ns * platform.scale)
        else:
            self.sector_access_log.append((faulted.uid, chunk.sector))
            ctx.zpool.free(chunk.zpool_handle)
        if chunk.chunk_size > PAGE_SIZE:
            span = chunk.page_count * PAGE_SIZE
        else:
            span = PAGE_SIZE
        decomp_ns = platform.scale * ctx.latency.decompress_ns(
            chunk.codec_name, span, chunk.chunk_size
        )
        self._charge(thread, "decompress", decomp_ns)
        ctx.counters.incr("pages_decompressed", chunk.page_count)
        ctx.counters.incr("decompress_ops")
        ctx.counters.incr("dram_bytes_moved", 2 * span * platform.scale)
        stall += self._stall(decomp_ns)
        breakdown.decompress_ns += self._stall(decomp_ns)
        self._unregister_chunk(chunk)
        return stall, breakdown

    def _admit_pages(
        self,
        chunk: StoredChunk,
        faulted: Page,
        thread: str,
    ) -> tuple[int, LatencyBreakdown]:
        """Make a decompressed chunk's pages resident; returns (stall, bd)."""
        platform = self.ctx.platform
        breakdown = LatencyBreakdown()
        room_stall = self._make_room(chunk.page_count, direct=True, thread=thread)
        breakdown.compress_ns += room_stall  # on-demand compression stalls
        fault_ns = platform.fault_overhead_ns * platform.scale
        # Most of the fault path is waiting (IRQ/device), not busy CPU:
        # the full cost stalls the app, a quarter of it burns cycles.
        self._charge(thread, "fault", fault_ns // 4)
        fault_stall = self._stall(fault_ns)
        breakdown.other_ns += fault_stall
        organizer = self.organizer(chunk.uid)
        admitted = list(chunk.pages)
        self.ctx.dram.add_pages(admitted)
        organizer.add_page_run(admitted)
        self._note_pages_resident(chunk.uid, chunk.page_count)
        organizer.on_access(faulted, self.ctx.clock.now_ns)
        self.ctx.counters.incr("pages_swapped_in", chunk.page_count)
        if self._pressure is not None:
            self._pressure.note_refault(chunk.page_count)
        return room_stall + fault_stall, breakdown
