"""The DRAM baseline: no anonymous-page swapping at all.

The paper's optimistic lower bound (Figures 2 and 10): DRAM is assumed
large enough to hold every app's anonymous data, so accesses never
stall.  Its kswapd still spends (modest) CPU writing file-backed pages
back to flash — that is the non-zero DRAM bar in Figure 3 — modeled as a
fixed per-batch charge whenever the system gives kswapd a turn.
"""

from __future__ import annotations

from ..mem.columnar import make_two_list_organizer
from ..mem.organizer import DataOrganizer
from ..mem.page import Page
from ..metrics import APP, KSWAPD, AccessBatchSummary
from .context import SchemeContext
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk


class DramScheme(SwapScheme):
    """No-swap ideal: everything stays resident.

    Args:
        ctx: Shared context (its DRAM model must be large enough for the
            whole workload; :func:`repro.sim.make_system` arranges this).
        pressure_budget_bytes: The *real* platform's DRAM budget.  Pages
            allocated beyond it displace file-cache pages, whose
            writeback is the kswapd CPU the DRAM bar of Figure 3 shows.
            ``None`` disables the file-reclaim model.
    """

    name = "DRAM"
    uses_zpool = False
    tracks_free_dram = False  # memory never runs out: no counter to keep

    def __init__(
        self, ctx: SchemeContext, pressure_budget_bytes: int | None = None
    ) -> None:
        super().__init__(ctx)
        self.pressure_budget_bytes = pressure_budget_bytes

    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        return make_two_list_organizer(uid)

    def free_dram_bytes(self) -> int:
        """The optimistic assumption: memory never runs out."""
        self.watermark_probes += 1
        return self.ctx.platform.dram_bytes

    def audit_free_dram_bytes(self) -> int:
        """Matches :meth:`free_dram_bytes`: the constant optimistic view."""
        return self.ctx.platform.dram_bytes

    def on_pages_created(self, uid: int, pages: list[Page]) -> None:
        organizer = self.organizer(uid)
        platform = self.ctx.platform
        for page in pages:
            if (
                self.pressure_budget_bytes is not None
                and self.ctx.dram.used_bytes >= self.pressure_budget_bytes
            ):
                # The anonymous page displaces a file-backed page, which
                # kswapd must write back to flash.
                cost = platform.file_writeback_ns * platform.scale
                self.ctx.cpu.charge(KSWAPD, "file_writeback", cost)
                self.ctx.counters.incr("file_pages_written")
            self.ctx.dram.add_page(page)
            organizer.add_page(page)

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Batched replay without residency probes: this scheme never
        evicts or loses anonymous pages, so every page of a valid replay
        is resident and the whole batch is one hit run — the degenerate
        case of the eviction-epoch fast path, where every app stays
        verified forever (the epoch never moves).  (A page that somehow
        is not resident still raises :class:`PageStateError`, from the
        organizer instead of the access dispatcher.)"""
        self._touch_resident_run(pages, thread)
        summary = AccessBatchSummary()
        summary.add_hits(len(pages))
        self.epoch_skips += 1
        return summary

    def background_reclaim(self) -> None:
        """Anonymous data is never reclaimed; kswapd still shrinks the
        file LRU each wakeup (plus the allocation-time displacement cost
        charged in :meth:`on_pages_created`)."""
        platform = self.ctx.platform
        file_ns = (
            platform.file_writeback_ns
            * platform.kswapd_batch_pages
            * platform.scale
        )
        self.ctx.cpu.charge(KSWAPD, "file_writeback", file_ns)
        self.ctx.counters.incr("file_pages_written", platform.kswapd_batch_pages)

    def _evict(self, page: Page, thread: str) -> int:
        raise AssertionError("DRAM scheme never evicts anonymous pages")

    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        raise AssertionError("DRAM scheme never has stored pages")
