"""Ariadne: hotness-aware, size-adaptive compressed swap (Section 4).

Assembles the three techniques on top of the shared scheme machinery:

- **HotnessOrg** — the :class:`HotWarmColdOrganizer` tri-list per app
  (hotness init at launch, hotness update at relaunch boundaries,
  cold -> warm -> hot eviction order), with recency ordering across apps.
- **AdaptiveComp** — chunk size per hotness level at compression time;
  cold victims are gathered into multi-page LargeSize chunks.
- **PreDecomp** — on a zpool fault at sector ``s``, the chunk at the next
  live sector is decompressed in the background into a FIFO staging
  buffer; a subsequent access to a staged page costs a page-table fixup
  instead of a decompression stall.
- **Cold writeback** (the ZSWAP role, Section 4.1) — when memory is
  tight, compressed *cold* chunks are written to flash, freeing their
  zpool (DRAM) footprint without risking hot-data flash reads; it is
  also the overflow response when the zpool hits its capacity ``S``.
"""

from __future__ import annotations

from ..errors import ChunkLostError, FlashFullError
from ..mem.columnar import make_tri_list_organizer, make_two_list_organizer
from ..mem.organizer import DataOrganizer, HotWarmColdOrganizer
from ..mem.page import Hotness, Page, PageLocation
from ..metrics import APP, KSWAPD, PREDECOMP, AccessBatchSummary, LatencyBreakdown
from ..units import PAGE_SIZE
from .adaptive import chunk_size_for, gather_cold_group
from .config import AriadneConfig
from .context import SchemeContext
from .predecomp import StagingBuffer
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk


class AriadneScheme(SwapScheme):
    """The paper's scheme: HotnessOrg + AdaptiveComp + PreDecomp."""

    uses_zpool = True

    def __init__(self, ctx: SchemeContext, config: AriadneConfig | None = None) -> None:
        super().__init__(ctx)
        self.config = config if config is not None else AriadneConfig()
        self.name = self.config.label
        self.staging = StagingBuffer(self.config.staging_pages)
        #: Hotness level each victim held when it was popped for eviction.
        self._victim_levels: dict[int, Hotness] = {}
        #: Per staged page: (compression-time level, next-sector hint).
        #: The hint lets a staging *hit* continue the prefetch chain, so
        #: a whole sequential run is serviced with one real fault.
        self._staged_levels: dict[int, tuple[Hotness, int | None]] = {}

    # ------------------------------------------------------------- organizers

    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        if not self.config.hotness_org_enabled:
            # Ablation: Ariadne's chunk/prefetch machinery on stock LRU.
            return make_two_list_organizer(uid)
        return make_tri_list_organizer(uid, hot_seed_limit)

    def end_launch(self, uid: int) -> None:
        organizer = self.organizer(uid)
        if isinstance(organizer, HotWarmColdOrganizer):
            organizer.end_launch_window()

    def begin_relaunch(self, uid: int) -> None:
        super().begin_relaunch(uid)
        organizer = self.organizer(uid)
        if isinstance(organizer, HotWarmColdOrganizer):
            organizer.begin_relaunch()

    def end_relaunch(self, uid: int) -> None:
        organizer = self.organizer(uid)
        if isinstance(organizer, HotWarmColdOrganizer):
            organizer.end_relaunch()
            charge = organizer.list_operations * self.ctx.platform.list_op_ns
            organizer.list_operations = 0
            self._charge(KSWAPD, "list_ops", charge)

    def hot_prediction(self, uid: int) -> set[int]:
        """Pages the scheme currently believes are app ``uid``'s hot set.

        Resident hot-list pages plus pages compressed while on the hot
        list (the AL scenario compresses the hot list with SmallSize
        chunks; they are still *identified* as hot).
        """
        organizer = self.organizer(uid)
        predicted: set[int] = set()
        if isinstance(organizer, HotWarmColdOrganizer):
            predicted.update(page.pfn for page in organizer.hot)
        for chunk in self._chunks.values():
            if chunk.uid == uid and chunk.hotness_at_compress is Hotness.HOT:
                predicted.update(page.pfn for page in chunk.pages)
        predicted.update(
            pfn
            for pfn, (level, _hint) in self._staged_levels.items()
            if level is Hotness.HOT
        )
        return predicted

    # ----------------------------------------------------------------- reclaim

    def _pop_victim(self) -> Page | None:
        """Global eviction order (Section 4.2): the cold data of *all*
        applications goes first, then warm, and only then hot — within a
        level, least-recently-switched apps first, foreground last."""
        fg = self._foreground_uid
        candidates = [uid for uid in self._app_lru if uid != fg]
        if fg is not None:
            candidates.append(fg)
        organizers = self._organizers
        hwc = [
            org
            for uid in candidates
            if isinstance(org := organizers.get(uid), HotWarmColdOrganizer)
        ]
        for level in (Hotness.COLD, Hotness.WARM, Hotness.HOT):
            for organizer in hwc:
                lru = organizer.level_list(level)
                if not len(lru):
                    continue
                organizer.list_operations += 1
                page = lru.pop_lru()
                self._detach_page(page)
                self._victim_levels[page.pfn] = level
                return page
        # Ablation fallback (hotness_org_enabled=False): stock behavior.
        return super()._pop_victim()

    def _pop_victim_from(self, organizer: DataOrganizer) -> Page:
        """Pop the next victim, remembering which hotness list it left."""
        if isinstance(organizer, HotWarmColdOrganizer):
            if len(organizer.cold):
                level = Hotness.COLD
            elif len(organizer.warm):
                level = Hotness.WARM
            else:
                level = Hotness.HOT
        else:
            level = Hotness.COLD
        page = organizer.pop_victim()
        self._detach_page(page)
        self._victim_levels[page.pfn] = level
        return page

    def _make_room(self, incoming_pages: int, direct: bool, thread: str) -> int:
        """On the *direct* (faulting) path, prefer writing cold compressed
        chunks to flash over compressing more resident data: it frees DRAM
        (the zpool lives there) with an async write submission instead of
        a synchronous compression, and never touches pages that may be
        reused.  Background reclaim keeps cold chunks in the zpool — they
        are the cheap-to-free reserve the direct path draws on.
        """
        platform = self.ctx.platform
        stall = 0
        if direct and self.config.writeback_enabled:
            target_free = incoming_pages * PAGE_SIZE + platform.low_watermark_bytes
            while self.free_dram_bytes() < target_free:
                if not self._writeback_one(thread, allow_warm=True):
                    break
                submit_stall = self._stall(platform.swap_submit_ns * platform.scale)
                stall += submit_stall
        stall += super()._make_room(incoming_pages, direct, thread)
        return stall

    def _evict(self, page: Page, thread: str) -> int:
        level = self._victim_levels.pop(page.pfn, Hotness.COLD)
        chunk_size = chunk_size_for(level, self.config)
        pages = [page]
        organizer = self.organizer(page.uid)
        if (
            level is Hotness.COLD
            and chunk_size > PAGE_SIZE
            and isinstance(organizer, HotWarmColdOrganizer)
        ):
            pages = gather_cold_group(
                organizer, self, page, self.config.cold_group_pages
            )
        _, stall = self._compress_and_store(
            pages, chunk_size=chunk_size, hotness=level, thread=thread
        )
        # Keep the zpool under its capacity threshold (Table 5's S).
        if self.config.writeback_enabled:
            threshold = self.config.writeback_threshold * self.ctx.zpool.capacity_bytes
            while self.ctx.zpool.used_bytes > threshold:
                if not self._writeback_one(thread, allow_warm=True):
                    break
        return stall

    def _zpool_lane(self, uid: int, hotness: Hotness) -> int:
        """One sector lane per (hotness level, app): HotnessOrg's layout.

        Keeping each class in its own lane means an app's hot chunks sit
        at consecutive sectors even when hot evictions interleave with
        other apps' cold evictions — the layout difference the paper's
        Figure 9 highlights, and the reason next-sector prediction stays
        accurate under mixed reclaim traffic.
        """
        return hotness.rank * 256 + uid % 256

    def _relieve_zpool_lossless(self) -> bool:
        """zpool overflow: write a chunk back instead of dropping data."""
        return self.config.writeback_enabled and self._writeback_one(
            KSWAPD, allow_warm=True
        )

    def app_has_reclaimable(self, uid: int) -> bool:
        if super().app_has_reclaimable(uid):
            return True
        return any(page.uid == uid for page in self.staging._pages.values())

    def _purge_staged(self, uid: int) -> int:
        """Kill teardown: drop ``uid``'s pre-decompressed staged pages.

        Staged pages are non-resident (they sit in the reserved buffer),
        so moving them to :attr:`_lost_pfns` keeps the per-app
        non-resident ground truth balanced.  They bypass ``claim()`` so
        the buffer's hit/miss statistics stay honest.
        """
        purged = 0
        for pfn, page in list(self.staging._pages.items()):
            if page.uid != uid:
                continue
            del self.staging._pages[pfn]
            self._staged_levels.pop(pfn, None)
            self._lost_pfns[pfn] = uid
            purged += 1
        return purged

    def _writeback_one(self, thread: str, allow_warm: bool = False) -> bool:
        """Move the oldest zpool chunk to flash, cold data first.

        Section 4.2: "the system writes some compressed data to flash
        memory-based swap space following a policy that ensures cold data
        is swapped out first".  Warm chunks follow only when no cold
        remains (and only if ``allow_warm``); hot chunks never go to
        flash — a hot flash read on the relaunch path is the failure mode
        Ariadne exists to avoid.
        """
        target: StoredChunk | None = None
        for chunk in self._chunks.values():
            if chunk.in_zpool and chunk.hotness_at_compress is Hotness.COLD:
                target = chunk
                break
        if target is None and allow_warm:
            for chunk in self._chunks.values():
                if chunk.in_zpool and chunk.hotness_at_compress is Hotness.WARM:
                    target = chunk
                    break
        if target is None:
            return False
        try:
            stored = self._flash_store_with_retry(
                target.stored_bytes, sequential=True, thread=thread
            )
        except FlashFullError:
            self.ctx.counters.incr("swap_area_full")
            return False
        if stored is None:
            # Unrecoverable injected write fault: the chunk stays safely
            # in the zpool (nothing moved yet) and writeback simply
            # reports no progress this round.
            self.ctx.counters.incr("fault_writeback_deferred")
            return False
        slot, _write_ns, _backoff_ns = stored
        self.ctx.zpool.free(target.zpool_handle)
        self._by_zpool_handle.pop(target.zpool_handle, None)
        target.zpool_handle = None
        target.sector = None
        target.location = PageLocation.FLASH
        target.flash_slot = slot.slot_id
        for page in target.pages:
            page.location = PageLocation.FLASH
        submit_ns = self.ctx.platform.swap_submit_ns * self.ctx.platform.scale
        self._charge(thread, "writeback", submit_ns)
        # Writeback moves a chunk zpool -> flash without touching DRAM
        # residency; the owner's epoch still advances (conservative,
        # per the epoch contract) — it only costs a re-verification.
        self._bump_app_epoch(target.uid)
        self.ctx.counters.incr("chunks_written_back")
        self.ctx.counters.incr("pages_written_back", target.page_count)
        return True

    def restore_hot_resident(self, uid: int) -> None:
        """Bring app ``uid``'s identified-hot data back into DRAM.

        Establishes the EHL measured state of Section 5 ("data in the hot
        list is in main memory while other data is in either ZRAM or
        flash") when earlier memory pressure pushed hot pages out.  Runs
        as background work: decompression CPU is charged, nothing stalls.
        """
        organizer = self.organizer(uid)
        if not isinstance(organizer, HotWarmColdOrganizer):
            return
        platform = self.ctx.platform
        targets = [
            chunk for chunk in list(self._chunks.values())
            if chunk.uid == uid and chunk.hotness_at_compress is Hotness.HOT
        ]
        for chunk in targets:
            if chunk.corrupted:
                # Digest check fails on restore just as it would on a
                # fault: drop the chunk (pages lost, cold refault later)
                # rather than deliver corrupt hot data.
                self._drop_unreadable_chunk(chunk, "corrupt")
                continue
            if chunk.in_flash:
                try:
                    _slot, _read_ns, _backoff = self._flash_load_with_retry(
                        chunk, KSWAPD
                    )
                except ChunkLostError:
                    # Unrecoverable flash fault: the chunk was dropped
                    # (pages marked lost); restoration moves on.
                    continue
                self.ctx.flash_swap.free(chunk.flash_slot)
                self.ctx.counters.incr("flash_reads")
            else:
                self.ctx.zpool.free(chunk.zpool_handle)
                self._by_zpool_handle.pop(chunk.zpool_handle, None)
            span = chunk.page_count * PAGE_SIZE
            decomp_ns = platform.scale * self.ctx.latency.decompress_ns(
                chunk.codec_name, span, chunk.chunk_size
            )
            self._charge(KSWAPD, "decompress", decomp_ns)
            self.ctx.counters.incr("pages_decompressed", chunk.page_count)
            self.ctx.counters.incr("decompress_ops")
            self.ctx.counters.incr("dram_bytes_moved", 2 * span * platform.scale)
            self._unregister_chunk(chunk)
            for page in chunk.pages:
                self._make_room(1, direct=False, thread=KSWAPD)
                self.ctx.dram.add_page(page)
                self._note_pages_resident(page.uid, 1)
                organizer.add_page_as(page, Hotness.HOT)
        # Hot pages parked in the staging buffer also come home.
        for pfn, (level, _hint) in list(self._staged_levels.items()):
            if level is not Hotness.HOT:
                continue
            staged = self.staging.claim(pfn)
            if staged is None or staged.uid != uid:
                if staged is not None:
                    self.staging.stage(staged)  # not ours: put it back
                continue
            self._staged_levels.pop(pfn, None)
            self._make_room(1, direct=False, thread=KSWAPD)
            self.ctx.dram.add_page(staged)
            self._note_pages_resident(staged.uid, 1)
            organizer.add_page_as(staged, Hotness.HOT)

    # ------------------------------------------------------------------ faults

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Batched replay: the resident-run/fault split stays exact under
        PreDecomp because staged pages are *not* DRAM-resident — they sit
        in the reserved buffer until claimed — so a staging hit always
        takes the fall-back :meth:`access` path, and any pages it stages
        or materializes are seen by the re-probe of the rest of the
        batch.  The same fact keeps the epoch layer exact: an app with
        staged pages has a non-zero non-resident count and can never be
        verified fully resident, so the probe-free path cannot swallow a
        staging hit."""
        return self._access_batch_runs(pages, thread)

    def _staging_hit(self, page: Page) -> AccessResult | None:
        staged = self.staging.claim(page.pfn)
        if staged is None:
            return None
        _level, hint = self._staged_levels.pop(page.pfn, (Hotness.WARM, None))
        platform = self.ctx.platform
        # The page leaves the reserved buffer and becomes ordinary
        # resident memory, so it needs a DRAM page like any fault —
        # but not a decompression, which already happened off-path.
        stall = self._make_room(1, direct=True, thread=KSWAPD)
        self.ctx.dram.add_page(staged)
        self._note_pages_resident(page.uid, 1)
        organizer = self.organizer(page.uid)
        organizer.add_page(staged)
        organizer.on_access(staged, self.ctx.clock.now_ns)
        hit_ns = platform.staging_hit_ns * platform.scale
        self._charge(KSWAPD, "staging_hit", hit_ns)
        stall += self._stall(hit_ns)
        self.ctx.counters.incr("staging_hits")
        if hint is not None and self.config.predecomp_enabled:
            # Continue the prefetch chain: a hit confirms the sequential
            # run is live, so stage the next sector too.
            self._predecompress_from(hint)
        return AccessResult(
            stall_ns=stall,
            source=PageLocation.STAGING,
            breakdown=LatencyBreakdown(other_ns=stall),
        )

    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        source = chunk.location
        next_sector = None
        if chunk.in_zpool and self.config.predecomp_enabled:
            next_sector = self.ctx.zpool.next_live_sector(chunk.sector)
        decomp_stall, breakdown = self._decompress_chunk(chunk, page, thread)
        admit_stall, admit_bd = self._admit_pages(chunk, page, thread)
        breakdown.add(admit_bd)
        if next_sector is not None:
            self._predecompress_from(next_sector)
        return AccessResult(
            stall_ns=decomp_stall + admit_stall,
            source=source,
            breakdown=breakdown,
        )

    # --------------------------------------------------------------- predecomp

    def _predecompress_from(self, sector: int) -> None:
        """Pre-decompress up to ``predecomp_depth`` chunks starting at
        ``sector``, in the background (CPU charged, no stall)."""
        depth = self.config.predecomp_depth
        current: int | None = sector
        for _ in range(depth):
            if current is None:
                return
            handle = self.ctx.zpool.handle_at_sector(current)
            if handle is None:
                return
            chunk = self.chunk_by_zpool_handle(handle)
            if chunk is None:
                return
            following = self.ctx.zpool.next_live_sector(current)
            if not self._try_stage_chunk(chunk):
                return
            current = following

    def _try_stage_chunk(self, chunk: StoredChunk) -> bool:
        """Decompress ``chunk`` into the staging buffer if it is sensible.

        Skips cold multi-page chunks: prefetching them pollutes memory —
        the Section 3 discussion of four-page prefetch.  The buffer
        itself is a small pre-reserved region (Section 4.4), so staging
        needs no reclaim; capacity is enforced by FIFO eviction.
        """
        platform = self.ctx.platform
        if chunk.chunk_size > self.config.medium_size:
            self.ctx.counters.incr("predecomp_skipped_cold")
            return False
        if chunk.corrupted:
            # The prefetch decompression is a read: the digest check
            # catches the injected bit-flip here, before the corrupt
            # payload can enter the staging buffer.
            self._drop_unreadable_chunk(chunk, "corrupt")
            return False
        span = PAGE_SIZE * chunk.page_count
        decomp_ns = platform.scale * self.ctx.latency.decompress_ns(
            chunk.codec_name, span, chunk.chunk_size
        )
        self._charge(PREDECOMP, "decompress", decomp_ns)
        self.ctx.counters.incr("predecomp_prefetches")
        self.ctx.counters.incr("pages_decompressed", chunk.page_count)
        self.ctx.counters.incr("decompress_ops")
        self.ctx.counters.incr("dram_bytes_moved", 2 * span * platform.scale)
        hint = self.ctx.zpool.next_live_sector(chunk.sector)
        self.ctx.zpool.free(chunk.zpool_handle)
        self._unregister_chunk(chunk)
        for page in chunk.pages:
            evicted = self.staging.stage(page)
            self._staged_levels[page.pfn] = (chunk.hotness_at_compress, hint)
            for old in evicted:
                self._recompress_staged(old)
        return True

    def _recompress_staged(self, page: Page) -> None:
        """A staged page aged out unused: compress it back (wasted work).

        The page only ever lived in the reserved buffer, so there is no
        DRAM residency to release — just the recompression cost.
        """
        level, _hint = self._staged_levels.pop(page.pfn, (Hotness.WARM, None))
        self.ctx.counters.incr("staging_recompressed")
        self._compress_and_store(
            [page],
            chunk_size=chunk_size_for(level, self.config),
            hotness=level,
            thread=PREDECOMP,
        )
