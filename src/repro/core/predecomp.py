"""PreDecomp: proactive, predictive decompression (Section 4.4).

Two pieces:

- :class:`StagingBuffer` — the FIFO main-memory buffer holding
  pre-decompressed pages.  Capacity-bounded; when full, the oldest
  staged page is evicted, and if it was never used it must be compressed
  again (the cost Section 4.4 warns about — callers get the evicted page
  back so they can recompress it).
- next-sector prediction lives in the Ariadne scheme itself: on a fault
  at zpool sector ``s`` it pre-decompresses the chunk at the next live
  sector, one page ahead (Table 3 shows deeper prefetch pollutes).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError
from ..mem.page import Page, PageLocation


class StagingBuffer:
    """FIFO buffer of pre-decompressed pages."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ConfigError(
                f"staging buffer needs at least one page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evicted_unused = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._pages

    def stage(self, page: Page) -> list[Page]:
        """Add a pre-decompressed page; returns any FIFO-evicted pages.

        Evicted pages were staged but never claimed — the caller must
        recompress them (wasted work the prediction accuracy keeps rare).
        """
        evicted: list[Page] = []
        while len(self._pages) >= self.capacity_pages:
            _, old = self._pages.popitem(last=False)
            self.evicted_unused += 1
            evicted.append(old)
        self._pages[page.pfn] = page
        page.location = PageLocation.STAGING
        return evicted

    def claim(self, pfn: int) -> Page | None:
        """Take a staged page on access (a PreDecomp hit), if present."""
        page = self._pages.pop(pfn, None)
        if page is None:
            self.misses += 1
        else:
            self.hits += 1
        return page

    def drain(self) -> list[Page]:
        """Remove and return everything (used at teardown/ablation)."""
        pages = list(self._pages.values())
        self._pages.clear()
        return pages

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit the buffer."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
