"""The ZRAM baseline: the state-of-the-art compressed swap scheme.

Exactly the configuration the paper evaluates against (Section 5):

- LRU selects compression victims (the stock two-list organizer, with
  pages grouped per application);
- single-page (4 KB) compression chunks only;
- no decompression before the data is demanded (no prefetch);
- no flash writeback — when the zpool is full the system deletes
  inactive compressed data, terminating the owning app (Section 2.2).
"""

from __future__ import annotations

from ..mem.columnar import make_two_list_organizer
from ..mem.organizer import DataOrganizer
from ..mem.page import Hotness, Page, PageLocation
from ..metrics import APP, AccessBatchSummary
from ..units import PAGE_SIZE
from .context import SchemeContext
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk


class ZramScheme(SwapScheme):
    """Stock Android ZRAM."""

    name = "ZRAM"
    uses_zpool = True

    def __init__(self, ctx: SchemeContext) -> None:
        super().__init__(ctx)

    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        return make_two_list_organizer(uid)

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Batched replay: zram has no staging buffer, so the generic
        epoch-gated resident-run/fault split is exact as-is."""
        return self._access_batch_runs(pages, thread)

    def _evict(self, page: Page, thread: str) -> int:
        """Compress one LRU victim into the zpool as a 4 KB chunk."""
        _, stall = self._compress_and_store(
            [page],
            chunk_size=PAGE_SIZE,
            hotness=Hotness.COLD,  # LRU has no hotness notion
            thread=thread,
        )
        return stall

    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        decomp_stall, breakdown = self._decompress_chunk(chunk, page, thread)
        admit_stall, admit_bd = self._admit_pages(chunk, page, thread)
        breakdown.add(admit_bd)
        return AccessResult(
            stall_ns=decomp_stall + admit_stall,
            source=PageLocation.ZPOOL,
            breakdown=breakdown,
        )
