"""Platform and scheme configuration.

:class:`PlatformConfig` captures the hardware/kernel constants of the
evaluation platform (paper Table 4: Google Pixel 7, 12 GB DRAM,
UFS 3.1), scaled to simulation size.  :class:`AriadneConfig` captures
the paper's Table 5 parameter space (zpool size ``S`` and the
Small/Medium/LargeSize compression chunk sizes) plus the EHL/AL relaunch
scenarios of Section 5.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..units import GIB, KIB, MIB, MS, PAGE_SIZE, SCALE_FACTOR, US, fmt_chunk


class RelaunchScenario(enum.Enum):
    """The two relaunch data placements evaluated in the paper.

    - EHL ("exclude hot list"): hot-list data stays uncompressed in main
      memory; warm and cold data start compressed.
    - AL ("all lists"): every list's data starts compressed.
    """

    EHL = "EHL"
    AL = "AL"


@dataclass(frozen=True)
class PlatformConfig:
    """Simulated platform constants (all sizes at simulation scale).

    Attributes:
        dram_bytes: DRAM budget available to background anonymous data.
        zpool_bytes: zpool capacity (paper Table 5: ``S``).
        swap_bytes: Flash swap area capacity.
        scale: Real pages represented by one simulated page.
        parallelism: Effective concurrency hiding critical-path stalls
            (multiple big cores decompress/swap-in concurrently).
        flash_queue_depth: Effective overlap of flash commands (swap-in
            readahead keeps the UFS queue busy, so per-page latency is
            the device latency divided by the achieved queue depth).
        fault_overhead_ns: Kernel page-fault + swap-entry path cost per
            *real* page.
        staging_hit_ns: Cost to adopt a pre-decompressed page per real
            page (page-table fixup + copy avoidance).
        process_create_ns: Process re-creation penalty when an app was
            terminated (dominates cold launches, Section 2.1).
        low_watermark: Free-memory fraction below which reclaim becomes
            direct (synchronous, on the faulting path).
        high_watermark: Free-memory fraction kswapd reclaims up to in the
            background.
        kswapd_batch_pages: Pages reclaimed per kswapd wakeup iteration.
        list_op_ns: CPU cost of one LRU-list manipulation.
        file_writeback_ns: kswapd CPU cost per reclaimed file-backed page.
            Calibration anchor: under identical pressure the DRAM
            baseline's kswapd reclaims file pages instead of compressing
            anonymous pages; the paper measures ZRAM's kswapd at 2.6x the
            DRAM baseline's (Figure 3), and LZO compression costs ~13 us
            per real page, so file reclaim lands near 5 us per real page.
        swap_submit_ns: kswapd CPU cost to scan, unmap and submit one real
            page of swap I/O.  Anchor: ZRAM's kswapd CPU is 2.0x SWAP's
            (Figure 3), putting SWAP's per-page reclaim work near 6.5 us.
        relaunch_fixed_fraction: Share of the DRAM-resident relaunch
            latency that is fixed app work (the rest scales per hot page).
    """

    dram_bytes: int
    zpool_bytes: int
    swap_bytes: int
    scale: int = SCALE_FACTOR
    parallelism: int = 6
    flash_queue_depth: int = 8
    fault_overhead_ns: int = 8 * US
    staging_hit_ns: int = 1 * US
    process_create_ns: int = 800 * MS
    low_watermark: float = 0.004
    high_watermark: float = 0.01
    kswapd_batch_pages: int = 32
    list_op_ns: int = 150
    file_writeback_ns: int = 5 * US
    swap_submit_ns: int = 6500
    relaunch_fixed_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.dram_bytes < PAGE_SIZE:
            raise ConfigError("dram_bytes must hold at least one page")
        if not 0.0 <= self.low_watermark <= self.high_watermark <= 0.5:
            raise ConfigError(
                "watermarks must satisfy 0 <= low <= high <= 0.5, got "
                f"{self.low_watermark}/{self.high_watermark}"
            )
        if self.parallelism < 1:
            raise ConfigError("parallelism must be >= 1")
        if self.scale < 1:
            raise ConfigError("scale must be >= 1")
        if not 0.0 <= self.relaunch_fixed_fraction < 1.0:
            raise ConfigError("relaunch_fixed_fraction must be in [0, 1)")

    @property
    def low_watermark_bytes(self) -> int:
        """Free-byte threshold that triggers direct reclaim."""
        return int(self.dram_bytes * self.low_watermark)

    @property
    def high_watermark_bytes(self) -> int:
        """Free-byte level background reclaim restores."""
        return int(self.dram_bytes * self.high_watermark)


def pixel7_platform(
    dram_gb: float = 2.5,
    zpool_gb: float = 3.0,
    swap_gb: float = 8.0,
    scale: int = SCALE_FACTOR,
) -> PlatformConfig:
    """Platform constants for the paper's Pixel 7 testbed.

    The phone has 12 GB of DRAM; after the OS, file cache, and the
    foreground app's reservation, roughly ``dram_gb`` is available to
    background anonymous data — small enough that ten concurrent apps
    (~4.9 GB of anonymous data, Table 1) create the memory pressure the
    paper studies.  The zpool default is the paper's ``S`` = 3 GB.
    """
    return PlatformConfig(
        dram_bytes=int(dram_gb * GIB) // scale,
        zpool_bytes=int(zpool_gb * GIB) // scale,
        swap_bytes=int(swap_gb * GIB) // scale,
        scale=scale,
    )


#: Kill policies the pressure lifecycle supports (SWAM, PAPERS.md):
#: ``lmk`` kills as soon as full pressure is reached (Android lowmemory-
#: killer), ``swap`` never kills and sheds load through escalated reclaim
#: and counted drops, ``hybrid`` escalates swap first and kills only once
#: reclaim boost is already saturated (the SWAM-style middle ground).
PRESSURE_POLICIES = ("lmk", "swap", "hybrid")


@dataclass(frozen=True)
class PressureConfig:
    """Tunables of the memory-pressure lifecycle (:mod:`repro.lmk`).

    Attributes:
        policy: Kill policy — one of :data:`PRESSURE_POLICIES`.
        some_threshold: PSI ("some") level at which kswapd starts
            escalating its reclaim batch.
        full_threshold: PSI level at which the killer may fire
            (``lmk`` immediately; ``hybrid`` only once the kswapd boost
            is saturated).
        kswapd_boost_max: Maximum multiplier applied to the kswapd
            reclaim batch while pressure stays above ``some_threshold``.
        oom_priority_weight: Weight of the app-class score in the
            oom-score formula.
        oom_recency_weight: Weight of the LRU age (0 = most recently
            used app, n-1 = least) in the oom-score formula.
        min_resident_apps: Number of live (not-yet-killed) apps the
            killer must always leave standing.
    """

    policy: str = "hybrid"
    some_threshold: float = 0.10
    full_threshold: float = 0.40
    kswapd_boost_max: int = 4
    oom_priority_weight: float = 10.0
    oom_recency_weight: float = 1.0
    min_resident_apps: int = 1

    def __post_init__(self) -> None:
        if self.policy not in PRESSURE_POLICIES:
            raise ConfigError(
                f"policy must be one of {PRESSURE_POLICIES}, got "
                f"{self.policy!r}"
            )
        if not 0.0 <= self.some_threshold <= self.full_threshold <= 1.0:
            raise ConfigError(
                "pressure thresholds must satisfy 0 <= some <= full <= 1, "
                f"got {self.some_threshold}/{self.full_threshold}"
            )
        if self.kswapd_boost_max < 1:
            raise ConfigError(
                f"kswapd_boost_max must be >= 1, got {self.kswapd_boost_max}"
            )
        for name in ("oom_priority_weight", "oom_recency_weight"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ConfigError(
                    f"{name} must be finite and >= 0, got {value}"
                )
        if self.min_resident_apps < 0:
            raise ConfigError(
                f"min_resident_apps cannot be negative, got "
                f"{self.min_resident_apps}"
            )


#: Chunk sizes the paper sweeps (Table 5).
SMALL_SIZES = (256, 512, 1 * KIB)
MEDIUM_SIZES = (2 * KIB, 4 * KIB)
LARGE_SIZES = (16 * KIB, 32 * KIB)


@dataclass(frozen=True)
class AriadneConfig:
    """Ariadne's tunables (paper Table 5).

    Attributes:
        small_size: Compression chunk size for the hot list.
        medium_size: Compression chunk size for the warm list.
        large_size: Compression chunk size for the cold list (multiples
            of the page size group several pages into one chunk).
        scenario: EHL or AL relaunch data placement.
        predecomp_enabled: Whether PreDecomp runs (ablation knob).
        predecomp_depth: Pages pre-decompressed per trigger (the paper
            uses one; Table 3 shows deeper prefetch pollutes).
        staging_pages: Capacity of the pre-decompression FIFO buffer.
        writeback_enabled: Whether compressed cold chunks overflow to
            flash (the ZSWAP role; ablation knob).
        writeback_threshold: zpool utilization that triggers writeback.
        hotness_org_enabled: Whether HotnessOrg replaces LRU (ablation
            knob; off = baseline two-list organizer).
    """

    small_size: int = 1 * KIB
    medium_size: int = 2 * KIB
    large_size: int = 16 * KIB
    scenario: RelaunchScenario = RelaunchScenario.EHL
    predecomp_enabled: bool = True
    predecomp_depth: int = 1
    staging_pages: int = 8
    writeback_enabled: bool = True
    writeback_threshold: float = 0.85
    hotness_org_enabled: bool = True

    def __post_init__(self) -> None:
        if not 64 <= self.small_size <= PAGE_SIZE:
            raise ConfigError(
                f"small_size must be in [64, {PAGE_SIZE}], got {self.small_size}"
            )
        if not self.small_size <= self.medium_size <= PAGE_SIZE:
            raise ConfigError(
                "medium_size must lie between small_size and one page, got "
                f"{self.medium_size}"
            )
        if self.large_size < PAGE_SIZE or self.large_size % PAGE_SIZE != 0:
            if self.large_size < self.medium_size:
                raise ConfigError(
                    f"large_size must be >= medium_size, got {self.large_size}"
                )
        if self.large_size > 128 * KIB:
            raise ConfigError(
                f"large_size above 128K is outside the studied range "
                f"(got {self.large_size}); Section 6.3 advises against it"
            )
        if self.predecomp_depth < 0:
            raise ConfigError("predecomp_depth cannot be negative")
        if self.staging_pages < 1:
            raise ConfigError("staging_pages must be >= 1")
        if not 0.0 < self.writeback_threshold <= 1.0:
            raise ConfigError("writeback_threshold must be in (0, 1]")

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``Ariadne-EHL-1K-2K-16K``."""
        return (
            f"Ariadne-{self.scenario.value}-{fmt_chunk(self.small_size)}-"
            f"{fmt_chunk(self.medium_size)}-{fmt_chunk(self.large_size)}"
        )

    @property
    def cold_group_pages(self) -> int:
        """How many pages a cold (LargeSize) chunk groups together."""
        return max(1, self.large_size // PAGE_SIZE)


@dataclass(frozen=True)
class ZswapConfig:
    """Tunables of the zswap writeback tier (:mod:`repro.core.zswap`).

    Models the Linux zswap design point: pages compress into the zpool
    as under ZRAM, but an LRU shrinker migrates the coldest compressed
    entries to flash in batches, and faults from flash read the
    neighboring slots of the same writeback batch ahead of demand.

    Attributes:
        swap_cluster_max: Largest reclaim batch one shrinker pass writes
            back (the kernel's ``SWAP_CLUSTER_MAX``, 32).  Batch members
            land in contiguous swap slots, which is what makes the
            readahead window sequential on the device.
        page_cluster: Readahead window exponent, as in
            ``/proc/sys/vm/page-cluster``: a fault from flash
            speculatively decompresses the other live slots inside its
            aligned ``2**page_cluster`` window of the same batch.
            ``0`` disables readahead.
        n_devices: Equal-priority swap devices; writeback batches
            round-robin across them (the kernel's same-priority
            swap-device striping).
        pool_threshold: zpool utilization above which the shrinker runs
            (the ``zswap accept_thr_percent`` knob, as a fraction).
        staging_pages: Capacity of the FIFO buffer holding readahead
            decompressions until the app touches them (or they age out
            and are recompressed as wasted work).
    """

    swap_cluster_max: int = 32
    page_cluster: int = 3
    n_devices: int = 1
    pool_threshold: float = 0.85
    staging_pages: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.swap_cluster_max <= 512:
            raise ConfigError(
                f"swap_cluster_max must be in [1, 512], got "
                f"{self.swap_cluster_max}"
            )
        if not 0 <= self.page_cluster <= 6:
            raise ConfigError(
                f"page_cluster must be in [0, 6] (window 1..64), got "
                f"{self.page_cluster}"
            )
        if not 1 <= self.n_devices <= 8:
            raise ConfigError(
                f"n_devices must be in [1, 8], got {self.n_devices}"
            )
        if not 0.0 < self.pool_threshold <= 1.0:
            raise ConfigError("pool_threshold must be in (0, 1]")
        if self.staging_pages < 1:
            raise ConfigError("staging_pages must be >= 1")

    @property
    def readahead_window(self) -> int:
        """Slots covered by one readahead window (``2**page_cluster``)."""
        return 1 << self.page_cluster

    @property
    def label(self) -> str:
        """Stable column/cell name: ``ZSWAP`` for the defaults, else the
        knobs spelled out (``ZSWAP-c8-p0-d2``)."""
        if self == ZswapConfig():
            return "ZSWAP"
        return (
            f"ZSWAP-c{self.swap_cluster_max}-p{self.page_cluster}-"
            f"d{self.n_devices}"
        )


#: The configurations highlighted in the paper's figures.
PAPER_CONFIGS: tuple[AriadneConfig, ...] = (
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.EHL),
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.AL),
    AriadneConfig(small_size=256, medium_size=2 * KIB, large_size=32 * KIB,
                  scenario=RelaunchScenario.AL),
    AriadneConfig(small_size=1 * KIB, medium_size=4 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.EHL),
    AriadneConfig(small_size=512, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.AL),
)
