"""The SWAP baseline: uncompressed pages to flash-backed swap.

Section 2.2's flash-memory-based swap scheme: victims chosen by LRU are
written raw to the swap area (high flash wear, low CPU — the device does
the work and the CPU is yielded), and every fault pays a flash read on
the critical path (the long relaunch latencies of Figure 2).
"""

from __future__ import annotations

from ..errors import FlashFullError
from ..mem.columnar import make_two_list_organizer
from ..mem.organizer import DataOrganizer
from ..mem.page import Hotness, Page, PageLocation
from ..metrics import APP, AccessBatchSummary, LatencyBreakdown
from ..units import PAGE_SIZE
from .context import SchemeContext
from .scheme import AccessResult, SwapScheme
from .stored import StoredChunk


class FlashSwapScheme(SwapScheme):
    """Flash-backed swap of uncompressed anonymous pages."""

    name = "SWAP"
    uses_zpool = False

    def __init__(self, ctx: SchemeContext) -> None:
        super().__init__(ctx)

    def _make_organizer(self, uid: int, hot_seed_limit: int) -> DataOrganizer:
        return make_two_list_organizer(uid)

    def access_batch(
        self, pages: list[Page], thread: str = APP
    ) -> AccessBatchSummary:
        """Batched replay: every flash fault goes through the exact
        per-page path (a swap-in admits only the faulted page, but its
        direct reclaim can evict later batch pages — which bumps the
        eviction epoch, keeping the probe-free path honest), so the
        generic epoch-gated split applies unchanged."""
        return self._access_batch_runs(pages, thread)

    def _evict(self, page: Page, thread: str) -> int:
        """Write one raw page to swap.

        The write itself is asynchronous (the page sits in the swap cache
        until the I/O completes), so the synchronous cost is only the
        submission CPU — which is why SWAP's kswapd CPU is low (Figure 3).
        """
        ctx = self.ctx
        platform = ctx.platform
        try:
            stored = self._flash_store_with_retry(
                PAGE_SIZE, sequential=False, thread=thread
            )
        except FlashFullError:
            ctx.counters.incr("swap_area_full")
            self._lost_pfns[page.pfn] = page.uid
            ctx.counters.incr("pages_lost")
            return 0
        if stored is None:
            # Unrecoverable injected write fault: the page cannot reach
            # swap, so it degrades to lost (the next access pays a cold
            # refault) instead of aborting reclaim.
            self._lost_pfns[page.pfn] = page.uid
            ctx.counters.incr("pages_lost")
            return 0
        slot, _write_ns, backoff_ns = stored
        submit_ns = platform.swap_submit_ns * platform.scale
        self._charge(thread, "swap_out", submit_ns)
        chunk = StoredChunk(
            chunk_id=self._next_chunk_id(),
            uid=page.uid,
            pages=(page,),
            chunk_size=PAGE_SIZE,
            codec_name="null",
            stored_bytes=PAGE_SIZE,
            hotness_at_compress=self.organizer_hotness_or_cold(page),
            location=PageLocation.FLASH,
            flash_slot=slot.slot_id,
        )
        page.location = PageLocation.FLASH
        self._register_chunk(chunk)
        ctx.counters.incr("pages_swapped_out")
        # Retry backoff is a real wait (not parallelizable work), so it
        # lands undivided on the synchronous cost; zero without faults.
        return self._stall(submit_ns) + backoff_ns

    def organizer_hotness_or_cold(self, page: Page) -> Hotness:
        """Victims leave their lists before eviction; best effort label."""
        return Hotness.COLD

    def _fault_in(self, page: Page, chunk: StoredChunk, thread: str) -> AccessResult:
        ctx = self.ctx
        platform = ctx.platform
        breakdown = LatencyBreakdown()
        stall = 0
        # Read the page back from flash: one simulated page is `scale`
        # random 4 KB reads, overlapped only as far as the queue allows.
        # An unrecoverable injected fault raises ChunkLostError, which
        # the access dispatcher turns into a counted cold refault.
        slot, read_ns, backoff_ns = self._flash_load_with_retry(chunk, thread)
        ctx.flash_swap.free(chunk.flash_slot)
        ctx.counters.incr("flash_reads")
        read_stall = read_ns // platform.flash_queue_depth
        stall += read_stall + backoff_ns
        breakdown.flash_read_ns += read_stall
        breakdown.other_ns += backoff_ns
        self._charge(thread, "flash_read", platform.swap_submit_ns * platform.scale)
        self._unregister_chunk(chunk)
        admit_stall, admit_bd = self._admit_pages(chunk, page, thread)
        stall += admit_stall
        breakdown.add(admit_bd)
        return AccessResult(
            stall_ns=stall, source=PageLocation.FLASH, breakdown=breakdown
        )
