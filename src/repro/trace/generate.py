"""Synthetic trace generation calibrated to the paper's characterization.

For each application the generator produces:

- pages in allocation order, with creation times following the measured
  anonymous-data growth curve (Table 1);
- per-session relaunch working sets whose consecutive-session overlap
  matches the app's Hot Data Similarity and whose drop-outs reappear in
  the next session's execution set at the Reused Data rate (Figure 5);
- relaunch access *orders* built from contiguous runs so that, once the
  baseline scheme has laid pages out in zpool in eviction order, the
  probability of consecutive-sector accesses matches Table 3;
- ground-truth hotness labels: HOT if a page is in any relaunch set,
  WARM if only in execution sets, COLD otherwise (Section 1's
  classification).

Hot pages are the *launch-time* allocations (the first pages an app
creates), which is what makes the stock LRU policy compress hot data
first (Figure 4): launch pages are the least recently used by the time
memory pressure arrives.
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from ..mem.page import Hotness
from ..rng import derive_rng
from ..units import MIB, PAGE_SIZE, SCALE_FACTOR
from ..workload.payload import PayloadGenerator
from ..workload.profiles import APP_CATALOG, AppProfile, solve_run_mix
from .records import AppTrace, PageRecord, SessionRecord, WorkloadTrace

#: Default number of relaunch sessions ("each application is relaunched
#: five times", Section 3).
DEFAULT_SESSIONS = 5

#: Bumped whenever generation semantics change, so persistently cached
#: traces (see :mod:`repro.cache`) can never go stale silently.
GENERATOR_VERSION = 1

#: Hot-set churn happens in contiguous spans (whole UI modules/activities
#: enter or leave the working set together), which preserves the sector
#: adjacency that PreDecomp exploits.
_CHURN_SPAN = 12


class TraceGenerator:
    """Deterministic workload-trace factory.

    Args:
        seed: Master seed; every app derives an independent substream, so
            adding an app to a workload does not perturb the others.
    """

    def __init__(self, seed: int = 2025) -> None:
        self.seed = seed

    # -- public API -------------------------------------------------------------

    def generate_app(
        self,
        profile: AppProfile,
        n_sessions: int = DEFAULT_SESSIONS,
        duration_s: float = 300.0,
    ) -> AppTrace:
        """Generate one application's trace.

        Args:
            profile: Calibration profile.
            n_sessions: Number of relaunch sessions to synthesize.
            duration_s: Execution time before the first backgrounding;
                determines the anonymous-data volume (growth curve).
        """
        if n_sessions < 1:
            raise ConfigError(f"n_sessions must be >= 1, got {n_sessions}")
        rng = derive_rng(self.seed, f"app:{profile.name}")
        pages = self._generate_pages(profile, duration_s, rng)
        n_total = len(pages)
        n_hot = max(8, round(profile.hot_fraction * n_total))
        n_warm = max(8, round(profile.warm_fraction * n_total))
        pfns = [record.pfn for record in pages]
        sessions, hot_pfns, warm_pfns = self._generate_sessions(
            profile, pfns, n_hot, n_warm, n_sessions, rng
        )
        labeled = tuple(
            _with_hotness(record, hot_pfns, warm_pfns) for record in pages
        )
        return AppTrace(
            profile=profile,
            pages=labeled,
            launch_page_count=n_hot,
            sessions=tuple(sessions),
        )

    def generate_workload(
        self,
        profiles: tuple[AppProfile, ...] = APP_CATALOG,
        n_sessions: int = DEFAULT_SESSIONS,
        duration_s: float = 300.0,
    ) -> WorkloadTrace:
        """Generate a multi-application workload trace."""
        apps = tuple(
            self.generate_app(profile, n_sessions, duration_s)
            for profile in profiles
        )
        return WorkloadTrace(seed=self.seed, apps=apps)

    # -- pages ------------------------------------------------------------------

    def _generate_pages(
        self, profile: AppProfile, duration_s: float, rng: random.Random
    ) -> list[PageRecord]:
        total_mb = profile.anon_mb_at(duration_s)
        sim_bytes = int(total_mb * MIB / SCALE_FACTOR)
        n_total = max(32, sim_bytes // PAGE_SIZE)
        payloads = PayloadGenerator(profile, derive_rng(self.seed, f"pay:{profile.name}"))
        records = []
        for i in range(n_total):
            payload, kind = payloads.generate_page()
            target_mb = (i + 1) / n_total * total_mb
            records.append(
                PageRecord(
                    pfn=profile.uid * 1_000_000 + i,
                    uid=profile.uid,
                    kind=kind,
                    payload=payload,
                    true_hotness=Hotness.COLD,  # relabeled after sessions
                    created_at_s=_time_for_volume(profile, target_mb, duration_s),
                )
            )
        return records

    # -- sessions ---------------------------------------------------------------

    def _generate_sessions(
        self,
        profile: AppProfile,
        pfns: list[int],
        n_hot: int,
        n_warm: int,
        n_sessions: int,
        rng: random.Random,
    ) -> tuple[list[SessionRecord], set[int], set[int]]:
        n_total = len(pfns)
        n_hot = min(n_hot, n_total)
        launch_set = pfns[:n_hot]
        # Reservoir of later pages that churn can pull into the hot set;
        # starts right after the base warm pool.  Churn consumes whole
        # contiguous spans (UI modules enter the working set together,
        # preserving sector adjacency) but the spans themselves are drawn
        # from *random* reservoir positions — tomorrow's hot pages are
        # scattered through the cold data, not conveniently at its front.
        warm_pool = pfns[n_hot : min(n_hot + n_warm, n_total)]
        reservoir_start = min(n_hot + n_warm, n_total)
        reservoir = pfns[reservoir_start:]
        reservoir_spans = [
            reservoir[i : i + _CHURN_SPAN]
            for i in range(0, len(reservoir), _CHURN_SPAN)
        ]
        rng.shuffle(reservoir_spans)
        reservoir_cursor = 0

        # Hot-set churn fragments some runs (a dropped span splits its
        # neighbours), costing a few points of measured adjacency; solve
        # the run mix against slightly inflated targets to compensate.
        p2_goal = min(0.97, profile.locality_p2 + 0.04)
        p4_goal = min(p2_goal, profile.locality_p4 + 0.08)
        run_w, run_k = solve_run_mix(p2_goal, p4_goal)
        sessions: list[SessionRecord] = []
        all_hot: set[int] = set()
        all_warm: set[int] = set()
        current_hot = list(launch_set)

        for index in range(n_sessions):
            if index > 0:
                current_hot, dropped, reservoir_cursor = self._churn_hot_set(
                    current_hot, profile, reservoir_spans, reservoir_cursor, rng
                )
            else:
                dropped = []
            relaunch_order = _order_with_runs(current_hot, run_w, run_k, rng)
            execution = self._execution_set(
                profile, dropped, warm_pool, set(current_hot), n_warm, rng
            )
            sessions.append(
                SessionRecord(
                    index=index,
                    relaunch_pfns=tuple(relaunch_order),
                    execution_pfns=tuple(execution),
                )
            )
            all_hot.update(current_hot)
            all_warm.update(execution)
        all_warm -= all_hot
        return sessions, all_hot, all_warm

    def _churn_hot_set(
        self,
        previous: list[int],
        profile: AppProfile,
        reservoir_spans: list[list[int]],
        cursor: int,
        rng: random.Random,
    ) -> tuple[list[int], list[int], int]:
        """Evolve the hot set: drop contiguous spans, add fresh spans.

        Keeps ``|new| == |previous|`` and overlap ``== hot_similarity`` in
        expectation, with churn in spans so sector adjacency survives.
        """
        n_hot = len(previous)
        n_drop = round((1.0 - profile.hot_similarity) * n_hot)
        ordered = sorted(previous)
        dropped: list[int] = []
        kept = list(ordered)
        while len(dropped) < n_drop and kept:
            span = min(_CHURN_SPAN, n_drop - len(dropped), len(kept))
            start = rng.randrange(max(1, len(kept) - span + 1))
            dropped.extend(kept[start : start + span])
            del kept[start : start + span]
        added: list[int] = []
        while len(added) < len(dropped) and cursor < len(reservoir_spans):
            need = len(dropped) - len(added)
            added.extend(reservoir_spans[cursor][:need])
            cursor += 1
        if len(added) < len(dropped):
            # Reservoir exhausted: recycle the oldest dropped pages.
            added.extend(dropped[: len(dropped) - len(added)])
        return kept + added, dropped, cursor

    def _execution_set(
        self,
        profile: AppProfile,
        dropped: list[int],
        warm_pool: list[int],
        hot_now: set[int],
        n_warm: int,
        rng: random.Random,
    ) -> list[int]:
        """Build the execution (warm) access list for one session.

        Includes enough of the previous session's dropped hot pages that
        Reused Data (dropped-or-kept hot data found in this session's
        hot+warm sets) hits the profile target.
        """
        similarity = profile.hot_similarity
        reuse_rate = 0.0
        if profile.reused_fraction > similarity and similarity < 1.0:
            reuse_rate = (profile.reused_fraction - similarity) / (1.0 - similarity)
        must_include = [pfn for pfn in dropped if rng.random() < reuse_rate]
        execution = list(must_include)
        candidates = [pfn for pfn in warm_pool if pfn not in hot_now]
        rng.shuffle(candidates)
        for pfn in candidates:
            if len(execution) >= n_warm:
                break
            if pfn not in must_include:
                execution.append(pfn)
        rng.shuffle(execution)
        return execution


# -- helpers --------------------------------------------------------------------


def _with_hotness(
    record: PageRecord, hot_pfns: set[int], warm_pfns: set[int]
) -> PageRecord:
    """Relabel a page record with its ground-truth hotness."""
    if record.pfn in hot_pfns:
        hotness = Hotness.HOT
    elif record.pfn in warm_pfns:
        hotness = Hotness.WARM
    else:
        hotness = Hotness.COLD
    return PageRecord(
        pfn=record.pfn,
        uid=record.uid,
        kind=record.kind,
        payload=record.payload,
        true_hotness=hotness,
        created_at_s=record.created_at_s,
    )


def _order_with_runs(
    hot_pfns: list[int], run_w: float, run_k: int, rng: random.Random
) -> list[int]:
    """Arrange a hot set into an access order made of sequential runs.

    Sorts the set, cuts it into runs (length 1 with probability ``run_w``,
    else ``run_k``), and shuffles the run order.  Pages adjacent within a
    run are adjacent in allocation order, hence (under eviction-order
    sector assignment) adjacent in zpool — the locality of Insight 3.
    """
    ordered = sorted(hot_pfns)
    runs: list[list[int]] = []
    i = 0
    while i < len(ordered):
        length = 1 if rng.random() < run_w else run_k
        runs.append(ordered[i : i + length])
        i += length
    rng.shuffle(runs)
    return [pfn for run in runs for pfn in run]


def _time_for_volume(
    profile: AppProfile, target_mb: float, duration_s: float
) -> float:
    """Invert the anonymous-data growth curve (when did volume hit X MB?)."""
    import math

    if target_mb <= 0:
        return 0.0
    v10 = profile.anon_mb_10s
    if target_mb <= v10:
        return 10.0 * target_mb / v10
    v300 = profile.anon_mb_5min
    if target_mb >= v300:
        return min(duration_s, 300.0)
    span = v300 - v10
    progress = (target_mb - v10) / span
    return min(duration_s, 10.0 * math.exp(progress * math.log(30.0)))
