"""Workload traces: generation, records, analysis, and persistence.

A trace fixes everything stochastic about a workload — page payloads,
relaunch working sets, access orders — so that every scheme is evaluated
on *identical* inputs, which is exactly why the paper collected traces
instead of re-running live apps (Section 5, "Using mobile workload traces
makes our methodology and results reproducible").
"""

from .analyze import (
    consecutive_probability,
    hot_similarity_series,
    hotness_mix_by_part,
    reused_fraction_series,
)
from .generate import TraceGenerator
from .io import load_trace, save_trace
from .records import AppTrace, PageRecord, SessionRecord, WorkloadTrace

__all__ = [
    "AppTrace",
    "PageRecord",
    "SessionRecord",
    "TraceGenerator",
    "WorkloadTrace",
    "consecutive_probability",
    "hot_similarity_series",
    "hotness_mix_by_part",
    "load_trace",
    "reused_fraction_series",
    "save_trace",
]
