"""Trace and run analysis: the measurements behind Figures 4/5 and Table 3.

These functions operate on plain data (traces, sequences of sector
numbers, eviction orders), so they can score both generated traces and
live simulation output.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import TraceFormatError
from ..mem.page import Hotness
from .records import AppTrace


def hot_similarity_series(app_trace: AppTrace) -> list[float]:
    """Hot Data Similarity between each pair of consecutive relaunches.

    Paper definition (Section 3): identical hot data between two
    relaunches divided by the total hot data of the *second* relaunch.
    """
    sessions = app_trace.sessions
    series = []
    for prev, curr in zip(sessions, sessions[1:]):
        if not curr.hot_set:
            raise TraceFormatError(
                f"{app_trace.name}: session {curr.index} has an empty hot set"
            )
        overlap = len(prev.hot_set & curr.hot_set)
        series.append(overlap / len(curr.hot_set))
    return series


def reused_fraction_series(app_trace: AppTrace) -> list[float]:
    """Reused Data between each pair of consecutive relaunches.

    Paper definition: the fraction of the first relaunch's hot data that
    appears in the hot *or warm* sets of the second relaunch.
    """
    sessions = app_trace.sessions
    series = []
    for prev, curr in zip(sessions, sessions[1:]):
        if not prev.hot_set:
            raise TraceFormatError(
                f"{app_trace.name}: session {prev.index} has an empty hot set"
            )
        later = curr.hot_set | curr.warm_set
        series.append(len(prev.hot_set & later) / len(prev.hot_set))
    return series


def consecutive_probability(sectors: Sequence[int], window: int) -> float:
    """Probability of accessing ``window`` consecutive sectors.

    Table 3's metric: the fraction of length-``window`` access windows in
    which every step moves to the immediately next sector.
    """
    if window < 2:
        raise TraceFormatError(f"window must be >= 2, got {window}")
    n_windows = len(sectors) - window + 1
    if n_windows <= 0:
        return 0.0
    hits = 0
    for i in range(n_windows):
        if all(
            sectors[i + j + 1] == sectors[i + j] + 1 for j in range(window - 1)
        ):
            hits += 1
    return hits / n_windows


def hotness_mix_by_part(
    hotness_in_compression_order: Sequence[Hotness], n_parts: int = 10
) -> list[dict[Hotness, float]]:
    """Figure 4's measurement: hot/warm/cold proportions per part.

    Args:
        hotness_in_compression_order: Ground-truth hotness of each
            compressed page, ordered by compression time (part 0 holds
            the first-compressed pages).
        n_parts: Number of equal parts (the paper uses ten).

    Returns:
        One dict per part mapping hotness level to its proportion.
    """
    total = len(hotness_in_compression_order)
    if total == 0:
        raise TraceFormatError("no compressed pages to analyze")
    if n_parts < 1:
        raise TraceFormatError(f"n_parts must be >= 1, got {n_parts}")
    boundaries = [round(total * i / n_parts) for i in range(n_parts + 1)]
    mixes = []
    for start, end in zip(boundaries, boundaries[1:]):
        part = hotness_in_compression_order[start:end]
        count = max(1, len(part))
        mixes.append(
            {
                level: sum(1 for h in part if h is level) / count
                for level in Hotness
            }
        )
    return mixes
