"""Trace persistence.

Traces are saved as a two-part container: a JSON header (profiles,
session structure, page metadata) followed by a zlib-compressed blob of
concatenated page payloads.  The header carries offsets into the blob,
so loading never guesses.  The format is versioned; loaders reject
versions they do not understand rather than misparse them.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

from ..errors import TraceFormatError
from ..mem.page import Hotness, PageKind
from ..units import PAGE_SIZE
from ..workload.profiles import AppProfile
from .records import AppTrace, PageRecord, SessionRecord, WorkloadTrace

_MAGIC = b"ARTRACE1"
_VERSION = 1


def save_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Serialize a workload trace to ``path``."""
    payloads = bytearray()
    header: dict = {"version": _VERSION, "seed": trace.seed, "apps": []}
    for app_trace in trace.apps:
        app_entry = {
            "profile": app_trace.profile.__dict__,
            "launch_page_count": app_trace.launch_page_count,
            "pages": [],
            "sessions": [
                {
                    "index": s.index,
                    "relaunch": list(s.relaunch_pfns),
                    "execution": list(s.execution_pfns),
                }
                for s in app_trace.sessions
            ],
        }
        for record in app_trace.pages:
            app_entry["pages"].append(
                {
                    "pfn": record.pfn,
                    "uid": record.uid,
                    "kind": record.kind.value,
                    "hotness": record.true_hotness.value,
                    "created_at_s": record.created_at_s,
                    "offset": len(payloads),
                }
            )
            payloads += record.payload
        header["apps"].append(app_entry)
    header_bytes = json.dumps(header).encode("utf-8")
    blob = zlib.compress(bytes(payloads), level=6)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(struct.pack("<QQ", len(header_bytes), len(blob)))
        f.write(header_bytes)
        f.write(blob)


def load_trace(path: str | Path) -> WorkloadTrace:
    """Deserialize a workload trace written by :func:`save_trace`."""
    with open(path, "rb") as f:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: not a trace file (bad magic {magic!r})")
        sizes = f.read(16)
        if len(sizes) != 16:
            raise TraceFormatError(f"{path}: truncated size header")
        header_len, blob_len = struct.unpack("<QQ", sizes)
        header_bytes = f.read(header_len)
        blob = f.read(blob_len)
    if len(header_bytes) != header_len or len(blob) != blob_len:
        raise TraceFormatError(f"{path}: truncated trace file")
    try:
        header = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: corrupt header: {exc}") from exc
    if header.get("version") != _VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {header.get('version')!r}"
        )
    payloads = zlib.decompress(blob)
    apps = []
    for app_entry in header["apps"]:
        profile = AppProfile(**app_entry["profile"])
        pages = []
        for page_entry in app_entry["pages"]:
            offset = page_entry["offset"]
            payload = payloads[offset : offset + PAGE_SIZE]
            pages.append(
                PageRecord(
                    pfn=page_entry["pfn"],
                    uid=page_entry["uid"],
                    kind=PageKind(page_entry["kind"]),
                    payload=payload,
                    true_hotness=Hotness(page_entry["hotness"]),
                    created_at_s=page_entry["created_at_s"],
                )
            )
        sessions = tuple(
            SessionRecord(
                index=s["index"],
                relaunch_pfns=tuple(s["relaunch"]),
                execution_pfns=tuple(s["execution"]),
            )
            for s in app_entry["sessions"]
        )
        apps.append(
            AppTrace(
                profile=profile,
                pages=tuple(pages),
                launch_page_count=app_entry["launch_page_count"],
                sessions=sessions,
            )
        )
    return WorkloadTrace(seed=header["seed"], apps=tuple(apps))
