"""Trace record types.

The paper's traces hold (PFN, ZRAM sector, UID, page data) tuples plus
the relaunch structure.  Ours are organized per application:

- :class:`PageRecord` — one page's identity, payload, creation time and
  ground-truth hotness;
- :class:`SessionRecord` — one relaunch: the ordered page accesses of the
  relaunch itself plus the pages touched during subsequent execution;
- :class:`AppTrace` — pages (in allocation order) and sessions of one app;
- :class:`WorkloadTrace` — the full multi-app workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceFormatError
from ..mem.page import Hotness, Page, PageKind
from ..units import PAGE_SIZE
from ..workload.profiles import AppProfile


@dataclass(frozen=True)
class PageRecord:
    """Immutable description of one anonymous page in a trace."""

    pfn: int
    uid: int
    kind: PageKind
    payload: bytes
    true_hotness: Hotness
    created_at_s: float

    def __post_init__(self) -> None:
        if len(self.payload) != PAGE_SIZE:
            raise TraceFormatError(
                f"page {self.pfn}: payload is {len(self.payload)} bytes, "
                f"expected {PAGE_SIZE}"
            )

    def digest(self) -> bytes:
        """Cached content digest of this page's payload.

        Computed once per process (records are immutable and live for
        the process in the cached trace) and copied into every
        materialized :class:`Page`, so no simulation run ever re-hashes
        a payload the trace already knows.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            from ..compression.chunking import payload_digest

            cached = payload_digest(self.payload)
            object.__setattr__(self, "_digest", cached)
        return cached

    def materialize(self) -> Page:
        """Create a fresh mutable :class:`Page` for a simulation run."""
        page = Page(
            pfn=self.pfn,
            uid=self.uid,
            kind=self.kind,
            payload=self.payload,
            true_hotness=self.true_hotness,
        )
        page._content_digest = self.digest()
        return page


@dataclass(frozen=True)
class SessionRecord:
    """One relaunch session of an application.

    Attributes:
        index: Session number (0 is the first relaunch after launch).
        relaunch_pfns: Pages accessed during the relaunch, in access
            order (this order carries the zpool locality of Insight 3).
        execution_pfns: Pages accessed during post-relaunch execution,
            in access order.
    """

    index: int
    relaunch_pfns: tuple[int, ...]
    execution_pfns: tuple[int, ...]

    def execution_order(self) -> tuple[int, ...]:
        """Execution pfns in address order (the launch warm-up pass).

        ``MobileSystem.launch_app`` touches the first session's
        execution set in address order to decorrelate the initial pass
        from the session's own access order.  Memoized like
        :meth:`AppTrace.creation_order` — the order is a pure function
        of the immutable record, and every system built over this trace
        replays it.
        """
        cached = getattr(self, "_execution_order", None)
        if cached is None:
            cached = tuple(sorted(self.execution_pfns))
            object.__setattr__(self, "_execution_order", cached)
        return cached

    @property
    def hot_set(self) -> frozenset[int]:
        """The session's hot working set."""
        return frozenset(self.relaunch_pfns)

    @property
    def warm_set(self) -> frozenset[int]:
        """The session's execution (warm) working set."""
        return frozenset(self.execution_pfns)


@dataclass(frozen=True)
class AppTrace:
    """All trace data for one application."""

    profile: AppProfile
    pages: tuple[PageRecord, ...]
    launch_page_count: int
    sessions: tuple[SessionRecord, ...]

    def __post_init__(self) -> None:
        if self.launch_page_count > len(self.pages):
            raise TraceFormatError(
                f"{self.profile.name}: launch_page_count "
                f"{self.launch_page_count} exceeds page count {len(self.pages)}"
            )
        known = {page.pfn for page in self.pages}
        for session in self.sessions:
            for pfn in session.relaunch_pfns + session.execution_pfns:
                if pfn not in known:
                    raise TraceFormatError(
                        f"{self.profile.name}: session {session.index} "
                        f"references unknown pfn {pfn}"
                    )

    @property
    def uid(self) -> int:
        """Owning application id."""
        return self.profile.uid

    @property
    def name(self) -> str:
        """Application name."""
        return self.profile.name

    def materialize(self) -> dict[int, Page]:
        """Fresh mutable pages for one simulation run, keyed by pfn."""
        return {record.pfn: record.materialize() for record in self.pages}

    def creation_order(self) -> tuple[PageRecord, ...]:
        """Pages in allocation-replay order: ``(created_at_s, pfn)``.

        This is the coalesced per-(uid, timestamp) run the launch replay
        feeds to ``SwapScheme.on_pages_created`` in one call: batched
        admission is number-invariant by construction (the scheme falls
        back to the exact per-page walk under pressure), so the whole
        launch stream is one maximal run.  Memoized on the trace —
        sessions replay the same launch many times per experiment, and
        the order is a pure function of the immutable records.
        """
        cached = getattr(self, "_creation_order", None)
        if cached is None:
            cached = tuple(
                sorted(self.pages, key=lambda r: (r.created_at_s, r.pfn))
            )
            # Frozen dataclass: the memo slot is set through object
            # directly; it is not a field, so eq/hash/repr semantics
            # of the trace are untouched.
            object.__setattr__(self, "_creation_order", cached)
        return cached

    def pages_created_by(self, seconds: float) -> int:
        """How many pages exist ``seconds`` after launch."""
        return sum(1 for record in self.pages if record.created_at_s <= seconds)

    def total_bytes(self) -> int:
        """Total anonymous bytes in this trace (simulated scale)."""
        return len(self.pages) * PAGE_SIZE


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete multi-application workload."""

    seed: int
    apps: tuple[AppTrace, ...]

    def app(self, name: str) -> AppTrace:
        """Look up one application's trace by name."""
        for app_trace in self.apps:
            if app_trace.name == name:
                return app_trace
        raise TraceFormatError(
            f"no app named {name!r} in trace; "
            f"have {[a.name for a in self.apps]}"
        )

    def app_by_uid(self, uid: int) -> AppTrace:
        """Look up one application's trace by uid."""
        for app_trace in self.apps:
            if app_trace.uid == uid:
                return app_trace
        raise TraceFormatError(f"no app with uid {uid} in trace")

    @property
    def names(self) -> list[str]:
        """Application names in trace order."""
        return [app_trace.name for app_trace in self.apps]
