"""Deterministic random-number helpers.

Every stochastic component in the simulator draws from a
:class:`random.Random` instance seeded through :func:`derive_rng`, never
from the global ``random`` module.  Deriving child seeds from a parent
seed plus a string label means two runs with the same top-level seed are
bit-identical, while unrelated components do not share streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng"]


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a label."""
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(parent_seed: int, label: str) -> random.Random:
    """Return a fresh :class:`random.Random` seeded from ``parent_seed``/``label``."""
    return random.Random(derive_seed(parent_seed, label))
