"""Compressor interface and compressed-data containers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import CompressionError


class Compressor(ABC):
    """A lossless codec operating on byte strings.

    Implementations must guarantee ``decompress(compress(data), len(data))
    == data`` for arbitrary inputs.  They are free to *expand* data that
    does not compress; callers that care (the zpool does) compare
    ``len(compressed)`` against the original size and may store the raw
    bytes instead, exactly as the kernel's zram does for incompressible
    pages.
    """

    #: Short identifier used in configs, registries, and reports.
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` and return the encoded byte string."""

    @abstractmethod
    def decompress(self, blob: bytes, original_len: int) -> bytes:
        """Decode ``blob`` back into exactly ``original_len`` bytes."""

    def compressed_size(self, data: bytes) -> int:
        """Size in bytes of the compressed representation of ``data``.

        The default implementation compresses and measures; codecs may
        override with something cheaper.  Results are *not* cached here —
        see :class:`repro.compression.chunking.SizeCache` for memoization.
        """
        return len(self.compress(data))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class CompressedChunk:
    """One compressed chunk: the unit a codec compressed in a single call.

    Attributes:
        payload: The encoded bytes.
        original_len: Length of the plaintext this chunk decodes to.
        codec_name: Which codec produced ``payload``.
    """

    payload: bytes
    original_len: int
    codec_name: str

    @property
    def stored_len(self) -> int:
        """Bytes this chunk occupies in storage."""
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio of this chunk (original / stored)."""
        if self.stored_len == 0:
            raise CompressionError("compressed chunk has zero stored length")
        return self.original_len / self.stored_len


@dataclass
class ChunkedBlob:
    """A byte string compressed as a sequence of fixed-size chunks.

    ``chunks[i]`` holds plaintext bytes ``[i * chunk_size, (i+1) * chunk_size)``
    (the final chunk may be short).  This mirrors how both zram (4 KB
    chunks) and Ariadne's AdaptiveComp (hotness-dependent chunk sizes)
    organize compressed storage.
    """

    chunk_size: int
    total_original_len: int
    chunks: list[CompressedChunk] = field(default_factory=list)

    @property
    def stored_len(self) -> int:
        """Total stored bytes across all chunks."""
        return sum(chunk.stored_len for chunk in self.chunks)

    @property
    def ratio(self) -> float:
        """Overall compression ratio (original / stored)."""
        stored = self.stored_len
        if stored == 0:
            raise CompressionError("chunked blob has zero stored length")
        return self.total_original_len / stored

    def chunk_index_for_offset(self, offset: int) -> int:
        """Index of the chunk covering plaintext byte ``offset``."""
        if not 0 <= offset < self.total_original_len:
            raise CompressionError(
                f"offset {offset} outside blob of {self.total_original_len} bytes"
            )
        return offset // self.chunk_size
