"""Name-based codec lookup, mirroring zram's ``comp_algorithm`` knob."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from .base import Compressor
from .bdi import BdiCompressor
from .lz4 import Lz4Compressor
from .lzo import LzoCompressor
from .null import NullCompressor

_FACTORIES: dict[str, Callable[[], Compressor]] = {
    "lz4": Lz4Compressor,
    "lzo": LzoCompressor,
    "bdi": BdiCompressor,
    "null": NullCompressor,
}


def get_compressor(name: str) -> Compressor:
    """Instantiate the codec registered under ``name``.

    Raises :class:`~repro.errors.ConfigError` for unknown names, listing
    what is available, because a typo in a config should fail loudly.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown compressor {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def available_compressors() -> list[str]:
    """Sorted names of all registered codecs."""
    return sorted(_FACTORIES)
