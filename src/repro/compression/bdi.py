"""Base-Delta-Immediate (BDI) compression.

Implements the cache-line compression scheme of Pekhimenko et al.
(PACT 2012), which the paper lists as an algorithm Ariadne is compatible
with (Section 4.5).  Input is processed in 64-byte lines; each line is
encoded with the cheapest of several (base size, delta size) schemes, a
zero-line shortcut, a repeated-value shortcut, or stored raw when nothing
applies.

Per-line header byte:

====== =======================================================
value  meaning
====== =======================================================
0x00   all-zero line (no payload)
0x01   repeated 8-byte value (payload: 8-byte value)
0x1Bd  base ``B`` bytes / delta ``d`` bytes, encoded as
       ``0x10 | (log2(B) << 2) | log2(d)`` (payload: base then
       one delta per ``B``-byte word)
0xFF   raw line (payload: the line verbatim)
====== =======================================================

The final line may be shorter than 64 bytes; its length is implied by the
caller-supplied ``original_len``.
"""

from __future__ import annotations

from ..errors import CompressionError, CorruptDataError
from .base import Compressor

_LINE = 64
_RAW = 0xFF
_ZERO = 0x00
_REPEAT = 0x01
#: (base_bytes, delta_bytes) pairs tried in order; first fit wins ties by
#: encoded size, so order these from smallest encodings to largest.
_SCHEMES = [(8, 1), (4, 1), (8, 2), (2, 1), (4, 2), (8, 4)]


def _scheme_header(base_bytes: int, delta_bytes: int) -> int:
    return 0x10 | (base_bytes.bit_length() - 1) << 2 | (delta_bytes.bit_length() - 1)


def _header_scheme(header: int) -> tuple[int, int]:
    base_bytes = 1 << ((header >> 2) & 0x3)
    delta_bytes = 1 << (header & 0x3)
    return base_bytes, delta_bytes


class BdiCompressor(Compressor):
    """Base-delta-immediate codec over 64-byte lines."""

    name = "bdi"

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        for start in range(0, len(data), _LINE):
            line = data[start : start + _LINE]
            out += _encode_line(line)
        return bytes(out)

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        out = bytearray()
        pos = 0
        while len(out) < original_len:
            if pos >= len(blob):
                raise CorruptDataError("bdi: ran out of encoded lines")
            line_len = min(_LINE, original_len - len(out))
            line, pos = _decode_line(blob, pos, line_len)
            out += line
        if pos != len(blob):
            raise CorruptDataError(f"bdi: {len(blob) - pos} trailing bytes in blob")
        return bytes(out)


def _encode_line(line: bytes) -> bytes:
    n = len(line)
    if line == b"\x00" * n:
        return bytes([_ZERO])
    if n % 8 == 0:
        first = line[:8]
        if line == first * (n // 8):
            return bytes([_REPEAT]) + first
    best: bytes | None = None
    for base_bytes, delta_bytes in _SCHEMES:
        if n % base_bytes != 0:
            continue
        encoded = _try_scheme(line, base_bytes, delta_bytes)
        if encoded is not None and (best is None or len(encoded) < len(best)):
            best = encoded
    if best is not None and len(best) < 1 + n:
        return best
    return bytes([_RAW]) + line


def _try_scheme(line: bytes, base_bytes: int, delta_bytes: int) -> bytes | None:
    """Encode ``line`` with one (base, delta) scheme, or None if deltas overflow.

    Deltas are computed modulo the word width (two's complement), the way
    hardware BDI subtracts registers, so values that wrap around zero
    (e.g. base 0, word 0xFFFF...FF) still encode as small negatives.
    """
    words = [
        int.from_bytes(line[i : i + base_bytes], "little")
        for i in range(0, len(line), base_bytes)
    ]
    base = words[0]
    modulus = 1 << (8 * base_bytes)
    half_modulus = modulus >> 1
    half_range = 1 << (8 * delta_bytes - 1)
    deltas = []
    for word in words:
        delta = (word - base + half_modulus) % modulus - half_modulus
        if not -half_range <= delta < half_range:
            return None
        deltas.append(delta)
    out = bytearray([_scheme_header(base_bytes, delta_bytes)])
    out += base.to_bytes(base_bytes, "little")
    for delta in deltas:
        out += delta.to_bytes(delta_bytes, "little", signed=True)
    return bytes(out)


def _decode_line(blob: bytes, pos: int, line_len: int) -> tuple[bytes, int]:
    header = blob[pos]
    pos += 1
    if header == _ZERO:
        return b"\x00" * line_len, pos
    if header == _REPEAT:
        if pos + 8 > len(blob):
            raise CorruptDataError("bdi: truncated repeat value")
        value = blob[pos : pos + 8]
        pos += 8
        if line_len % 8 != 0:
            raise CorruptDataError("bdi: repeat line with non-multiple-of-8 length")
        return value * (line_len // 8), pos
    if header == _RAW:
        if pos + line_len > len(blob):
            raise CorruptDataError("bdi: truncated raw line")
        return blob[pos : pos + line_len], pos + line_len
    if not header & 0x10:
        raise CorruptDataError(f"bdi: unknown line header {header:#x}")
    base_bytes, delta_bytes = _header_scheme(header)
    if line_len % base_bytes != 0:
        raise CorruptDataError("bdi: line length not a multiple of base size")
    if pos + base_bytes > len(blob):
        raise CorruptDataError("bdi: truncated base value")
    base = int.from_bytes(blob[pos : pos + base_bytes], "little")
    pos += base_bytes
    count = line_len // base_bytes
    out = bytearray()
    mask = (1 << (8 * base_bytes)) - 1
    for _ in range(count):
        if pos + delta_bytes > len(blob):
            raise CorruptDataError("bdi: truncated delta")
        delta = int.from_bytes(blob[pos : pos + delta_bytes], "little", signed=True)
        pos += delta_bytes
        out += ((base + delta) & mask).to_bytes(base_bytes, "little")
    return bytes(out), pos


def _unused_guard() -> None:
    """BDI never encodes a line longer than _LINE; assert the invariant."""
    if _LINE % 8 != 0:
        raise CompressionError("BDI line size must be a multiple of 8")
