"""Compression substrate: real codecs, chunked compression, latency model.

The codecs in this package actually compress and decompress bytes (they
round-trip; tests verify this with hypothesis), so every compression
*ratio* the simulator reports is measured, not assumed.  Compression
*latency* on a phone's CPU is modeled by :class:`LatencyModel`, calibrated
to the shapes the paper measured on a Pixel 7 (Figure 6).

Public API
----------
- :class:`Compressor`, :class:`CompressedChunk`, :class:`ChunkedBlob`
- :class:`Lz4Compressor` — real LZ4 block-format codec written from scratch
- :class:`LzoCompressor` — LZO-class byte-aligned LZ77 codec
- :class:`BdiCompressor` — base-delta-immediate (Pekhimenko et al.)
- :class:`NullCompressor` — stores data uncompressed (control)
- :func:`chunk_compress`, :func:`chunk_decompress`
- :class:`LatencyModel`, :class:`AlgorithmTiming`
- :func:`get_compressor`, :func:`available_compressors`
"""

from .base import ChunkedBlob, CompressedChunk, Compressor
from .bdi import BdiCompressor
from .chunking import chunk_compress, chunk_decompress, measure_ratio
from .costmodel import AlgorithmTiming, LatencyModel
from .lz4 import Lz4Compressor
from .lzo import LzoCompressor
from .null import NullCompressor
from .registry import available_compressors, get_compressor

__all__ = [
    "AlgorithmTiming",
    "BdiCompressor",
    "ChunkedBlob",
    "CompressedChunk",
    "Compressor",
    "LatencyModel",
    "Lz4Compressor",
    "LzoCompressor",
    "NullCompressor",
    "available_compressors",
    "chunk_compress",
    "chunk_decompress",
    "get_compressor",
    "measure_ratio",
]
