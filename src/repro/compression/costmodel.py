"""Latency cost model for compression and decompression on a phone CPU.

Why a model.  The paper measures codec latency on a Pixel 7's Cortex
cores; wall-clock time of pure-Python codecs says nothing about that
hardware.  We therefore charge *simulated* nanoseconds from an analytic
model and keep the real codecs for what they are authoritative about:
compressed sizes.

Shape.  Figure 6 of the paper shows that, for the same total volume of
mobile anonymous data, compression gets *slower per byte* as the chunk
grows (128 B chunks are 59.2x faster than 128 KB chunks for LZ4, 41.8x
for LZO) because match search over a larger window costs more than the
per-call overhead it amortizes.  We model per-chunk latency as::

    t(c) = alpha * c**gamma + beta        (c = chunk size in bytes)

with ``gamma > 1``: per-byte cost ``alpha * c**(gamma-1) + beta / c``
rises with ``c`` once ``c`` is past the regime where the fixed per-call
cost ``beta`` dominates.  ``gamma`` is calibrated so the 128 B -> 128 KB
total-latency ratio matches the paper's measured speedups; ``alpha`` is
anchored to published LZ4/LZO throughput on Cortex-class cores at the
4 KB (one page) operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..units import KIB

__all__ = ["AlgorithmTiming", "LatencyModel", "DEFAULT_TIMINGS"]


@dataclass(frozen=True)
class AlgorithmTiming:
    """Latency-model coefficients for one codec.

    Attributes:
        comp_alpha_ns: Scale of the superlinear match-search term for
            compression (ns per byte**gamma).
        comp_gamma: Superlinear exponent for compression.
        comp_beta_ns: Fixed per-call overhead for compression (ns).
        decomp_alpha_ns: Scale term for decompression.
        decomp_gamma: Exponent for decompression (milder than compression
            since decode does no match search).
        decomp_beta_ns: Fixed per-call overhead for decompression (ns).
    """

    comp_alpha_ns: float
    comp_gamma: float
    comp_beta_ns: float
    decomp_alpha_ns: float
    decomp_gamma: float
    decomp_beta_ns: float


def _solve_gamma(
    page_anchor_ns: float, beta_ns: float, target_speedup: float
) -> tuple[float, float]:
    """Find (alpha, gamma) so the 128 B vs 128 KB per-byte cost ratio —
    *including* the fixed per-call overhead — equals ``target_speedup``.

    Per-byte cost is ``alpha * c**(gamma-1) + beta / c``; alpha is pinned
    by the 4 KB anchor at every trial gamma, so a simple bisection on
    gamma converges (the ratio is monotone in gamma).
    """
    page = 4 * KIB
    small, large = 128, 128 * KIB
    per_byte_anchor = (page_anchor_ns - beta_ns) / page

    def ratio(gamma: float) -> float:
        alpha = per_byte_anchor / page ** (gamma - 1.0)
        small_cost = alpha * small ** (gamma - 1.0) + beta_ns / small
        large_cost = alpha * large ** (gamma - 1.0) + beta_ns / large
        return large_cost / small_cost

    lo, hi = 1.0001, 3.0
    if ratio(hi) < target_speedup:
        raise ConfigError(
            f"cannot calibrate speedup {target_speedup} with beta {beta_ns}"
        )
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if ratio(mid) < target_speedup:
            lo = mid
        else:
            hi = mid
    gamma = (lo + hi) / 2.0
    alpha = per_byte_anchor / page ** (gamma - 1.0)
    return alpha, gamma


def _calibrated(
    page_comp_ns: float,
    page_decomp_ns: float,
    small_vs_large_speedup: float,
    decomp_growth: float,
    call_overhead_ns: float,
) -> AlgorithmTiming:
    """Build coefficients from calibration anchors.

    Args:
        page_comp_ns: Target latency to compress one 4 KB chunk.
        page_decomp_ns: Target latency to decompress one 4 KB chunk.
        small_vs_large_speedup: Measured total-time ratio between 128 KB
            and 128 B chunking of the same volume (paper Figure 6:
            59.2 for LZ4, 41.8 for LZO).
        decomp_growth: Per-byte decompression slowdown from 128 B to
            128 KB chunks (paper's DecompTime curve grows mildly; ~6x).
        call_overhead_ns: Fixed per-call cost (dominates tiny chunks).
    """
    comp_alpha, comp_gamma = _solve_gamma(
        page_comp_ns, call_overhead_ns, small_vs_large_speedup
    )
    decomp_beta = call_overhead_ns / 4
    decomp_alpha, decomp_gamma = _solve_gamma(
        page_decomp_ns, decomp_beta, decomp_growth
    )
    return AlgorithmTiming(
        comp_alpha_ns=comp_alpha,
        comp_gamma=comp_gamma,
        comp_beta_ns=call_overhead_ns,
        decomp_alpha_ns=decomp_alpha,
        decomp_gamma=decomp_gamma,
        decomp_beta_ns=decomp_beta,
    )


#: Anchors: LZ4 compresses ~400 MB/s and decompresses ~1.6 GB/s on
#: Cortex-X1-class cores at 4 KB granularity; LZO is ~25% slower to
#: compress and ~2x slower to decompress.  Speedup anchors are the
#: paper's own Figure 6 measurements; the per-call overhead is kept
#: small (an inlined kernel codec loop), since a large one would mask
#: exactly the small-chunk advantage the paper measures.
DEFAULT_TIMINGS: dict[str, AlgorithmTiming] = {
    "lz4": _calibrated(
        page_comp_ns=10_000.0,
        page_decomp_ns=2_500.0,
        small_vs_large_speedup=59.2,
        decomp_growth=6.0,
        call_overhead_ns=25.0,
    ),
    "lzo": _calibrated(
        page_comp_ns=13_000.0,
        page_decomp_ns=5_000.0,
        small_vs_large_speedup=41.8,
        decomp_growth=6.0,
        call_overhead_ns=25.0,
    ),
    "bdi": _calibrated(
        page_comp_ns=4_000.0,
        page_decomp_ns=1_500.0,
        small_vs_large_speedup=8.0,
        decomp_growth=2.0,
        call_overhead_ns=25.0,
    ),
    "null": _calibrated(
        page_comp_ns=600.0,
        page_decomp_ns=600.0,
        small_vs_large_speedup=1.05,
        decomp_growth=1.02,
        call_overhead_ns=25.0,
    ),
}


class LatencyModel:
    """Charges simulated nanoseconds for codec operations.

    All methods return integer nanoseconds, rounded up so zero-cost
    operations cannot exist (every call at least pays its overhead).
    """

    def __init__(self, timings: dict[str, AlgorithmTiming] | None = None) -> None:
        self._timings = dict(DEFAULT_TIMINGS if timings is None else timings)

    def timing_for(self, codec_name: str) -> AlgorithmTiming:
        """Coefficients for ``codec_name`` (raises ConfigError if unknown)."""
        try:
            return self._timings[codec_name]
        except KeyError:
            raise ConfigError(
                f"no latency coefficients for codec {codec_name!r}; "
                f"known: {sorted(self._timings)}"
            ) from None

    def chunk_compress_ns(self, codec_name: str, chunk_size: int) -> int:
        """Latency to compress one chunk of ``chunk_size`` bytes."""
        t = self.timing_for(codec_name)
        return _ceil_ns(t.comp_alpha_ns * chunk_size**t.comp_gamma + t.comp_beta_ns)

    def chunk_decompress_ns(self, codec_name: str, chunk_size: int) -> int:
        """Latency to decompress one chunk that decodes to ``chunk_size`` bytes."""
        t = self.timing_for(codec_name)
        return _ceil_ns(
            t.decomp_alpha_ns * chunk_size**t.decomp_gamma + t.decomp_beta_ns
        )

    def compress_ns(self, codec_name: str, total_bytes: int, chunk_size: int) -> int:
        """Latency to compress ``total_bytes`` split into ``chunk_size`` chunks."""
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {chunk_size}")
        full, tail = divmod(total_bytes, chunk_size)
        total = full * self.chunk_compress_ns(codec_name, chunk_size)
        if tail:
            total += self.chunk_compress_ns(codec_name, tail)
        return total

    def decompress_ns(self, codec_name: str, total_bytes: int, chunk_size: int) -> int:
        """Latency to decompress ``total_bytes`` stored as ``chunk_size`` chunks."""
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {chunk_size}")
        full, tail = divmod(total_bytes, chunk_size)
        total = full * self.chunk_decompress_ns(codec_name, chunk_size)
        if tail:
            total += self.chunk_decompress_ns(codec_name, tail)
        return total


def _ceil_ns(value: float) -> int:
    """Round a float nanosecond cost up to a positive integer."""
    return max(1, math.ceil(value))
