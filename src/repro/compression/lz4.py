"""A real LZ4 block-format codec written from scratch in pure Python.

This implements the documented LZ4 *block* format (token byte with
4-bit literal-length / 4-bit match-length nibbles, 255-run length
extensions, 2-byte little-endian match offsets, minimum match of 4,
final 5 bytes always literal).  Output produced by
:meth:`Lz4Compressor.compress` is decodable by the reference ``lz4``
library, and :meth:`Lz4Compressor.decompress` decodes reference-encoded
blocks — the format is the contract, the implementation is ours.

The encoder is a greedy single-entry hash-chain matcher with LZ4-style
skip acceleration, which is what the kernel's LZ4 "fast" compressor
(used by zram) does as well.

When ``numpy`` is available the encoder precomputes every position's
32-bit word and hash slot in one vectorized pass, so the scan loop does
two list reads per probe instead of slicing, ``int.from_bytes`` and a
Python-level hash per position; candidate verification becomes one int
compare.  The parse — and therefore the emitted block — is byte-for-byte
identical to the direct scan (``tests/test_codec_equivalence.py``).
"""

from __future__ import annotations

from array import array

from ..errors import CompressionError, CorruptDataError
from .base import Compressor

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

#: Inputs shorter than this gain nothing from the vectorized precompute.
_VECTOR_MIN_LEN = 256

_MIN_MATCH = 4
_MAX_OFFSET = 0xFFFF
#: The spec requires the last 5 bytes of a block to be literals and the
#: last match to start at least 12 bytes before the end of the block.
_LAST_LITERALS = 5
_MFLIMIT = 12
_HASH_MASK = (1 << 16) - 1
#: Multiplicative hash constant (Fibonacci hashing on 32-bit reads).
_HASH_MUL = 2654435761


def _hash32(word: int) -> int:
    """Hash a 32-bit little-endian word to a 16-bit table index."""
    return ((word * _HASH_MUL) & 0xFFFFFFFF) >> 16


class Lz4Compressor(Compressor):
    """LZ4 block-format compressor/decompressor.

    Args:
        acceleration: Greedy-search skip factor; 1 searches hardest
            (best ratio), larger values skip ahead faster after repeated
            misses, trading ratio for speed, mirroring the reference
            implementation's ``acceleration`` parameter.
    """

    name = "lz4"

    def __init__(self, acceleration: int = 1) -> None:
        if acceleration < 1:
            raise CompressionError(f"acceleration must be >= 1, got {acceleration}")
        self._acceleration = acceleration

    # -- encoding -----------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        if n == 0:
            # A block holding the empty string: a lone zero token.
            return b"\x00"
        if n < _MFLIMIT + 1:
            return _emit_final_literals(data, 0)
        if _np is not None and n >= _VECTOR_MIN_LEN:
            return self._compress_vector(data)
        return self._compress_scan(data)

    def _compress_scan(self, data: bytes) -> bytes:
        """Direct scan (dependency-free reference path)."""
        n = len(data)
        out = bytearray()
        table: dict[int, int] = {}
        anchor = 0
        pos = 0
        # Matches may not begin after this position (spec end-of-block rules).
        match_limit = n - _MFLIMIT
        search_step = self._acceleration << 6
        view = data

        while pos <= match_limit:
            word = int.from_bytes(view[pos : pos + 4], "little")
            slot = _hash32(word)
            candidate = table.get(slot, -1)
            table[slot] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and view[candidate : candidate + 4] == view[pos : pos + 4]
            ):
                # Extend the match forward, honouring the last-literals rule.
                match_len = _MIN_MATCH
                limit = n - _LAST_LITERALS
                src = candidate + _MIN_MATCH
                dst = pos + _MIN_MATCH
                while (
                    dst + 8 <= limit
                    and view[src : src + 8] == view[dst : dst + 8]
                ):
                    src += 8
                    dst += 8
                    match_len += 8
                while dst < limit and view[src] == view[dst]:
                    src += 1
                    dst += 1
                    match_len += 1
                _emit_sequence(
                    out, view, anchor, pos - anchor, pos - candidate, match_len
                )
                pos += match_len
                anchor = pos
                search_step = self._acceleration << 6
                # Insert a position inside the match to help future matches.
                if pos - 2 > candidate and pos - 2 <= match_limit:
                    inner = int.from_bytes(view[pos - 2 : pos + 2], "little")
                    table[_hash32(inner)] = pos - 2
            else:
                pos += 1 + (search_step >> 6)
                search_step += self._acceleration

        out += _emit_final_literals(view[anchor:], 0)
        return bytes(out)

    def _compress_vector(self, data: bytes) -> bytes:
        """Same parse with words and hash slots precomputed at C speed."""
        n = len(data)
        a = _np.frombuffer(data, dtype=_np.uint8).astype(_np.uint32)
        words_arr = a[:-3] | (a[1:-2] << 8) | (a[2:-1] << 16) | (a[3:] << 24)
        # uint32 arithmetic wraps modulo 2**32, exactly like _hash32.
        slots_arr = (words_arr * _np.uint32(_HASH_MUL)) >> _np.uint32(16)
        slots = array("i")
        slots.frombytes(slots_arr.astype(_np.int32).tobytes())

        out = bytearray()
        table: dict[int, int] = {}
        table_get = table.get
        anchor = 0
        pos = 0
        match_limit = n - _MFLIMIT
        acceleration = self._acceleration
        search_step = acceleration << 6
        view = data

        while pos <= match_limit:
            slot = slots[pos]
            candidate = table_get(slot, -1)
            table[slot] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and view[candidate : candidate + 4] == view[pos : pos + 4]
            ):
                match_len = _MIN_MATCH
                limit = n - _LAST_LITERALS
                src = candidate + _MIN_MATCH
                dst = pos + _MIN_MATCH
                while (
                    dst + 16 <= limit
                    and view[src : src + 16] == view[dst : dst + 16]
                ):
                    src += 16
                    dst += 16
                    match_len += 16
                while dst < limit and view[src] == view[dst]:
                    src += 1
                    dst += 1
                    match_len += 1
                _emit_sequence(
                    out, view, anchor, pos - anchor, pos - candidate, match_len
                )
                pos += match_len
                anchor = pos
                search_step = acceleration << 6
                if pos - 2 > candidate and pos - 2 <= match_limit:
                    table[slots[pos - 2]] = pos - 2
            else:
                pos += 1 + (search_step >> 6)
                search_step += acceleration

        out += _emit_final_literals(view[anchor:], 0)
        return bytes(out)

    # -- sizing -------------------------------------------------------------

    def compressed_size(self, data: bytes) -> int:
        """Size of ``compress(data)`` without materializing the block.

        Runs the identical parse but tallies output arithmetically: a
        sequence costs ``1 (token) + extension bytes + literal_len + 2
        (offset) + extension bytes``, the final all-literal sequence
        costs ``1 + extension bytes + literal_len`` — mirroring LZO's
        size-only path so LZ4 is equally cheap if it lands on a hot
        path.  Equality with ``len(compress(data))`` is pinned by the
        differential tests.
        """
        n = len(data)
        if n == 0:
            return 1  # the lone zero token
        if n < _MFLIMIT + 1:
            return _final_literals_size(n)
        if _np is not None and n >= _VECTOR_MIN_LEN:
            return self._size_vector(data)
        return self._size_scan(data)

    def _size_scan(self, data: bytes) -> int:
        """Size-only twin of :meth:`_compress_scan` (same parse)."""
        n = len(data)
        size = 0
        table: dict[int, int] = {}
        anchor = 0
        pos = 0
        match_limit = n - _MFLIMIT
        search_step = self._acceleration << 6
        view = data

        while pos <= match_limit:
            word = int.from_bytes(view[pos : pos + 4], "little")
            slot = _hash32(word)
            candidate = table.get(slot, -1)
            table[slot] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and view[candidate : candidate + 4] == view[pos : pos + 4]
            ):
                match_len = _MIN_MATCH
                limit = n - _LAST_LITERALS
                src = candidate + _MIN_MATCH
                dst = pos + _MIN_MATCH
                while (
                    dst + 8 <= limit
                    and view[src : src + 8] == view[dst : dst + 8]
                ):
                    src += 8
                    dst += 8
                    match_len += 8
                while dst < limit and view[src] == view[dst]:
                    src += 1
                    dst += 1
                    match_len += 1
                size += _sequence_size(pos - anchor, match_len)
                pos += match_len
                anchor = pos
                search_step = self._acceleration << 6
                if pos - 2 > candidate and pos - 2 <= match_limit:
                    inner = int.from_bytes(view[pos - 2 : pos + 2], "little")
                    table[_hash32(inner)] = pos - 2
            else:
                pos += 1 + (search_step >> 6)
                search_step += self._acceleration

        return size + _final_literals_size(n - anchor)

    def _size_vector(self, data: bytes) -> int:
        """Size-only twin of :meth:`_compress_vector` (same parse)."""
        n = len(data)
        a = _np.frombuffer(data, dtype=_np.uint8).astype(_np.uint32)
        words_arr = a[:-3] | (a[1:-2] << 8) | (a[2:-1] << 16) | (a[3:] << 24)
        slots_arr = (words_arr * _np.uint32(_HASH_MUL)) >> _np.uint32(16)
        slots = array("i")
        slots.frombytes(slots_arr.astype(_np.int32).tobytes())

        size = 0
        table: dict[int, int] = {}
        table_get = table.get
        anchor = 0
        pos = 0
        match_limit = n - _MFLIMIT
        acceleration = self._acceleration
        search_step = acceleration << 6
        view = data

        while pos <= match_limit:
            slot = slots[pos]
            candidate = table_get(slot, -1)
            table[slot] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and view[candidate : candidate + 4] == view[pos : pos + 4]
            ):
                match_len = _MIN_MATCH
                limit = n - _LAST_LITERALS
                src = candidate + _MIN_MATCH
                dst = pos + _MIN_MATCH
                while (
                    dst + 16 <= limit
                    and view[src : src + 16] == view[dst : dst + 16]
                ):
                    src += 16
                    dst += 16
                    match_len += 16
                while dst < limit and view[src] == view[dst]:
                    src += 1
                    dst += 1
                    match_len += 1
                size += _sequence_size(pos - anchor, match_len)
                pos += match_len
                anchor = pos
                search_step = acceleration << 6
                if pos - 2 > candidate and pos - 2 <= match_limit:
                    table[slots[pos - 2]] = pos - 2
            else:
                pos += 1 + (search_step >> 6)
                search_step += acceleration

        return size + _final_literals_size(n - anchor)

    # -- decoding -----------------------------------------------------------

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        out = bytearray()
        pos = 0
        blob_len = len(blob)
        while pos < blob_len:
            token = blob[pos]
            pos += 1
            literal_len = token >> 4
            if literal_len == 15:
                literal_len, pos = _read_length(blob, pos, literal_len)
            if literal_len:
                if pos + literal_len > blob_len:
                    raise CorruptDataError("lz4: literal run past end of block")
                out += blob[pos : pos + literal_len]
                pos += literal_len
            if pos >= blob_len:
                break  # final sequence carries no match
            if pos + 2 > blob_len:
                raise CorruptDataError("lz4: truncated match offset")
            offset = blob[pos] | (blob[pos + 1] << 8)
            pos += 2
            if offset == 0 or offset > len(out):
                raise CorruptDataError(
                    f"lz4: invalid offset {offset} at output size {len(out)}"
                )
            match_len = (token & 0x0F) + _MIN_MATCH
            if token & 0x0F == 15:
                extra, pos = _read_length(blob, pos, 15)
                match_len = extra + _MIN_MATCH
            start = len(out) - offset
            if offset >= match_len:
                out += out[start : start + match_len]
            else:
                # Overlapping copy: replicate byte-by-byte like the spec.
                for i in range(match_len):
                    out.append(out[start + i])
        if len(out) != original_len:
            raise CorruptDataError(
                f"lz4: decoded {len(out)} bytes, expected {original_len}"
            )
        return bytes(out)


def _read_length(blob: bytes, pos: int, base: int) -> tuple[int, int]:
    """Read an LZ4 extended length (runs of 255 plus a terminator byte)."""
    length = base
    while True:
        if pos >= len(blob):
            raise CorruptDataError("lz4: truncated length extension")
        byte = blob[pos]
        pos += 1
        length += byte
        if byte != 255:
            return length, pos


def _length_ext_size(code: int) -> int:
    """Output bytes of the extended-length encoding for nibble ``code``.

    A nibble below 15 needs no extension; otherwise the encoder emits
    ``(code - 15) // 255`` full 255-bytes plus one terminator byte.
    """
    if code < 15:
        return 0
    return (code - 15) // 255 + 1


def _sequence_size(literal_len: int, match_len: int) -> int:
    """Output bytes of one token + literals + offset + match sequence."""
    return (
        1
        + _length_ext_size(literal_len)
        + literal_len
        + 2
        + _length_ext_size(match_len - _MIN_MATCH)
    )


def _final_literals_size(literal_len: int) -> int:
    """Output bytes of the trailing all-literal sequence."""
    return 1 + _length_ext_size(literal_len) + literal_len


def _emit_length(out: bytearray, value: int) -> None:
    """Append an extended length encoding for ``value`` (already minus 15)."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _emit_sequence(
    out: bytearray,
    data: bytes,
    literal_start: int,
    literal_len: int,
    offset: int,
    match_len: int,
) -> None:
    """Append one token + literals + offset + match-length sequence."""
    ml_code = match_len - _MIN_MATCH
    token_lit = 15 if literal_len >= 15 else literal_len
    token_ml = 15 if ml_code >= 15 else ml_code
    out.append((token_lit << 4) | token_ml)
    if literal_len >= 15:
        _emit_length(out, literal_len - 15)
    out += data[literal_start : literal_start + literal_len]
    out.append(offset & 0xFF)
    out.append(offset >> 8)
    if ml_code >= 15:
        _emit_length(out, ml_code - 15)


def _emit_final_literals(tail: bytes, start: int) -> bytes:
    """Encode a trailing all-literal sequence for ``tail[start:]``."""
    out = bytearray()
    literal_len = len(tail) - start
    token_lit = 15 if literal_len >= 15 else literal_len
    out.append(token_lit << 4)
    if literal_len >= 15:
        _emit_length(out, literal_len - 15)
    out += tail[start:]
    return bytes(out)
