"""Pass-through codec used as an experimental control."""

from __future__ import annotations

from ..errors import CorruptDataError
from .base import Compressor


class NullCompressor(Compressor):
    """Stores data verbatim (ratio exactly 1.0).

    Used by tests and by the SWAP baseline, which moves uncompressed
    pages to flash.
    """

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        if len(blob) != original_len:
            raise CorruptDataError(
                f"null codec: blob is {len(blob)} bytes, expected {original_len}"
            )
        return blob

    def compressed_size(self, data: bytes) -> int:
        return len(data)
