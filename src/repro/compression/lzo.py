"""An LZO-class byte-aligned LZ77 codec.

LZO1X (the other codec Android's zram ships) is a family of byte-aligned,
greedy, minimum-match-3 LZ77 coders optimized for decompression speed.
Reimplementing LZO1X's exact bitstream serves no evaluation purpose here,
so this module implements a codec with the same *design point* — byte
aligned control codes, minimum match 3, 32 KiB window, greedy parse —
under a simple explicit format:

- control byte ``0x00..0x7F``: a literal run of ``control + 1`` bytes
  (1..128) follows;
- control byte ``0x80..0xFF``: a match; ``(control & 0x7F) + 3`` gives a
  match length of 3..130, followed by a 2-byte little-endian backward
  distance (1-based, up to 32 KiB).

DESIGN.md records this substitution (real LZO1X -> LZO-class codec).

Encoder structure
-----------------

The reference parse is a greedy scan with a 3-gram hash table mapping
each visited gram to its most recent visited position (positions inside
emitted matches are skipped and never enter the table).  Two encoder
paths produce that exact parse:

- ``_compress_scan``: the direct scan, kept dependency-free;
- ``_compress_indexed``: the fast path.  All previous-occurrence
  structure is precomputed at C speed (one ``numpy`` sort of
  position-tagged 3-gram keys yields, per position, whether the gram
  occurred before at all and where its first occurrence sits), so the
  Python loop only touches positions that can possibly match.  A flat
  table indexed by first-occurrence position replaces the dict; entries
  under an emitted match are invalidated with one slice assignment,
  which reproduces exactly the "skipped positions never enter the
  table" rule.  The previous-occurrence fill itself has two
  byte-identical variants — direct scatter/gather vs a cache-conscious
  bucketed walk — selected by ``REPRO_LZO_INDEX`` (see
  ``_INDEX_MODE``).

Both paths emit byte-identical output for every input (the differential
tests in ``tests/test_codec_equivalence.py`` are the contract), so
callers never observe which one ran.
"""

from __future__ import annotations

import os
from array import array

from ..errors import CompressionError, CorruptDataError
from .base import Compressor

try:  # The fast encoder path needs numpy; the scan path does not.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

_MIN_MATCH = 3
_MAX_MATCH = 130
_MAX_LITERAL_RUN = 128
_MAX_DISTANCE = 32 * 1024

#: Below this input size the indexed path's fixed numpy overhead wins
#: nothing; both paths emit identical bytes so the cutoff is free to tune.
_INDEXED_MIN_LEN = 512


class LzoCompressor(Compressor):
    """Byte-aligned minimum-match-3 LZ77 codec (LZO design point)."""

    name = "lzo"

    def __init__(self, max_distance: int = _MAX_DISTANCE) -> None:
        if not 1 <= max_distance <= _MAX_DISTANCE:
            raise CompressionError(
                f"max_distance must be in [1, {_MAX_DISTANCE}], got {max_distance}"
            )
        self._max_distance = max_distance

    def compress(self, data: bytes) -> bytes:
        if _np is not None and len(data) >= _INDEXED_MIN_LEN:
            return _compress_indexed(data, self._max_distance)
        return _compress_scan(data, self._max_distance)

    def compressed_size(self, data: bytes) -> int:
        """Size of ``compress(data)`` without materializing the blob.

        Runs the identical parse but tallies output bytes arithmetically
        (literal runs cost ``run + ceil(run / 128)``, matches cost 3), so
        the size cache's hot path skips every output copy.  Equality with
        ``len(compress(data))`` is pinned by the differential tests.
        """
        if _np is not None and len(data) >= _INDEXED_MIN_LEN:
            return _size_indexed(data, self._max_distance)
        return _size_scan(data, self._max_distance)

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        out = bytearray()
        pos = 0
        blob_len = len(blob)
        while pos < blob_len:
            control = blob[pos]
            pos += 1
            if control < 0x80:
                run = control + 1
                if pos + run > blob_len:
                    raise CorruptDataError("lzo: literal run past end of block")
                out += blob[pos : pos + run]
                pos += run
            else:
                if pos + 2 > blob_len:
                    raise CorruptDataError("lzo: truncated match distance")
                match_len = (control & 0x7F) + _MIN_MATCH
                distance = blob[pos] | (blob[pos + 1] << 8)
                pos += 2
                if distance == 0 or distance > len(out):
                    raise CorruptDataError(
                        f"lzo: invalid distance {distance} at output size {len(out)}"
                    )
                start = len(out) - distance
                if distance >= match_len:
                    out += out[start : start + match_len]
                else:
                    for i in range(match_len):
                        out.append(out[start + i])
        if len(out) != original_len:
            raise CorruptDataError(
                f"lzo: decoded {len(out)} bytes, expected {original_len}"
            )
        return bytes(out)


def _compress_scan(data: bytes, max_distance: int) -> bytes:
    """The reference greedy parse, expressed directly.

    ``dict.setdefault`` serves as combined probe-and-insert: a miss
    inserts the position in the same dict operation the lookup used; a
    hit is followed by an explicit overwrite, matching the reference
    "table always holds the most recent visited position" rule.
    """
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    out_append = out.append
    table: dict[bytes, int] = {}
    setdefault = table.setdefault
    pos = 0
    literal_start = 0
    scan_end = n - _MIN_MATCH
    unbounded = n <= max_distance
    while pos <= scan_end:
        key = data[pos : pos + 3]
        candidate = setdefault(key, pos)
        if candidate != pos:
            table[key] = pos
            if unbounded or pos - candidate <= max_distance:
                match_len = _extend_match(data, candidate, pos, n)
                _emit_literals(out, out_append, data, literal_start, pos)
                distance = pos - candidate
                out_append(0x80 | (match_len - _MIN_MATCH))
                out_append(distance & 0xFF)
                out_append(distance >> 8)
                pos += match_len
                literal_start = pos
                continue
        pos += 1
    _flush_literals(out, data, literal_start, n)
    return bytes(out)


class _IndexedWorkspace:
    """Reusable scratch buffers for :func:`_compress_indexed`.

    The indexed path streams several intermediate arrays per call;
    allocating them fresh each time costs more than the arithmetic once
    the encoder runs inside a large simulation heap (page faults and
    allocator churn).  One workspace per process is reused for every
    input up to ``cap`` grams — like every encoder in this module it is
    not thread-safe, matching the simulator's single-threaded use.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.g32 = _np.empty(cap, dtype=_np.uint32)
        self.s32 = _np.empty(cap, dtype=_np.uint32)
        self.root = _np.empty(cap, dtype=_np.int32)
        self.bool_ = _np.empty(cap, dtype=bool)
        self.idx32 = _np.arange(cap, dtype=_np.int32)
        #: The match table's initial contents (entry i holds i + 1)
        #: never vary, so one prebuilt byte image resets it per call
        #: (kept as a memoryview so the reset is a single copy-free
        #: slice handoff into one memcpy).
        self.table_init = memoryview((self.idx32 + 1).tobytes())
        self.mask = bytearray(cap)
        self.roots = array("i", bytes(4 * cap))
        self.table = array("i", bytes(4 * cap))
        self.mask_mv = memoryview(self.mask)
        self.roots_mv = memoryview(self.roots).cast("B")
        self.table_mv = memoryview(self.table).cast("B")
        #: Scratch for the bucketed index fill (region ids, the sorted
        #: permutation, and its gram/table gathers) — allocated on
        #: first use so the default direct mode never pays the ~14
        #: bytes/gram for buffers it will not touch.
        self.region8 = None
        self.region8_rev = None
        self.perm32 = None
        self.gram_perm = None
        self.table_perm = None

    def ensure_bucketed_scratch(self) -> None:
        """Allocate the bucketed-fill buffers (idempotent)."""
        if self.region8 is None:
            cap = self.cap
            self.region8 = _np.empty(cap, dtype=_np.uint8)
            self.region8_rev = _np.empty(cap, dtype=_np.uint8)
            self.perm32 = _np.empty(cap, dtype=_np.int32)
            self.gram_perm = _np.empty(cap, dtype=_np.uint32)
            self.table_perm = _np.empty(cap, dtype=_np.int32)


_WORKSPACE: _IndexedWorkspace | None = None
_WORKSPACE_CAP = 64 * 1024

#: Direct-address previous-occurrence table over all 2^24 3-grams
#: (64 MiB, allocated lazily per process).  Never cleared between
#: inputs: each call gathers only at grams it scattered this call, so
#: stale entries are unreachable by construction.
_GRAM_TABLE = None


def _gram_table():
    global _GRAM_TABLE
    if _GRAM_TABLE is None:
        _GRAM_TABLE = _np.empty(1 << 24, dtype=_np.int32)
    return _GRAM_TABLE


#: How the previous-occurrence table is filled (``REPRO_LZO_INDEX``):
#:
#: - ``direct`` — one scatter and one gather at the raw gram positions.
#:   Random access over the 64 MiB table, so each touched line is a
#:   potential last-level-cache/TLB miss, but zero preparation cost.
#: - ``bucketed`` — the cache-conscious variant: one radix pass
#:   (NumPy's stable argsort on uint8 keys) orders positions by their
#:   gram's top byte, so the scatter and gather walk the table region
#:   by region in streaming order; each 2^16-entry region (256 KiB of
#:   int32) stays L2-resident while it is used.
#:
#: Both fills leave byte-identical parses (the differential tests pin
#: it); the default is the measured winner — picked per PERFORMANCE.md
#: PR 5, where the 1-CPU CI container's 105 MiB L3 holds the whole
#: table, making the direct fill's "random" access LLC-resident and
#: the radix pass pure overhead (~240 us vs ~390 us per 16 KiB chunk).
#: The env var exists so small-LLC hardware — where the table cannot
#: be cache-resident and the streaming walk is the honest win — can
#: flip the choice without a code change.
_INDEX_MODES = ("direct", "bucketed")


def _resolve_index_mode(value: str | None) -> str:
    """Sanitize a ``REPRO_LZO_INDEX`` value (unknown -> ``direct``)."""
    mode = (value or "").strip().lower() or "direct"
    return mode if mode in _INDEX_MODES else "direct"


_INDEX_MODE = _resolve_index_mode(os.environ.get("REPRO_LZO_INDEX"))

#: Below this gram count the radix pass costs more than the direct
#: fill's misses on any hardware; the bucketed mode falls back per call.
_BUCKETED_MIN_GRAMS = 4096


def _fill_roots_bucketed(ws, gram, root_pos, m) -> None:
    """Fill ``root_pos`` like the direct scatter/gather, region by region.

    Correctness mirrors the direct fill exactly: the scatter must leave
    each gram's slot holding its *smallest* position (first
    occurrence).  One stable argsort of the *reversed* region-id stream
    yields positions grouped by region in ascending order with
    positions descending inside each region — equal grams share a
    region, so the last write per gram is still the lowest position,
    and the same permutation serves the gather (its output lands in the
    cache-resident m-sized ``root_pos``, so gather order is free).  The
    region id is the gram's top byte.
    """
    table24 = _gram_table()
    ws.ensure_bucketed_scratch()
    scratch = ws.s32[:m]
    region = ws.region8[:m]
    region_rev = ws.region8_rev[:m]
    _np.right_shift(gram, 16, out=scratch)
    _np.copyto(region, scratch, casting="unsafe")
    _np.copyto(region_rev, region[::-1])
    backward = region_rev.argsort(kind="stable")  # radix on uint8 keys
    _np.subtract(m - 1, backward, out=backward)
    perm = ws.perm32[:m]
    _np.copyto(perm, backward, casting="unsafe")
    gram_perm = ws.gram_perm[:m]
    _np.take(gram, perm, out=gram_perm, mode="clip")
    table24[gram_perm] = perm
    table_perm = ws.table_perm[:m]
    _np.take(table24, gram_perm, out=table_perm, mode="clip")
    root_pos[perm] = table_perm


def _build_index(data: bytes, n: int):
    """Previous-occurrence structure for the indexed parse.

    Two scatters and a gather against the direct-address 3-gram table
    yield, per position, the first occurrence of its 3-gram and whether
    any earlier occurrence exists at all: scattering positions in
    *reversed* order leaves each gram's slot holding its smallest
    position (NumPy fancy assignment applies indices in order, so the
    last write — the lowest position — wins), replacing the former
    sort-based group pass at a fraction of the cost.  Returns
    ``(mask, roots, table, m)`` where ``m = n - 2`` grams exist:

    - ``mask[pos]`` is 1 iff the gram at ``pos`` occurred earlier —
      positions outside it are guaranteed misses the scan loops skip
      with C-speed ``find``;
    - ``roots[pos]`` is the gram's first occurrence;
    - ``table`` is the flat match table indexed by root: entry ``r``
      starts as ``r + 1`` ("the first occurrence itself is the
      candidate"), is overwritten with ``pos + 1`` at each visited
      occurrence, and is zeroed (no candidate) when a match interior
      swallows it — see the scan loops for why clearing the final two
      interior entries covers the whole interior.
    """
    global _WORKSPACE
    m = n - 2
    if m > _WORKSPACE_CAP:
        ws = _IndexedWorkspace(m)  # oversized input: dedicated buffers
    else:
        if _WORKSPACE is None:
            _WORKSPACE = _IndexedWorkspace(_WORKSPACE_CAP)
        ws = _WORKSPACE
    af = _np.frombuffer(data, dtype=_np.uint8)
    gram = ws.g32[:m]
    scratch = ws.s32[:m]
    _np.copyto(gram, af[:m])
    gram <<= 8
    _np.copyto(scratch, af[1 : 1 + m])
    gram |= scratch
    gram <<= 8
    _np.copyto(scratch, af[2 : 2 + m])
    gram |= scratch
    idxs = ws.idx32[:m]
    root_pos = ws.root[:m]
    if _INDEX_MODE == "bucketed" and m >= _BUCKETED_MIN_GRAMS:
        _fill_roots_bucketed(ws, gram, root_pos, m)
    else:
        table24 = _gram_table()
        table24[gram[::-1]] = idxs[::-1]
        # Every gram value is < 2^24, so bounds checking is pure overhead.
        _np.take(table24, gram, out=root_pos, mode="clip")
    mask_arr = ws.bool_[:m]
    _np.not_equal(root_pos, idxs, out=mask_arr)
    ws.mask_mv[:m] = mask_arr.view(_np.uint8)
    ws.roots_mv[: 4 * m] = root_pos.view(_np.uint8)
    ws.table_mv[: 4 * m] = ws.table_init[: 4 * m]
    return ws.mask, ws.roots, ws.table, m


def _compress_indexed(data: bytes, max_distance: int) -> bytes:
    """The fast path: same parse as the scan, driven by the prebuilt
    previous-occurrence index (see :func:`_build_index`)."""
    n = len(data)
    if n < _MIN_MATCH:
        out = bytearray()
        _flush_literals(out, data, 0, n)
        return bytes(out)
    mask, roots, table, m = _build_index(data, n)

    out = bytearray()
    out_append = out.append
    literal_start = 0
    unbounded = n <= max_distance
    scan_limit = n - 2
    find_interesting = mask.find
    pos = find_interesting(1, 0, scan_limit)
    while pos >= 0:
        root = roots[pos]
        candidate = table[root] - 1
        table[root] = pos + 1
        if candidate >= 0 and (unbounded or pos - candidate <= max_distance):
            match_len = _extend_match(data, candidate, pos, n)
            _emit_literals(out, out_append, data, literal_start, pos)
            distance = pos - candidate
            out_append(0x80 | (match_len - _MIN_MATCH))
            out_append(distance & 0xFF)
            out_append(distance >> 8)
            end = pos + match_len
            # Invalidate the swallowed interior (see _size_indexed for
            # why clearing the last two entries is the whole job).
            zero_to = end if end <= m else m
            q = end - 2
            if q < zero_to:
                table[q] = 0
                q += 1
                if q < zero_to:
                    table[q] = 0
            literal_start = end
            pos = find_interesting(1, end, scan_limit)
        else:
            pos = find_interesting(1, pos + 1, scan_limit)
    _flush_literals(out, data, literal_start, n)
    return bytes(out)


def _size_scan(data: bytes, max_distance: int) -> int:
    """``len(_compress_scan(data, max_distance))`` without building output."""
    n = len(data)
    if n == 0:
        return 0
    size = 0
    table: dict[bytes, int] = {}
    setdefault = table.setdefault
    pos = 0
    literal_start = 0
    scan_end = n - _MIN_MATCH
    unbounded = n <= max_distance
    while pos <= scan_end:
        key = data[pos : pos + 3]
        candidate = setdefault(key, pos)
        if candidate != pos:
            table[key] = pos
            if unbounded or pos - candidate <= max_distance:
                match_len = _extend_match(data, candidate, pos, n)
                run = pos - literal_start
                if run:
                    size += run + (run + 127) // 128
                size += 3
                pos += match_len
                literal_start = pos
                continue
        pos += 1
    run = n - literal_start
    if run:
        size += run + (run + 127) // 128
    return size


def _size_indexed(data: bytes, max_distance: int) -> int:
    """``len(_compress_indexed(data, max_distance))`` without building output.

    Identical parse to :func:`_compress_indexed`; a literal run of
    ``run`` bytes costs ``run + ceil(run / 128)`` output bytes and every
    match costs 3, so the tally is pure arithmetic.  The match extension
    is inlined — this loop is the hottest code in system-level runs.
    """
    n = len(data)
    if n < _MIN_MATCH:
        return n + 1 if n else 0
    mask, roots, table, m = _build_index(data, n)

    size = 0
    literal_start = 0
    unbounded = n <= max_distance
    scan_limit = n - 2  # mask positions n-3 .. n-3 inclusive == [0, n-2)
    find_interesting = mask.find
    from_bytes = int.from_bytes
    pos = find_interesting(1, 0, scan_limit)
    while pos >= 0:
        root = roots[pos]
        candidate = table[root] - 1
        table[root] = pos + 1
        if candidate >= 0 and (unbounded or pos - candidate <= max_distance):
            limit = n - pos
            if limit > _MAX_MATCH:
                limit = _MAX_MATCH
            ext = limit - 3
            src = candidate + 3
            dst = pos + 3
            if ext <= 0:
                match_len = 3
            else:
                # Two-stage XOR (see _extend_match): most matches end
                # inside the first 64 bytes, so probing that window
                # first halves the bigint work on the common case.  No
                # first-byte guard here: only ~4% of matches stop at
                # the minimum length, so the probe costs more than the
                # early exit saves.
                head = ext if ext < 64 else 64
                x = from_bytes(data[src : src + head], "little") ^ from_bytes(
                    data[dst : dst + head], "little"
                )
                if x:
                    match_len = 3 + (((x & -x).bit_length() - 1) >> 3)
                elif head == ext:
                    match_len = limit
                else:
                    x = from_bytes(data[src + 64 : src + ext], "little") ^ from_bytes(
                        data[dst + 64 : dst + ext], "little"
                    )
                    if x == 0:
                        match_len = limit
                    else:
                        match_len = 67 + (((x & -x).bit_length() - 1) >> 3)
            run = pos - literal_start
            if run:
                size += run + (run + 127) // 128
            size += 3
            end = pos + match_len
            # Invalidate the swallowed interior.  The reference rule is
            # "skipped positions never enter the table", which the
            # indexed parse models by clearing interior entries — but
            # only entries that can be *read* again matter, and reads
            # happen at ``table[root]`` where roots are first
            # occurrences (mask 0).  Every interior position up to
            # ``end - 3`` repeats the gram at ``position - distance``
            # inside the match source, so it has an earlier occurrence
            # (mask 1) and can never be a root; only the final two
            # positions' grams straddle the match end and may be novel
            # first occurrences.  Clearing those two entries is
            # therefore exactly equivalent to clearing the whole
            # interior (the differential tests hold both paths to the
            # reference parse).
            zero_to = end if end <= m else m
            q = end - 2
            if q < zero_to:
                table[q] = 0
                q += 1
                if q < zero_to:
                    table[q] = 0
            literal_start = end
            # The next interesting position usually is `end` itself
            # (match interiors repeat earlier grams, and so does the
            # data right after them): one subscript probe beats a find
            # call in the common case.
            if end < scan_limit and mask[end]:
                pos = end
            else:
                pos = find_interesting(1, end, scan_limit)
        else:
            pos = find_interesting(1, pos + 1, scan_limit)
    run = n - literal_start
    if run:
        size += run + (run + 127) // 128
    return size


def _extend_match(data: bytes, candidate: int, pos: int, n: int) -> int:
    """Length of the greedy match at ``pos`` against ``candidate`` (3..130).

    The extension is the common-prefix length of the two tails, capped
    at the window; instead of stepping bytewise it XORs the tails as
    little-endian integers — the count of trailing zero *bytes* of the
    XOR is exactly the number of leading equal bytes — probing the
    first 64 bytes before the (at most 63-byte) remainder, since most
    matches end inside the first window.  Overlap is fine: comparison,
    unlike copying, has no ordering hazard.
    """
    limit = n - pos
    if limit > _MAX_MATCH:
        limit = _MAX_MATCH
    ext = limit - _MIN_MATCH
    src = candidate + _MIN_MATCH
    dst = pos + _MIN_MATCH
    if ext <= 0 or data[src] != data[dst]:
        return _MIN_MATCH
    head = ext if ext < 64 else 64
    x = int.from_bytes(data[src : src + head], "little") ^ int.from_bytes(
        data[dst : dst + head], "little"
    )
    if x:
        return _MIN_MATCH + (((x & -x).bit_length() - 1) >> 3)
    if head == ext:
        return limit
    x = int.from_bytes(data[src + 64 : src + ext], "little") ^ int.from_bytes(
        data[dst + 64 : dst + ext], "little"
    )
    if x == 0:
        return limit
    return _MIN_MATCH + 64 + (((x & -x).bit_length() - 1) >> 3)


def _emit_literals(out, out_append, data, start: int, end: int) -> None:
    """Emit pending literals before a match (fast path for short runs)."""
    if start < end:
        run = end - start
        if run <= _MAX_LITERAL_RUN:
            out_append(run - 1)
            out += data[start:end]
        else:
            _flush_literals(out, data, start, end)


def _flush_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Emit pending literals ``data[start:end]`` as 1..128-byte runs."""
    while start < end:
        run = min(end - start, _MAX_LITERAL_RUN)
        out.append(run - 1)
        out += data[start : start + run]
        start += run
