"""An LZO-class byte-aligned LZ77 codec.

LZO1X (the other codec Android's zram ships) is a family of byte-aligned,
greedy, minimum-match-3 LZ77 coders optimized for decompression speed.
Reimplementing LZO1X's exact bitstream serves no evaluation purpose here,
so this module implements a codec with the same *design point* — byte
aligned control codes, minimum match 3, 32 KiB window, greedy parse —
under a simple explicit format:

- control byte ``0x00..0x7F``: a literal run of ``control + 1`` bytes
  (1..128) follows;
- control byte ``0x80..0xFF``: a match; ``(control & 0x7F) + 3`` gives a
  match length of 3..130, followed by a 2-byte little-endian backward
  distance (1-based, up to 32 KiB).

DESIGN.md records this substitution (real LZO1X -> LZO-class codec).
"""

from __future__ import annotations

from ..errors import CompressionError, CorruptDataError
from .base import Compressor

_MIN_MATCH = 3
_MAX_MATCH = 130
_MAX_LITERAL_RUN = 128
_MAX_DISTANCE = 32 * 1024


class LzoCompressor(Compressor):
    """Byte-aligned minimum-match-3 LZ77 codec (LZO design point)."""

    name = "lzo"

    def __init__(self, max_distance: int = _MAX_DISTANCE) -> None:
        if not 1 <= max_distance <= _MAX_DISTANCE:
            raise CompressionError(
                f"max_distance must be in [1, {_MAX_DISTANCE}], got {max_distance}"
            )
        self._max_distance = max_distance

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray()
        if n == 0:
            return b""
        table: dict[bytes, int] = {}
        pos = 0
        literal_start = 0
        max_distance = self._max_distance
        while pos + _MIN_MATCH <= n:
            key = data[pos : pos + _MIN_MATCH]
            candidate = table.get(key, -1)
            table[key] = pos
            if candidate >= 0 and pos - candidate <= max_distance:
                match_len = _MIN_MATCH
                limit = min(n - pos, _MAX_MATCH)
                src = candidate + _MIN_MATCH
                dst = pos + _MIN_MATCH
                while match_len < limit and data[src] == data[dst]:
                    src += 1
                    dst += 1
                    match_len += 1
                _flush_literals(out, data, literal_start, pos)
                out.append(0x80 | (match_len - _MIN_MATCH))
                distance = pos - candidate
                out.append(distance & 0xFF)
                out.append(distance >> 8)
                pos += match_len
                literal_start = pos
            else:
                pos += 1
        _flush_literals(out, data, literal_start, n)
        return bytes(out)

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        out = bytearray()
        pos = 0
        blob_len = len(blob)
        while pos < blob_len:
            control = blob[pos]
            pos += 1
            if control < 0x80:
                run = control + 1
                if pos + run > blob_len:
                    raise CorruptDataError("lzo: literal run past end of block")
                out += blob[pos : pos + run]
                pos += run
            else:
                if pos + 2 > blob_len:
                    raise CorruptDataError("lzo: truncated match distance")
                match_len = (control & 0x7F) + _MIN_MATCH
                distance = blob[pos] | (blob[pos + 1] << 8)
                pos += 2
                if distance == 0 or distance > len(out):
                    raise CorruptDataError(
                        f"lzo: invalid distance {distance} at output size {len(out)}"
                    )
                start = len(out) - distance
                if distance >= match_len:
                    out += out[start : start + match_len]
                else:
                    for i in range(match_len):
                        out.append(out[start + i])
        if len(out) != original_len:
            raise CorruptDataError(
                f"lzo: decoded {len(out)} bytes, expected {original_len}"
            )
        return bytes(out)


def _flush_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Emit pending literals ``data[start:end]`` as 1..128-byte runs."""
    while start < end:
        run = min(end - start, _MAX_LITERAL_RUN)
        out.append(run - 1)
        out += data[start : start + run]
        start += run
