"""An LZO-class byte-aligned LZ77 codec.

LZO1X (the other codec Android's zram ships) is a family of byte-aligned,
greedy, minimum-match-3 LZ77 coders optimized for decompression speed.
Reimplementing LZO1X's exact bitstream serves no evaluation purpose here,
so this module implements a codec with the same *design point* — byte
aligned control codes, minimum match 3, 32 KiB window, greedy parse —
under a simple explicit format:

- control byte ``0x00..0x7F``: a literal run of ``control + 1`` bytes
  (1..128) follows;
- control byte ``0x80..0xFF``: a match; ``(control & 0x7F) + 3`` gives a
  match length of 3..130, followed by a 2-byte little-endian backward
  distance (1-based, up to 32 KiB).

DESIGN.md records this substitution (real LZO1X -> LZO-class codec).

Encoder structure
-----------------

The reference parse is a greedy scan with a 3-gram hash table mapping
each visited gram to its most recent visited position (positions inside
emitted matches are skipped and never enter the table).  Two encoder
paths produce that exact parse:

- ``_compress_scan``: the direct scan, kept dependency-free;
- ``_compress_indexed``: the fast path.  All previous-occurrence
  structure is precomputed at C speed (one ``numpy`` sort of
  position-tagged 3-gram keys yields, per position, whether the gram
  occurred before at all and where its first occurrence sits), so the
  Python loop only touches positions that can possibly match.  A flat
  table indexed by first-occurrence position replaces the dict; entries
  under an emitted match are invalidated with one slice assignment,
  which reproduces exactly the "skipped positions never enter the
  table" rule.

Both paths emit byte-identical output for every input (the differential
tests in ``tests/test_codec_equivalence.py`` are the contract), so
callers never observe which one ran.
"""

from __future__ import annotations

from array import array

from ..errors import CompressionError, CorruptDataError
from .base import Compressor

try:  # The fast encoder path needs numpy; the scan path does not.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

_MIN_MATCH = 3
_MAX_MATCH = 130
_MAX_LITERAL_RUN = 128
_MAX_DISTANCE = 32 * 1024

#: Below this input size the indexed path's fixed numpy overhead wins
#: nothing; both paths emit identical bytes so the cutoff is free to tune.
_INDEXED_MIN_LEN = 512

_ZERO_TABLE = array("i", bytes(4 * (_MAX_MATCH - 1)))


class LzoCompressor(Compressor):
    """Byte-aligned minimum-match-3 LZ77 codec (LZO design point)."""

    name = "lzo"

    def __init__(self, max_distance: int = _MAX_DISTANCE) -> None:
        if not 1 <= max_distance <= _MAX_DISTANCE:
            raise CompressionError(
                f"max_distance must be in [1, {_MAX_DISTANCE}], got {max_distance}"
            )
        self._max_distance = max_distance

    def compress(self, data: bytes) -> bytes:
        if _np is not None and len(data) >= _INDEXED_MIN_LEN:
            return _compress_indexed(data, self._max_distance)
        return _compress_scan(data, self._max_distance)

    def compressed_size(self, data: bytes) -> int:
        """Size of ``compress(data)`` without materializing the blob.

        Runs the identical parse but tallies output bytes arithmetically
        (literal runs cost ``run + ceil(run / 128)``, matches cost 3), so
        the size cache's hot path skips every output copy.  Equality with
        ``len(compress(data))`` is pinned by the differential tests.
        """
        if _np is not None and len(data) >= _INDEXED_MIN_LEN:
            return _size_indexed(data, self._max_distance)
        return _size_scan(data, self._max_distance)

    def decompress(self, blob: bytes, original_len: int) -> bytes:
        out = bytearray()
        pos = 0
        blob_len = len(blob)
        while pos < blob_len:
            control = blob[pos]
            pos += 1
            if control < 0x80:
                run = control + 1
                if pos + run > blob_len:
                    raise CorruptDataError("lzo: literal run past end of block")
                out += blob[pos : pos + run]
                pos += run
            else:
                if pos + 2 > blob_len:
                    raise CorruptDataError("lzo: truncated match distance")
                match_len = (control & 0x7F) + _MIN_MATCH
                distance = blob[pos] | (blob[pos + 1] << 8)
                pos += 2
                if distance == 0 or distance > len(out):
                    raise CorruptDataError(
                        f"lzo: invalid distance {distance} at output size {len(out)}"
                    )
                start = len(out) - distance
                if distance >= match_len:
                    out += out[start : start + match_len]
                else:
                    for i in range(match_len):
                        out.append(out[start + i])
        if len(out) != original_len:
            raise CorruptDataError(
                f"lzo: decoded {len(out)} bytes, expected {original_len}"
            )
        return bytes(out)


def _compress_scan(data: bytes, max_distance: int) -> bytes:
    """The reference greedy parse, expressed directly.

    ``dict.setdefault`` serves as combined probe-and-insert: a miss
    inserts the position in the same dict operation the lookup used; a
    hit is followed by an explicit overwrite, matching the reference
    "table always holds the most recent visited position" rule.
    """
    n = len(data)
    if n == 0:
        return b""
    out = bytearray()
    out_append = out.append
    table: dict[bytes, int] = {}
    setdefault = table.setdefault
    pos = 0
    literal_start = 0
    scan_end = n - _MIN_MATCH
    unbounded = n <= max_distance
    while pos <= scan_end:
        key = data[pos : pos + 3]
        candidate = setdefault(key, pos)
        if candidate != pos:
            table[key] = pos
            if unbounded or pos - candidate <= max_distance:
                match_len = _extend_match(data, candidate, pos, n)
                _emit_literals(out, out_append, data, literal_start, pos)
                distance = pos - candidate
                out_append(0x80 | (match_len - _MIN_MATCH))
                out_append(distance & 0xFF)
                out_append(distance >> 8)
                pos += match_len
                literal_start = pos
                continue
        pos += 1
    _flush_literals(out, data, literal_start, n)
    return bytes(out)


class _IndexedWorkspace:
    """Reusable scratch buffers for :func:`_compress_indexed`.

    The indexed path streams ~0.5 MB of intermediate arrays per call;
    allocating them fresh each time costs more than the arithmetic once
    the encoder runs inside a large simulation heap (page faults and
    allocator churn).  One workspace per process is reused for every
    input up to ``cap`` grams — like every encoder in this module it is
    not thread-safe, matching the simulator's single-threaded use.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.b1 = _np.empty(cap, dtype=_np.int64)
        self.b2 = _np.empty(cap, dtype=_np.int64)
        self.o32 = _np.empty(cap, dtype=_np.int32)
        self.w32 = _np.empty(cap, dtype=_np.int32)
        self.r32 = _np.empty(cap, dtype=_np.int32)
        self.root = _np.empty(cap, dtype=_np.int32)
        self.bool_ = _np.empty(cap, dtype=bool)
        self.idx32 = _np.arange(cap, dtype=_np.int32)
        self.idx64 = _np.arange(cap, dtype=_np.int64)
        self.mask = bytearray(cap)
        self.roots = array("i", bytes(4 * cap))
        self.table = array("i", bytes(4 * cap))
        self.mask_mv = memoryview(self.mask)
        self.roots_mv = memoryview(self.roots).cast("B")
        self.table_mv = memoryview(self.table).cast("B")


_WORKSPACE: _IndexedWorkspace | None = None
_WORKSPACE_CAP = 64 * 1024


def _build_index(data: bytes, n: int):
    """Previous-occurrence structure for the indexed parse.

    One ``numpy`` sort of ``(gram << bits) | position`` composites
    yields, per position, the first occurrence of its 3-gram and
    whether any earlier occurrence exists at all.  Returns
    ``(mask, roots, table, m)`` where ``m = n - 2`` grams exist:

    - ``mask[pos]`` is 1 iff the gram at ``pos`` occurred earlier —
      positions outside it are guaranteed misses the scan loops skip
      with C-speed ``find``;
    - ``roots[pos]`` is the gram's first occurrence;
    - ``table`` is the flat match table indexed by root: entry ``r``
      starts as ``r + 1`` ("the first occurrence itself is the
      candidate"), is overwritten with ``pos + 1`` at each visited
      occurrence, and is zeroed (no candidate) when a match interior
      swallows it.  Zeroing a match's interior with one slice
      assignment is sound because entries above the current position
      are provably still at their initial value.
    """
    global _WORKSPACE
    m = n - 2
    if m > _WORKSPACE_CAP:
        ws = _IndexedWorkspace(m)  # oversized input: dedicated buffers
    else:
        if _WORKSPACE is None:
            _WORKSPACE = _IndexedWorkspace(_WORKSPACE_CAP)
        ws = _WORKSPACE
    af = _np.frombuffer(data, dtype=_np.uint8)
    composite = ws.b1[:m]
    scratch = ws.b2[:m]
    _np.copyto(composite, af[:m])
    composite <<= 8
    _np.copyto(scratch, af[1 : 1 + m])
    composite |= scratch
    composite <<= 8
    _np.copyto(scratch, af[2 : 2 + m])
    composite |= scratch
    bits = (m - 1).bit_length() if m > 1 else 1
    composite <<= bits
    composite |= ws.idx64[:m]
    composite.sort()
    _np.bitwise_and(composite, (1 << bits) - 1, out=scratch)
    order = ws.o32[:m]
    _np.copyto(order, scratch)
    composite >>= bits  # composite now holds the sorted gram keys
    group_starts = ws.bool_[:m]
    group_starts[0] = True
    _np.not_equal(composite[1:], composite[:-1], out=group_starts[1:])
    idxs = ws.idx32[:m]
    start_idx = ws.w32[:m]
    _np.multiply(idxs, group_starts, out=start_idx)
    _np.maximum.accumulate(start_idx, out=start_idx)
    root_sorted = ws.r32[:m]
    _np.take(order, start_idx, out=root_sorted)
    root_pos = ws.root[:m]
    root_pos[order] = root_sorted
    _np.not_equal(root_pos, idxs, out=group_starts)
    ws.mask_mv[:m] = group_starts.view(_np.uint8)
    ws.roots_mv[: 4 * m] = root_pos.view(_np.uint8)
    _np.add(idxs, _np.int32(1), out=start_idx)
    ws.table_mv[: 4 * m] = start_idx.view(_np.uint8)
    return ws.mask, ws.roots, ws.table, m


def _compress_indexed(data: bytes, max_distance: int) -> bytes:
    """The fast path: same parse as the scan, driven by the prebuilt
    previous-occurrence index (see :func:`_build_index`)."""
    n = len(data)
    if n < _MIN_MATCH:
        out = bytearray()
        _flush_literals(out, data, 0, n)
        return bytes(out)
    mask, roots, table, m = _build_index(data, n)

    out = bytearray()
    out_append = out.append
    literal_start = 0
    unbounded = n <= max_distance
    scan_limit = n - 2
    find_interesting = mask.find
    pos = find_interesting(1, 0, scan_limit)
    while pos >= 0:
        root = roots[pos]
        candidate = table[root] - 1
        table[root] = pos + 1
        if candidate >= 0 and (unbounded or pos - candidate <= max_distance):
            match_len = _extend_match(data, candidate, pos, n)
            _emit_literals(out, out_append, data, literal_start, pos)
            distance = pos - candidate
            out_append(0x80 | (match_len - _MIN_MATCH))
            out_append(distance & 0xFF)
            out_append(distance >> 8)
            end = pos + match_len
            zero_to = end if end <= m else m
            if zero_to > pos + 1:
                table[pos + 1 : zero_to] = _ZERO_TABLE[: zero_to - pos - 1]
            literal_start = end
            pos = find_interesting(1, end, scan_limit)
        else:
            pos = find_interesting(1, pos + 1, scan_limit)
    _flush_literals(out, data, literal_start, n)
    return bytes(out)


def _size_scan(data: bytes, max_distance: int) -> int:
    """``len(_compress_scan(data, max_distance))`` without building output."""
    n = len(data)
    if n == 0:
        return 0
    size = 0
    table: dict[bytes, int] = {}
    setdefault = table.setdefault
    pos = 0
    literal_start = 0
    scan_end = n - _MIN_MATCH
    unbounded = n <= max_distance
    while pos <= scan_end:
        key = data[pos : pos + 3]
        candidate = setdefault(key, pos)
        if candidate != pos:
            table[key] = pos
            if unbounded or pos - candidate <= max_distance:
                match_len = _extend_match(data, candidate, pos, n)
                run = pos - literal_start
                if run:
                    size += run + (run + 127) // 128
                size += 3
                pos += match_len
                literal_start = pos
                continue
        pos += 1
    run = n - literal_start
    if run:
        size += run + (run + 127) // 128
    return size


def _size_indexed(data: bytes, max_distance: int) -> int:
    """``len(_compress_indexed(data, max_distance))`` without building output.

    Identical parse to :func:`_compress_indexed`; a literal run of
    ``run`` bytes costs ``run + ceil(run / 128)`` output bytes and every
    match costs 3, so the tally is pure arithmetic.  The match extension
    is inlined — this loop is the hottest code in system-level runs.
    """
    n = len(data)
    if n < _MIN_MATCH:
        return n + 1 if n else 0
    mask, roots, table, m = _build_index(data, n)

    size = 0
    literal_start = 0
    unbounded = n <= max_distance
    scan_limit = n - 2  # mask positions n-3 .. n-3 inclusive == [0, n-2)
    find_interesting = mask.find
    pos = find_interesting(1, 0, scan_limit)
    while pos >= 0:
        root = roots[pos]
        candidate = table[root] - 1
        table[root] = pos + 1
        if candidate >= 0 and (unbounded or pos - candidate <= max_distance):
            limit = n - pos
            if limit > _MAX_MATCH:
                limit = _MAX_MATCH
            match_len = _MIN_MATCH
            src = candidate + 3
            dst = pos + 3
            while (
                match_len + 16 <= limit
                and data[src : src + 16] == data[dst : dst + 16]
            ):
                src += 16
                dst += 16
                match_len += 16
            while match_len < limit and data[src] == data[dst]:
                src += 1
                dst += 1
                match_len += 1
            run = pos - literal_start
            if run:
                size += run + (run + 127) // 128
            size += 3
            end = pos + match_len
            zero_to = end if end <= m else m
            if zero_to > pos + 1:
                table[pos + 1 : zero_to] = _ZERO_TABLE[: zero_to - pos - 1]
            literal_start = end
            pos = find_interesting(1, end, scan_limit)
        else:
            pos = find_interesting(1, pos + 1, scan_limit)
    run = n - literal_start
    if run:
        size += run + (run + 127) // 128
    return size


def _extend_match(data: bytes, candidate: int, pos: int, n: int) -> int:
    """Length of the greedy match at ``pos`` against ``candidate`` (3..130).

    Extends by 16-byte slice compares, then byte-refines; identical to a
    pure byte-at-a-time extension (overlap is fine: comparison, unlike
    copying, has no ordering hazard).
    """
    limit = n - pos
    if limit > _MAX_MATCH:
        limit = _MAX_MATCH
    match_len = _MIN_MATCH
    src = candidate + _MIN_MATCH
    dst = pos + _MIN_MATCH
    while match_len + 16 <= limit and data[src : src + 16] == data[dst : dst + 16]:
        src += 16
        dst += 16
        match_len += 16
    while match_len < limit and data[src] == data[dst]:
        src += 1
        dst += 1
        match_len += 1
    return match_len


def _emit_literals(out, out_append, data, start: int, end: int) -> None:
    """Emit pending literals before a match (fast path for short runs)."""
    if start < end:
        run = end - start
        if run <= _MAX_LITERAL_RUN:
            out_append(run - 1)
            out += data[start:end]
        else:
            _flush_literals(out, data, start, end)


def _flush_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Emit pending literals ``data[start:end]`` as 1..128-byte runs."""
    while start < end:
        run = min(end - start, _MAX_LITERAL_RUN)
        out.append(run - 1)
        out += data[start : start + run]
        start += run
