"""Chunked compression: split a byte string into fixed-size chunks and
compress each independently.

This is the operation both schemes in the paper build on: zram compresses
one 4 KB page per call; Ariadne's AdaptiveComp picks the chunk size by
hotness level (256 B .. 32 KB).  Smaller chunks decompress with less
work per accessed page; larger chunks see more history and compress
better.  :func:`measure_ratio` is what the Figure 6 / 13 / 15 experiments
call.
"""

from __future__ import annotations

from collections import OrderedDict
from hashlib import blake2b

from ..errors import CompressionError
from .base import ChunkedBlob, CompressedChunk, Compressor

#: Digest width for payload keys.  16 bytes of blake2b makes accidental
#: collisions astronomically unlikely while keeping keys small.
_DIGEST_SIZE = 16


def payload_digest(data: bytes) -> bytes:
    """Collision-safe content key for a payload (stable across runs).

    ``hash(data)`` is unusable as a cache key: distinct payloads can
    share a Python hash (silently returning the wrong stored size), and
    ``PYTHONHASHSEED`` randomizes values across processes, which both
    breaks on-disk reuse and made hit patterns run-dependent.
    """
    return blake2b(data, digest_size=_DIGEST_SIZE).digest()


def chunk_compress(codec: Compressor, data: bytes, chunk_size: int) -> ChunkedBlob:
    """Compress ``data`` as independent ``chunk_size``-byte chunks."""
    if chunk_size <= 0:
        raise CompressionError(f"chunk_size must be positive, got {chunk_size}")
    blob = ChunkedBlob(chunk_size=chunk_size, total_original_len=len(data))
    for start in range(0, len(data), chunk_size):
        piece = data[start : start + chunk_size]
        blob.chunks.append(
            CompressedChunk(
                payload=codec.compress(piece),
                original_len=len(piece),
                codec_name=codec.name,
            )
        )
    return blob


def chunk_decompress(codec: Compressor, blob: ChunkedBlob) -> bytes:
    """Reassemble the original byte string from a :class:`ChunkedBlob`."""
    out = bytearray()
    for chunk in blob.chunks:
        if chunk.codec_name != codec.name:
            raise CompressionError(
                f"blob chunk was encoded with {chunk.codec_name!r}, "
                f"decoding with {codec.name!r}"
            )
        out += codec.decompress(chunk.payload, chunk.original_len)
    if len(out) != blob.total_original_len:
        raise CompressionError(
            f"chunked decode produced {len(out)} bytes, "
            f"expected {blob.total_original_len}"
        )
    return bytes(out)


def measure_ratio(codec: Compressor, data: bytes, chunk_size: int) -> float:
    """Compression ratio (original / stored) of ``data`` at ``chunk_size``."""
    return chunk_compress(codec, data, chunk_size).ratio


class SizeCache:
    """Memoizes compressed sizes keyed by (payload digest, codec, chunk size).

    The simulator mostly needs compressed *sizes* (for zpool occupancy and
    ratio metrics), and synthetic workloads reuse page payloads heavily
    across relaunch sessions, so memoization removes most real compression
    work from system-level runs without changing any measured number.

    Keys use :func:`payload_digest` (blake2b), not ``hash(data)`` — exact,
    stable across ``PYTHONHASHSEED``, and shareable with the on-disk
    artifact cache (:mod:`repro.cache`).  Misses measure via the codec's
    ``compressed_size`` fast path per chunk, which sums to exactly
    ``chunk_compress(...).stored_len`` without materializing any blob.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise CompressionError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = max_entries
        self._cache: OrderedDict[tuple[bytes, str, int], int] = OrderedDict()
        #: In-memory-only front door keyed by concatenated *page* content
        #: digests (see :meth:`compressed_size_of_pages`).  Kept apart
        #: from :attr:`_cache` so persistent subclasses never write
        #: these composite keys into the on-disk payload-digest logs.
        self._page_run_cache: OrderedDict[tuple[bytes, str, int], int] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        #: Digest-keyed page-run hits served with *no* LRU bookkeeping
        #: (the run cache evicts in FIFO order; see
        #: :meth:`compressed_size_of_pages`).
        self.run_hits = 0
        #: ``move_to_end`` recency updates still performed (payload-
        #: digest hits only) — the counter that proves the run-path
        #: bookkeeping went away in ``benchmarks/profile_scenario.py``.
        self.lru_moves = 0

    def compressed_size(
        self, codec: Compressor, data: bytes, chunk_size: int
    ) -> int:
        """Stored size of ``data`` compressed with ``codec`` at ``chunk_size``."""
        if chunk_size <= 0:
            raise CompressionError(f"chunk_size must be positive, got {chunk_size}")
        key = (payload_digest(data), codec.name, chunk_size)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.lru_moves += 1
            self.hits += 1
            return cached
        self.misses += 1
        size = self._measure(codec, data, chunk_size)
        self._store(key, size)
        return size

    def compressed_size_of_pages(
        self, codec: Compressor, pages, chunk_size: int
    ) -> int:
        """Stored size of the concatenation of ``pages``' payloads.

        The hot path of warm system runs: chunk groups are keyed by
        their pages' cached content digests (16 bytes each), so a
        repeat group skips both the payload concatenation and the
        full-payload hash — the digest-of-digests key is exactly as
        collision-safe as :func:`payload_digest`.  Misses build the
        payload once and fall through to :meth:`compressed_size`
        (persistent lookups included), so every size is still measured
        under the standard payload-digest key and numbers are
        unchanged.
        """
        # Read the cached digest attribute directly (trace records
        # pre-share theirs); only a test-built page without one pays the
        # content_digest() call.  ~32 method dispatches saved per chunk
        # on the eviction path.
        key = (
            b"".join(
                [
                    page._content_digest or page.content_digest()
                    for page in pages
                ]
            ),
            codec.name,
            chunk_size,
        )
        run_cache = self._page_run_cache
        cached = run_cache.get(key)
        if cached is not None:
            # No move_to_end on the hit path: warm runs hit this line
            # tens of thousands of times, and a cached size is the same
            # whichever entry FIFO eviction drops, so recency
            # bookkeeping here bought nothing (values are recomputable
            # either way; numbers never depend on what is cached).
            self.run_hits += 1
            self.hits += 1
            return cached
        data = b"".join([page.payload for page in pages])
        size = self.compressed_size(codec, data, chunk_size)
        run_cache[key] = size
        if len(run_cache) > self._max_entries:
            run_cache.popitem(last=False)
        return size

    def _measure(self, codec: Compressor, data: bytes, chunk_size: int) -> int:
        """Compute the stored size of ``data`` at ``chunk_size`` (a miss).

        Matches ``chunk_compress(codec, data, chunk_size).stored_len``
        exactly; in particular an empty payload has zero chunks and
        stores zero bytes (some codecs encode ``b""`` as a non-empty
        blob, but no chunk is ever created for it).
        """
        if not data:
            return 0
        if chunk_size >= len(data):
            return codec.compressed_size(data)
        size = 0
        for start in range(0, len(data), chunk_size):
            size += codec.compressed_size(data[start : start + chunk_size])
        return size

    def _store(self, key: tuple[bytes, str, int], size: int) -> None:
        """Insert a measured size, evicting the LRU entry beyond capacity."""
        self._cache[key] = size
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)

    def clear(self) -> None:
        """Drop all cached sizes and reset hit/miss counters."""
        self._cache.clear()
        self._page_run_cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)
