"""Unit helpers: sizes, times, and the paper-to-simulation scale factor.

All simulated time in this package is kept as *integer nanoseconds* and all
sizes as *integer bytes*.  Using integers everywhere keeps the simulation
deterministic (no floating-point drift between runs) and makes equality
assertions in tests exact.

The paper evaluates on a 12 GB phone with multi-hundred-MB working sets.
Running real compression over that volume in pure Python is not practical,
so the simulator runs at ``1 / SCALE_FACTOR`` of the paper's data volumes
and scales reported megabyte figures back up when printing
paper-comparable tables (see :func:`scaled_mb`).
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one memory page, matching Linux on arm64 phones.
PAGE_SIZE = 4 * KIB

#: Size of one zpool storage block (zsmalloc packs objects into 4 KB).
ZPOOL_BLOCK_SIZE = 4 * KIB

#: The simulator models 1/64 of the paper's data volumes.
SCALE_FACTOR = 64

# --- times -----------------------------------------------------------------

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SECOND = 1_000 * MS


def ns_to_ms(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds for reporting."""
    return ns / MS


def ns_to_us(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds for reporting."""
    return ns / US


def ns_to_s(ns: int) -> float:
    """Convert integer nanoseconds to float seconds for reporting."""
    return ns / SECOND


def bytes_to_mib(n: int) -> float:
    """Convert a byte count to float MiB for reporting."""
    return n / MIB


def pages_for_bytes(n: int) -> int:
    """Number of whole pages needed to hold ``n`` bytes (ceiling)."""
    return -(-n // PAGE_SIZE)


def scaled_mb(sim_bytes: int) -> float:
    """Scale a simulated byte count back up to paper-comparable MB.

    The workload generator divides the paper's published anonymous-data
    volumes by :data:`SCALE_FACTOR`; this inverts that division so tables
    printed by the experiment harness line up with the paper's numbers.
    """
    return sim_bytes * SCALE_FACTOR / MIB


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (e.g. ``'3.0 GiB'``, ``'512 B'``)."""
    if n >= GIB:
        return f"{n / GIB:.1f} GiB"
    if n >= MIB:
        return f"{n / MIB:.1f} MiB"
    if n >= KIB:
        return f"{n / KIB:.1f} KiB"
    return f"{n} B"


def fmt_chunk(size: int) -> str:
    """Paper-style chunk-size label: 256 -> '256', 1024 -> '1K', 16384 -> '16K'."""
    if size >= KIB and size % KIB == 0:
        return f"{size // KIB}K"
    return str(size)


def parse_chunk(label: str) -> int:
    """Inverse of :func:`fmt_chunk`: ``'16K' -> 16384``, ``'256' -> 256``."""
    text = label.strip().upper()
    if text.endswith("K"):
        return int(text[:-1]) * KIB
    return int(text)
