"""Streaming fleet aggregation: fixed-size, associatively mergeable
metric summaries.

A fleet run must report population percentiles (p50/p95/p99 relaunch
latency, kswapd CPU, ...) without ever materializing a per-device table
— aggregator memory is independent of device count.  Each per-shard
cell therefore emits one :class:`FleetAggregate`: per (scheme, metric)
a :class:`MetricSummary` holding

- exact count / sum / min / max (integers, so addition is associative
  and order-independent — no float-summation order sensitivity);
- a *fixed-bucket pseudo-logarithmic histogram*: sixteen exact buckets
  for values below 16, then eight sub-buckets per power of two
  (~±4.5% relative bucket width), addressed by pure integer bit
  arithmetic so bucketing is platform- and core-independent;
- a *seeded keyed reservoir* of at most :data:`RESERVOIR_K` raw
  samples: every sample draws a deterministic priority from
  ``blake2b(seed, metric, device, draw)`` and the reservoir keeps the
  ``K`` smallest priorities.  "K smallest of a union" is associative
  and commutative, so any merge tree over any shard order yields the
  same reservoir — and the same bytes in the ``--json`` document.

Percentiles are estimated from the merged histogram (linear
interpolation inside the winning bucket, clamped to the exact
min/max), never from raw per-device data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b

#: Values below this are their own (exact) bucket.
_SMALL = 16
#: Sub-buckets per power of two above ``_SMALL``.
_SUB = 8
#: Bucket count supporting values up to 2**63 (sparse dicts mean the
#: theoretical width costs nothing).
N_BUCKETS = _SMALL + (63 - 3) * _SUB

#: Reservoir capacity per (scheme, metric).  Bounds aggregator memory:
#: a ten-million-device fleet carries exactly as many raw samples as a
#: ten-device one.
RESERVOIR_K = 64


def bucket_of(value: int) -> int:
    """Histogram bucket for a non-negative integer sample.

    Integer bit arithmetic only: identical on every platform and
    simulator core, unlike ``math.log``-based bucketing.
    """
    if value < 0:
        raise ValueError(f"metric samples must be >= 0, got {value}")
    if value < _SMALL:
        return value
    msb = value.bit_length() - 1  # >= 4
    sub = (value >> (msb - 3)) & 0x7
    return _SMALL + (msb - 4) * _SUB + sub


def bucket_bounds(bucket: int) -> tuple[int, int]:
    """Half-open value range ``[lo, hi)`` covered by ``bucket``."""
    if bucket < _SMALL:
        return bucket, bucket + 1
    msb = 4 + (bucket - _SMALL) // _SUB
    sub = (bucket - _SMALL) % _SUB
    return (_SUB + sub) << (msb - 3), (_SUB + sub + 1) << (msb - 3)


def sample_priority(seed: int, metric: str, device: int, draw: int) -> int:
    """Deterministic reservoir priority for one sample.

    A pure function of the sample's identity — independent of shard
    boundaries, merge order, and job count — so the "keep the K
    smallest priorities" reservoir is reproducible by construction.
    """
    digest = blake2b(
        f"{seed}:{metric}:{device}:{draw}".encode("utf-8"), digest_size=12
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass
class MetricSummary:
    """Fixed-size streaming summary of one integer-valued metric."""

    count: int = 0
    total: int = 0
    minimum: int | None = None
    maximum: int | None = None
    #: Sparse histogram: bucket index -> sample count.
    buckets: dict[int, int] = field(default_factory=dict)
    #: At most :data:`RESERVOIR_K` ``(priority, value)`` pairs, sorted.
    reservoir: list[tuple[int, int]] = field(default_factory=list)

    def add(self, value: int, priority: int) -> None:
        """Fold one sample in (priority from :func:`sample_priority`)."""
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        bucket = bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.reservoir.append((priority, value))
        if len(self.reservoir) > RESERVOIR_K:
            self.reservoir.sort()
            del self.reservoir[RESERVOIR_K:]

    def merge(self, other: "MetricSummary") -> "MetricSummary":
        """Associative, commutative combination of two summaries."""
        merged = MetricSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=_opt_min(self.minimum, other.minimum),
            maximum=_opt_max(self.maximum, other.maximum),
            buckets=dict(self.buckets),
        )
        for bucket, count in other.buckets.items():
            merged.buckets[bucket] = merged.buckets.get(bucket, 0) + count
        merged.reservoir = sorted(self.reservoir + other.reservoir)[:RESERVOIR_K]
        return merged

    # ------------------------------------------------------------ statistics

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Histogram-estimated quantile, clamped to the exact extrema."""
        if self.count == 0:
            return 0.0
        assert self.minimum is not None and self.maximum is not None
        rank = q * (self.count - 1)
        if rank <= 0:
            return float(self.minimum)
        if rank >= self.count - 1:
            return float(self.maximum)
        cumulative = 0
        for bucket in sorted(self.buckets):
            count = self.buckets[bucket]
            if rank < cumulative + count:
                lo, hi = bucket_bounds(bucket)
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum + 1)
                within = (rank - cumulative + 0.5) / count
                return min(float(self.maximum), lo + (hi - lo) * within)
            cumulative += count
        return float(self.maximum)

    def normalized(self) -> "MetricSummary":
        """Canonical field ordering (sorted reservoir and buckets).

        ``add`` keeps the reservoir unsorted below capacity and inserts
        histogram keys in arrival order; merge concatenation sorts.  The
        canonical form makes equality and serialized bytes independent
        of the path that built the summary.
        """
        return MetricSummary(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            buckets={bucket: self.buckets[bucket] for bucket in sorted(self.buckets)},
            reservoir=sorted(self.reservoir),
        )


def _opt_min(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


#: The metrics every device reports (integer units noted).
FLEET_METRICS = (
    "relaunch_ns",          # one sample per measured relaunch
    "kswapd_cpu_ns",        # one sample per device
    "flash_written_bytes",  # one sample per device
    "kills",                # one sample per device
)


@dataclass
class FleetAggregate:
    """One shard's (or the whole fleet's) merged summaries.

    Fixed-size by construction: per (scheme, metric) one
    :class:`MetricSummary`, plus the summed pressure ledger.  Merging
    shards is field-wise associative addition.
    """

    devices: int = 0
    pressure_devices: int = 0
    relaunches: int = 0
    #: scheme -> metric -> summary.
    by_scheme: dict[str, dict[str, MetricSummary]] = field(default_factory=dict)
    #: Summed :meth:`repro.lmk.PressurePlan.ledger` integers across
    #: every pressure-enabled device.
    ledger: dict[str, int] = field(default_factory=dict)
    #: True iff every pressure-enabled device's ledger balanced.
    ledger_consistent: bool = True

    def summary(self, scheme: str, metric: str) -> MetricSummary:
        per_scheme = self.by_scheme.setdefault(scheme, {})
        found = per_scheme.get(metric)
        if found is None:
            found = per_scheme[metric] = MetricSummary()
        return found

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        merged = FleetAggregate(
            devices=self.devices + other.devices,
            pressure_devices=self.pressure_devices + other.pressure_devices,
            relaunches=self.relaunches + other.relaunches,
            ledger_consistent=self.ledger_consistent and other.ledger_consistent,
        )
        for source in (self, other):
            for scheme, metrics in source.by_scheme.items():
                for metric, summary in metrics.items():
                    mine = merged.by_scheme.setdefault(scheme, {}).get(metric)
                    merged.by_scheme[scheme][metric] = (
                        summary.normalized() if mine is None
                        else mine.merge(summary)
                    )
            for name, value in source.ledger.items():
                merged.ledger[name] = merged.ledger.get(name, 0) + value
        return merged

    def normalized(self) -> "FleetAggregate":
        """Canonical key ordering for byte-stable serialization."""
        return FleetAggregate(
            devices=self.devices,
            pressure_devices=self.pressure_devices,
            relaunches=self.relaunches,
            by_scheme={
                scheme: {
                    metric: self.by_scheme[scheme][metric].normalized()
                    for metric in sorted(self.by_scheme[scheme])
                }
                for scheme in sorted(self.by_scheme)
            },
            ledger={name: self.ledger[name] for name in sorted(self.ledger)},
            ledger_consistent=self.ledger_consistent,
        )
