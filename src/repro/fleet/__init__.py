"""Fleet-scale simulation tier: sampled device populations, streaming
percentile aggregation, and bounded-memory shard execution.

The paper's claims are population claims — relaunch latency and kswapd
CPU averaged over many apps and devices.  This package turns the
single-device simulator into a population what-if engine: a seeded
generator samples N parameterized device profiles
(:mod:`repro.fleet.population`), shards of devices simulate
independently (:mod:`repro.fleet.simulate`), and fixed-size mergeable
summaries stream into fleet percentiles without per-device tables
(:mod:`repro.fleet.aggregate`).  The registered ``fleet`` experiment
(:mod:`repro.experiments.fleet`) rides the cell-sharded runner and
result cache, so fleets are embarrassingly parallel and incrementally
re-runnable: growing N only simulates the new shards.
"""

from .aggregate import (
    FLEET_METRICS,
    FleetAggregate,
    MetricSummary,
    RESERVOIR_K,
    bucket_bounds,
    bucket_of,
    sample_priority,
)
from .population import (
    DEFAULT_FLEET_SEED,
    DEFAULT_FULL_DEVICES,
    DEFAULT_QUICK_DEVICES,
    FLEET_DEVICES_ENV,
    FLEET_SEED_ENV,
    DeviceProfile,
    fleet_device_count,
    fleet_seed,
    sample_device,
)
from .simulate import (
    DeviceOutcome,
    fleet_platform,
    fleet_trace,
    run_shard,
    simulate_device,
)

__all__ = [
    "DEFAULT_FLEET_SEED",
    "DEFAULT_FULL_DEVICES",
    "DEFAULT_QUICK_DEVICES",
    "DeviceOutcome",
    "DeviceProfile",
    "FLEET_DEVICES_ENV",
    "FLEET_METRICS",
    "FLEET_SEED_ENV",
    "FleetAggregate",
    "MetricSummary",
    "RESERVOIR_K",
    "bucket_bounds",
    "bucket_of",
    "fleet_device_count",
    "fleet_platform",
    "fleet_seed",
    "fleet_trace",
    "run_shard",
    "sample_device",
    "sample_priority",
    "simulate_device",
]
