"""Per-device fleet simulation and the per-shard aggregation loop.

One device = one :class:`~repro.fleet.population.DeviceProfile` played
through a short app-switching scenario on a platform sized to the
device's RAM and flash classes.  A *shard* simulates a contiguous
device-index range and folds every device's metrics into one
fixed-size :class:`~repro.fleet.aggregate.FleetAggregate` — the shard
payload the runner ships between processes is O(1) in shard size.

Amortization across the population:

- *traces* are keyed by the device's app-mix signature, not its index:
  devices sharing a mix replay the same :class:`WorkloadTrace` object,
  memoized per worker process (:func:`fleet_trace`).  Reusing the trace
  object also reuses the columnar core's per-trace handle cache (PR 8)
  — pfn->handle arrays memoized on the ``AppTrace`` — and the shared
  compressed-size memo, so only the first device of a mix pays trace
  generation and first-touch compression;
- *platforms* are tiny frozen configs derived per device (cheap), but
  the footprint total they derive from is memoized with the trace.

Every quantity a device reports is an integer (ns, bytes, counts), so
shard aggregation and cross-shard merging are exactly associative —
the foundation of the fleet's byte-identical ``--json`` contract
across ``--jobs`` counts and cache states.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from ..core import PlatformConfig, PressureConfig
from ..lmk import PressurePlan, install_pressure
from ..sim import make_system, run_switching_scenario
from ..trace import TraceGenerator, WorkloadTrace
from ..units import MIB
from ..rng import derive_seed
from ..workload import profile_by_name
from .aggregate import FleetAggregate, sample_priority
from .population import DeviceProfile, sample_device

#: Footprint divisor applied to the paper-scale app profiles: a fleet
#: device runs miniature apps (tens of simulated pages) that exercise
#: the same code paths as the paper workloads in ~10 ms, which is what
#: makes thousand-device populations tractable in CI.
FOOTPRINT_DIVISOR = 48.0
_MIN_MB_10S = 3.0
_MIN_MB_5MIN = 4.5

#: Trace shape shared by every device (the mix signature is the only
#: per-device trace axis, so devices sharing a mix share a trace).
TRACE_SESSIONS = 3
TRACE_DURATION_S = 90.0

#: The zpool is capped well below the cold footprint so compressed-swap
#: tiering (Ariadne writeback, ZSWAP shrinking) engages fleet-wide.
_ZPOOL_FRACTION = 0.35
_SWAP_BYTES = 16 * MIB
_MIN_POOL_BYTES = 64 * 1024

#: Pressure lifecycle on tight-RAM devices: the SWAM-style hybrid
#: policy with the pressure experiment's trigger-happy thresholds, so
#: the lifecycle demonstrably fires inside a short scenario.
_PRESSURE = PressureConfig(
    policy="hybrid",
    some_threshold=0.02,
    full_threshold=0.10,
    kswapd_boost_max=3,
)


def fleet_app_profiles(app_names: tuple[str, ...]):
    """The mix's catalog profiles, footprint-scaled to fleet size."""
    scaled = []
    for name in app_names:
        profile = profile_by_name(name)
        scaled.append(replace(
            profile,
            anon_mb_10s=max(_MIN_MB_10S, profile.anon_mb_10s / FOOTPRINT_DIVISOR),
            anon_mb_5min=max(_MIN_MB_5MIN, profile.anon_mb_5min / FOOTPRINT_DIVISOR),
        ))
    return tuple(scaled)


@lru_cache(maxsize=128)
def fleet_trace(fleet_seed: int, app_names: tuple[str, ...]) -> WorkloadTrace:
    """Worker-memoized trace for one app-mix signature.

    The memo persists for the worker process's lifetime, spanning every
    shard cell the pool hands it — the "construct once per worker, not
    once per device" half of the fleet's runner amortization.
    """
    seed = derive_seed(fleet_seed, "fleet-trace:" + ",".join(app_names))
    generator = TraceGenerator(seed=seed)
    return generator.generate_workload(
        profiles=fleet_app_profiles(app_names),
        n_sessions=TRACE_SESSIONS,
        duration_s=TRACE_DURATION_S,
    )


def fleet_platform(profile: DeviceProfile, workload_bytes: int) -> PlatformConfig:
    """Platform constants for one device (RAM and flash class applied)."""
    return PlatformConfig(
        dram_bytes=max(_MIN_POOL_BYTES,
                       int(workload_bytes * profile.dram_fraction)),
        zpool_bytes=max(_MIN_POOL_BYTES,
                        int(workload_bytes * _ZPOOL_FRACTION)),
        swap_bytes=_SWAP_BYTES,
        flash_queue_depth=profile.flash_queue_depth,
    )


@dataclass
class DeviceOutcome:
    """One simulated device's raw integer metrics."""

    profile: DeviceProfile
    relaunch_ns: list[int]
    kswapd_cpu_ns: int
    flash_written_bytes: int
    kills: int
    ledger: dict[str, int]
    ledger_consistent: bool


def simulate_device(fleet_seed: int, profile: DeviceProfile) -> DeviceOutcome:
    """Play one device's sampled scenario; integer metrics only."""
    trace = fleet_trace(fleet_seed, profile.trace_signature)
    workload_bytes = sum(app.total_bytes() for app in trace.apps)
    system = make_system(
        profile.scheme, trace,
        platform=fleet_platform(profile, workload_bytes),
    )
    # Share the experiment layer's compressed-size memo (disk-backed
    # when the artifact cache is enabled) so devices repeating a page
    # payload never re-measure it.  Imported lazily: repro.fleet must
    # stay importable without triggering the experiments package.
    from ..experiments.common import _SHARED_SIZES

    system.ctx.sizes = _SHARED_SIZES
    plan = None
    if profile.pressure:
        plan = PressurePlan(_PRESSURE)
        install_pressure(system, plan)
    result = run_switching_scenario(
        system,
        duration_s=profile.duration_seconds,
        think_seconds=profile.think_seconds,
    )
    ledger: dict[str, int] = {}
    consistent = True
    if plan is not None:
        ledger = plan.ledger(system.ctx.counters)
        consistent = bool(ledger.pop("consistent"))
        ledger = {name: int(value) for name, value in ledger.items()}
    return DeviceOutcome(
        profile=profile,
        relaunch_ns=[r.latency_ns for r in result.relaunches],
        kswapd_cpu_ns=result.kswapd_cpu_ns,
        flash_written_bytes=result.flash_bytes_written,
        kills=system.ctx.counters.get("lmk_kills"),
        ledger=ledger,
        ledger_consistent=consistent,
    )


def _fold_device(
    aggregate: FleetAggregate, fleet_seed: int, outcome: DeviceOutcome
) -> None:
    """Stream one device's metrics into the shard aggregate."""
    profile = outcome.profile
    scheme = profile.scheme
    aggregate.devices += 1
    aggregate.relaunches += len(outcome.relaunch_ns)
    latency = aggregate.summary(scheme, "relaunch_ns")
    for draw, value in enumerate(outcome.relaunch_ns):
        latency.add(
            value,
            sample_priority(fleet_seed, "relaunch_ns", profile.index, draw),
        )
    for metric, value in (
        ("kswapd_cpu_ns", outcome.kswapd_cpu_ns),
        ("flash_written_bytes", outcome.flash_written_bytes),
        ("kills", outcome.kills),
    ):
        aggregate.summary(scheme, metric).add(
            value, sample_priority(fleet_seed, metric, profile.index, 0)
        )
    if profile.pressure:
        aggregate.pressure_devices += 1
        aggregate.ledger_consistent = (
            aggregate.ledger_consistent and outcome.ledger_consistent
        )
        for name, value in outcome.ledger.items():
            aggregate.ledger[name] = aggregate.ledger.get(name, 0) + value


def run_shard(fleet_seed: int, start: int, stop: int) -> FleetAggregate:
    """Simulate devices ``[start, stop)``; return their merged summary.

    A pure function of ``(fleet_seed, start, stop)`` — devices sample
    independently, traces are deterministic, and the fold runs in index
    order over integer metrics — so the payload is byte-identical
    across job counts, shard scheduling, and cache states, and a shard
    cached under fleet size N stays valid for every larger fleet.
    """
    aggregate = FleetAggregate()
    for index in range(start, stop):
        profile = sample_device(fleet_seed, index)
        _fold_device(aggregate, fleet_seed, simulate_device(fleet_seed, profile))
    return aggregate.normalized()
