"""Fleet population sampling: N parameterized devices from one seed.

A fleet is defined entirely by ``(fleet_seed, n_devices)``: device ``i``
is :func:`sample_device`'s pure function of ``(fleet_seed, i)`` — its
profile is identical whether the fleet holds ten devices or ten
million, which is what makes grown fleets incrementally re-runnable
(existing shards keep their cached results; only new device ranges
simulate).  Every dimension is drawn from an independent
:func:`repro.rng.derive_rng` stream per device, so no device's profile
perturbs another's.

Sampled dimensions (the population axes the paper's fleet-level claims
average over):

- *RAM class* — DRAM budget as a fraction of the device's anonymous
  workload footprint (tight devices additionally run the
  :mod:`repro.lmk` pressure lifecycle, the SWAM-style hybrid policy);
- *flash speed class* — the effective flash command overlap
  (``PlatformConfig.flash_queue_depth``);
- *app mix* — 2-3 apps drawn from the paper's ten-app catalog
  (:data:`repro.workload.profiles.APP_CATALOG`), footprint-scaled to
  fleet size by the simulation layer;
- *usage rhythm* — switching intermission and measured scenario length;
- *scheme* — which swap scheme this device ships (the fleet's what-if
  axis: per-scheme percentiles compare seeded subpopulations).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigError
from ..rng import derive_rng
from ..workload import APP_CATALOG

#: Environment knobs: fleet size and seed.  Both are folded into the
#: experiment's cell keys (never read inside a cell body), so results
#: cached under one fleet can never be served to another.
FLEET_DEVICES_ENV = "REPRO_FLEET_DEVICES"
FLEET_SEED_ENV = "REPRO_FLEET_SEED"

DEFAULT_FLEET_SEED = 404
#: Default population sizes (overridable via REPRO_FLEET_DEVICES):
#: the quick tier is CI's population smoke, the full tier the local
#: baseline; 10k+ runs just raise the env knob.
DEFAULT_QUICK_DEVICES = 200
DEFAULT_FULL_DEVICES = 1000

#: DRAM budget as a fraction of the device workload's anonymous
#: footprint, per RAM class.  "tight" matches the pressure experiment's
#: tightest headroom, where the low-memory lifecycle demonstrably fires.
RAM_CLASSES: tuple[tuple[str, float, float], ...] = (
    # (class, weight, dram fraction of workload footprint)
    ("tight", 0.25, 0.55),
    ("mid", 0.50, 0.74),
    ("roomy", 0.25, 0.95),
)

#: Effective flash command overlap per speed class (UFS generations).
FLASH_CLASSES: tuple[tuple[str, float, int], ...] = (
    # (class, weight, flash_queue_depth)
    ("slow", 0.30, 2),
    ("mainstream", 0.50, 4),
    ("fast", 0.20, 8),
)

#: Scheme mix across the fleet (the DRAM baseline is excluded: it
#: models unbounded memory, which no fleet device has).
SCHEME_MIX: tuple[tuple[str, float], ...] = (
    ("Ariadne", 0.40),
    ("ZRAM", 0.30),
    ("SWAP", 0.15),
    ("ZSWAP", 0.15),
)

#: Usage-rhythm axes, in deciseconds so profiles stay all-integer.
THINK_DECISECONDS = (5, 10, 20)
DURATION_DECISECONDS = (50, 60, 80)

#: Apps per device.
APP_COUNT_WEIGHTS: tuple[tuple[int, float], ...] = ((2, 0.5), (3, 0.5))


@dataclass(frozen=True)
class DeviceProfile:
    """One sampled device: everything its simulation depends on.

    Frozen and all-integer/str so profiles are hashable, picklable, and
    trivially comparable in tests; a profile is a pure function of
    ``(fleet_seed, index)`` and nothing else.
    """

    index: int
    ram_class: str
    dram_fraction: float
    flash_class: str
    flash_queue_depth: int
    app_names: tuple[str, ...]
    scheme: str
    think_ds: int
    duration_ds: int
    pressure: bool

    @property
    def think_seconds(self) -> float:
        return self.think_ds / 10.0

    @property
    def duration_seconds(self) -> float:
        return self.duration_ds / 10.0

    @property
    def trace_signature(self) -> tuple[str, ...]:
        """The app mix, in catalog order — the device's trace identity.

        Devices sharing a signature replay the *same* workload trace,
        so per-worker trace memos (and the columnar core's per-trace
        handle cache) amortize construction across the population.
        """
        return self.app_names


def _weighted(rng, table):
    """Pick ``entry`` from ``(value..., weight)`` rows by one draw."""
    draw = rng.random()
    cumulative = 0.0
    for row in table:
        cumulative += row[1]
        if draw < cumulative:
            return row
    return table[-1]


def sample_device(fleet_seed: int, index: int) -> DeviceProfile:
    """Device ``index``'s profile: a pure function of ``(seed, index)``.

    Each dimension consumes the device's own derived stream in a fixed
    order, so adding devices (growing N) or re-sampling a neighbor can
    never shift this device's draws.
    """
    if index < 0:
        raise ConfigError(f"device index must be >= 0, got {index}")
    rng = derive_rng(fleet_seed, f"fleet-device:{index}")
    ram_class, _, dram_fraction = _weighted(rng, RAM_CLASSES)
    flash_class, _, queue_depth = _weighted(rng, FLASH_CLASSES)
    n_apps, _ = _weighted(rng, APP_COUNT_WEIGHTS)
    catalog = [profile.name for profile in APP_CATALOG]
    picked = set(rng.sample(range(len(catalog)), n_apps))
    app_names = tuple(
        name for i, name in enumerate(catalog) if i in picked
    )
    scheme, _ = _weighted(rng, SCHEME_MIX)
    think_ds = rng.choice(THINK_DECISECONDS)
    duration_ds = rng.choice(DURATION_DECISECONDS)
    return DeviceProfile(
        index=index,
        ram_class=ram_class,
        dram_fraction=dram_fraction,
        flash_class=flash_class,
        flash_queue_depth=queue_depth,
        app_names=app_names,
        scheme=scheme,
        think_ds=think_ds,
        duration_ds=duration_ds,
        pressure=ram_class == "tight",
    )


def fleet_seed() -> int:
    """The fleet seed from the environment (cell keys embed it)."""
    raw = os.environ.get(FLEET_SEED_ENV)
    if not raw:
        return DEFAULT_FLEET_SEED
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"{FLEET_SEED_ENV} must be an integer: {raw!r}") from None


def fleet_device_count(quick: bool) -> int:
    """Population size: ``REPRO_FLEET_DEVICES`` or the tier default."""
    raw = os.environ.get(FLEET_DEVICES_ENV)
    if raw:
        try:
            count = int(raw)
        except ValueError:
            raise ConfigError(
                f"{FLEET_DEVICES_ENV} must be an integer: {raw!r}"
            ) from None
        if count < 1:
            raise ConfigError(f"{FLEET_DEVICES_ENV} must be >= 1, got {count}")
        return count
    return DEFAULT_QUICK_DEVICES if quick else DEFAULT_FULL_DEVICES
