"""Persistent artifact cache: compressed sizes, workload traces, and
experiment results.

Every figure and table regenerates from expensive, perfectly
deterministic artifacts:

- *compressed sizes* — ``(payload, codec, chunk size) -> stored bytes``
  facts measured by really running the codecs (the encoders are
  byte-stable by contract, so a measured size never goes stale);
- *workload traces* — deterministic functions of ``(generator version,
  seed, profiles, sessions, duration)``;
- *experiment results* — whole experiments and their sharded cells are
  deterministic functions of the source tree and their arguments, so
  :class:`ExperimentResultCache` memoizes them keyed by a code
  fingerprint: an unchanged cell is a disk read on re-runs and in CI,
  and *any* source edit invalidates everything at once.

This module persists all three across processes so repeated benchmark
and CI runs skip trace generation, first-touch compression, and
re-measurement of unchanged cells entirely, without changing a single
measured number.

Layout under the cache root::

    sizes-v1-<codec>-<chunk_size>.bin   # 20-byte records: digest(16) + u32 size
    trace-v1-<key digest>.artrace       # via repro.trace.io
    result-v1-<experiment>-<key digest>.pkl   # pickled cell payload / result object

Size files are append-only; each flush is a single ``write`` of whole
records to an ``O_APPEND`` descriptor, so concurrent writers (the
parallel experiment runner) interleave only at record granularity.  A
truncated tail record — possible if a writer dies mid-write — is ignored
on load.  Duplicate records are harmless (same key, same deterministic
value).  Result files are written atomically (rename), so concurrent
workers racing on the same cell simply overwrite each other with the
identical payload.

Set ``REPRO_CACHE_DIR`` to relocate the cache, or to ``0`` / ``off`` to
disable persistence (experiments then fall back to in-memory caching).
"""

from __future__ import annotations

import json
import os
import pickle
import struct
from functools import lru_cache
from hashlib import blake2b
from pathlib import Path

from .compression.base import Compressor
from .compression.chunking import _DIGEST_SIZE, SizeCache
from .errors import TraceFormatError
from .trace.io import load_trace, save_trace
from .trace.records import WorkloadTrace
from .workload.profiles import AppProfile

#: Bump when the size-record layout changes — or when a codec's output
#: is *intentionally* changed (sizes are facts about codec output, so a
#: behavioral codec change must invalidate every persisted size).
_SIZES_FORMAT = 1
#: Bump when the trace container or generator semantics change.
_TRACE_FORMAT = 1
#: Bump when the result-cache envelope changes (content invalidation is
#: automatic via the code fingerprint).  v2 added the checksummed
#: envelope (magic + payload digest) so torn or bit-rotted entries are
#: detected before unpickling.
_RESULTS_FORMAT = 2

#: Result-envelope framing: magic, then a blake2b-16 digest of the
#: pickled payload, then the payload itself.
_RESULT_MAGIC = b"ARES2\n"
_RESULT_DIGEST_SIZE = 16

_RECORD = struct.Struct(f"<{_DIGEST_SIZE}sI")

#: Environment variable selecting the cache root ("0"/"off"/"" disables).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DEFAULT_ROOT = Path.home() / ".cache" / "ariadne-repro"


def default_cache_root() -> Path | None:
    """Cache root from the environment, or ``None`` when disabled."""
    raw = os.environ.get(CACHE_DIR_ENV)
    if raw is None:
        return _DEFAULT_ROOT
    if raw.strip().lower() in ("", "0", "off", "none", "disabled"):
        return None
    return Path(raw)


class ArtifactCache:
    """On-disk store for compressed-size facts and serialized traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------- compressed sizes

    def _sizes_path(self, codec_name: str, chunk_size: int) -> Path:
        return self.root / f"sizes-v{_SIZES_FORMAT}-{codec_name}-{chunk_size}.bin"

    def load_sizes(self, codec_name: str, chunk_size: int) -> dict[bytes, int]:
        """All persisted sizes for one (codec, chunk size) pair."""
        path = self._sizes_path(codec_name, chunk_size)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return {}
        sizes: dict[bytes, int] = {}
        whole = len(raw) - len(raw) % _RECORD.size
        if whole != len(raw):
            # A writer died mid-append: the torn tail record is garbage.
            # Truncate it away (best-effort) so the next O_APPEND flush
            # starts on a record boundary instead of extending the tear.
            try:
                with open(path, "r+b") as fh:
                    fh.truncate(whole)
            except OSError:
                pass
        for offset in range(0, whole, _RECORD.size):
            digest, size = _RECORD.unpack_from(raw, offset)
            sizes[digest] = size
        return sizes

    def append_sizes(
        self, codec_name: str, chunk_size: int, entries: dict[bytes, int]
    ) -> None:
        """Persist newly measured sizes (append-only, atomic per flush)."""
        if not entries:
            return
        payload = b"".join(
            _RECORD.pack(digest, size) for digest, size in entries.items()
        )
        fd = os.open(
            self._sizes_path(codec_name, chunk_size),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)

    # ----------------------------------------------------------------- traces

    @staticmethod
    def trace_key(
        seed: int,
        profiles: tuple[AppProfile, ...],
        n_sessions: int,
        duration_s: float,
        generator_version: int,
    ) -> str:
        """Content key capturing everything trace generation depends on."""
        blob = json.dumps(
            {
                "generator_version": generator_version,
                "seed": seed,
                "profiles": [profile.__dict__ for profile in profiles],
                "n_sessions": n_sessions,
                "duration_s": duration_s,
            },
            sort_keys=True,
        ).encode("utf-8")
        return blake2b(blob, digest_size=16).hexdigest()

    def _trace_path(self, key: str) -> Path:
        return self.root / f"trace-v{_TRACE_FORMAT}-{key}.artrace"

    def load_workload(self, key: str) -> WorkloadTrace | None:
        """Load a cached workload trace, or ``None`` on miss/corruption."""
        path = self._trace_path(key)
        if not path.exists():
            return None
        try:
            return load_trace(path)
        except (TraceFormatError, OSError):
            # A corrupt artifact is a cache miss, not an error: drop it so
            # the regenerated trace can take its place.
            path.unlink(missing_ok=True)
            return None

    def store_workload(self, key: str, trace: WorkloadTrace) -> None:
        """Persist a workload trace under ``key`` (atomic rename)."""
        path = self._trace_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        save_trace(trace, tmp)
        os.replace(tmp, path)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content digest of the whole ``repro`` source tree.

    Hashes every ``*.py`` file under the package root (path + bytes), so
    *any* source change — a codec tweak, a scheme refactor, an
    experiment edit — yields a new fingerprint and therefore a cold
    result cache.  Deliberately coarse: correctness of memoized results
    can never depend on guessing which modules an experiment touches.
    """
    digest = blake2b(digest_size=16)
    root = Path(__file__).resolve().parent
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ExperimentResultCache:
    """Memoized experiment results keyed by code version and arguments.

    Payloads are whatever an experiment's ``run_cell`` returns (or a
    whole experiment's structured result object, under ``cell=None``):
    perfectly deterministic given the source tree, the experiment, the
    cell, and the arguments — exactly the key.  A hit replaces a simulation run
    with one disk read; a source edit anywhere in ``repro`` changes the
    fingerprint and misses everything, so stale results are structurally
    impossible rather than policed.
    """

    def __init__(self, root: str | Path, fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.hits = 0
        self.misses = 0
        #: Entries rejected by the envelope check and quarantined.
        self.corrupt_entries = 0

    def _path(self, experiment: str, cell: str | None, args: object) -> Path:
        blob = json.dumps(
            {
                "fingerprint": self.fingerprint,
                "experiment": experiment,
                "cell": cell,
                "args": args,
            },
            sort_keys=True,
        ).encode("utf-8")
        key = blake2b(blob, digest_size=16).hexdigest()
        return self.root / f"result-v{_RESULTS_FORMAT}-{experiment}-{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the loadable namespace.

        The ``.corrupt`` suffix never matches a result path, so the
        entry becomes a permanent miss while the evidence survives for
        inspection; if even the rename fails, delete it outright.
        """
        self.corrupt_entries += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def load(self, experiment: str, cell: str | None, args: object) -> object | None:
        """Cached payload for this exact (code, experiment, cell, args),
        or ``None`` on miss.

        Robust against every observed on-disk failure mode — a torn
        write (truncated envelope), a wrong-format file, a payload whose
        digest no longer matches, or a pickle that raises
        ``UnpicklingError``/``EOFError`` — all are treated as a miss:
        the entry is quarantined and the caller recomputes the cell.
        """
        path = self._path(experiment, cell, args)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        header = len(_RESULT_MAGIC) + _RESULT_DIGEST_SIZE
        if (
            len(raw) < header
            or not raw.startswith(_RESULT_MAGIC)
            or blake2b(raw[header:], digest_size=_RESULT_DIGEST_SIZE).digest()
            != raw[len(_RESULT_MAGIC):header]
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            payload = pickle.loads(raw[header:])
        except Exception:
            # Digest-valid but unloadable (e.g. pickled against classes
            # that no longer import): same remedy, recompute.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(
        self, experiment: str, cell: str | None, args: object, payload: object
    ) -> None:
        """Persist ``payload`` (atomic rename; best-effort on I/O errors)."""
        path = self._path(experiment, cell, args)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            digest = blake2b(blob, digest_size=_RESULT_DIGEST_SIZE).digest()
            tmp.write_bytes(_RESULT_MAGIC + digest + blob)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            tmp.unlink(missing_ok=True)


class PersistentSizeCache(SizeCache):
    """A :class:`SizeCache` backed by an :class:`ArtifactCache`.

    Disk state loads lazily per (codec, chunk size) pair on first use;
    new measurements accumulate in memory and reach disk on
    :meth:`flush` (the experiment harness flushes after every experiment
    and at interpreter exit).
    """

    def __init__(
        self, artifacts: ArtifactCache, max_entries: int = 1 << 20
    ) -> None:
        super().__init__(max_entries)
        self._artifacts = artifacts
        self._loaded: set[tuple[str, int]] = set()
        self._dirty: dict[tuple[str, int], dict[bytes, int]] = {}
        #: Entries served from disk instead of fresh measurement.
        self.disk_entries_loaded = 0

    def compressed_size(
        self, codec: Compressor, data: bytes, chunk_size: int
    ) -> int:
        pair = (codec.name, chunk_size)
        if pair not in self._loaded:
            self._load_pair(pair)
        return super().compressed_size(codec, data, chunk_size)

    def _load_pair(self, pair: tuple[str, int]) -> None:
        codec_name, chunk_size = pair
        persisted = self._artifacts.load_sizes(codec_name, chunk_size)
        self.disk_entries_loaded += len(persisted)
        for digest, size in persisted.items():
            super()._store((digest, codec_name, chunk_size), size)
        self._loaded.add(pair)

    def _store(self, key: tuple[bytes, str, int], size: int) -> None:
        super()._store(key, size)
        digest, codec_name, chunk_size = key
        self._dirty.setdefault((codec_name, chunk_size), {})[digest] = size

    def flush(self) -> int:
        """Write dirty entries to disk; returns how many were written."""
        written = 0
        for (codec_name, chunk_size), entries in self._dirty.items():
            self._artifacts.append_sizes(codec_name, chunk_size, entries)
            written += len(entries)
        self._dirty.clear()
        return written

    def clear(self) -> None:
        """Drop the in-memory state (disk artifacts stay untouched)."""
        super().clear()
        self._loaded.clear()
        self._dirty.clear()
        self.disk_entries_loaded = 0
