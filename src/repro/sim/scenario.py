"""Usage scenarios: the 60-second switching workloads of Section 2.3.

- *light*: switching between the ten applications with 1 s intermission
  between switches;
- *heavy*: launching/relaunching the ten applications sequentially with
  no intermission.

Both run until the simulated clock passes the scenario duration, then
report wall time, CPU, flash traffic, and the energy-model tally
(Figure 3 and Table 2 inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy import EnergyModel, EnergyReport
from ..metrics import KSWAPD, RelaunchResult
from ..units import SECOND
from .system import MobileSystem


@dataclass
class ScenarioResult:
    """Everything a scenario run measured."""

    scheme_name: str
    wall_ns: int
    cpu_by_thread: dict[str, int]
    cpu_by_activity: dict[str, int]
    counters: dict[str, int]
    flash_bytes_read: int
    flash_bytes_written: int
    energy: EnergyReport
    relaunches: list[RelaunchResult] = field(default_factory=list)

    @property
    def kswapd_cpu_ns(self) -> int:
        """Reclaim-thread CPU (Figure 3's metric)."""
        return self.cpu_by_thread.get(KSWAPD, 0)

    @property
    def codec_cpu_ns(self) -> int:
        """Compression + decompression CPU across threads (Figure 11)."""
        return self.cpu_by_activity.get("compress", 0) + self.cpu_by_activity.get(
            "decompress", 0
        )


def _run_scenario(
    system: MobileSystem,
    duration_s: float,
    think_seconds: float,
    energy_model: EnergyModel | None,
) -> ScenarioResult:
    model = energy_model if energy_model is not None else EnergyModel()
    clock = system.ctx.clock
    system.launch_all(settle_seconds=min(2.0, think_seconds + 0.5))
    # The measured window starts once the apps are up (the paper measures
    # 60 s of switching, not the initial installs).
    start_ns = clock.now_ns
    relaunches: list[RelaunchResult] = []
    names = [app.name for app in system.apps]
    index = 0
    while clock.now_ns - start_ns < duration_s * SECOND:
        name = names[index % len(names)]
        live = system.app(name)
        session = min(live.next_session, len(live.trace.sessions) - 1)
        relaunches.append(system.relaunch(name, session))
        if think_seconds > 0:
            clock.advance(int(think_seconds * SECOND))
        index += 1
    wall_ns = clock.now_ns - start_ns
    cpu = system.ctx.cpu
    # Sum flash traffic across every swap device: with a single device
    # (every scheme but multi-device ZSWAP) this is exactly the primary
    # device's totals.
    devices = getattr(system.ctx.flash_swap, "devices",
                      (system.ctx.flash_device,))
    bytes_read = sum(device.host_bytes_read for device in devices)
    bytes_written = sum(device.host_bytes_written for device in devices)
    energy = model.energy(
        wall_ns=wall_ns,
        cpu_busy_ns=cpu.total_ns,
        dram_bytes_moved=system.ctx.counters.get("dram_bytes_moved"),
        flash_bytes_read=bytes_read,
        flash_bytes_written=bytes_written,
    )
    return ScenarioResult(
        scheme_name=system.scheme.name,
        wall_ns=wall_ns,
        cpu_by_thread=cpu.threads(),
        cpu_by_activity=cpu.activities(),
        counters=system.ctx.counters.as_dict(),
        flash_bytes_read=bytes_read,
        flash_bytes_written=bytes_written,
        energy=energy,
        relaunches=relaunches,
    )


def run_light_scenario(
    system: MobileSystem,
    duration_s: float = 60.0,
    energy_model: EnergyModel | None = None,
) -> ScenarioResult:
    """Light workload: 1 s intermission between app switches."""
    return _run_scenario(system, duration_s, think_seconds=1.0,
                         energy_model=energy_model)


def run_switching_scenario(
    system: MobileSystem,
    duration_s: float,
    think_seconds: float,
    energy_model: EnergyModel | None = None,
) -> ScenarioResult:
    """App switching with a configurable intermission.

    The fleet tier samples usage rhythm per device; the light/heavy
    scenarios above stay the paper's fixed shapes.
    """
    return _run_scenario(system, duration_s, think_seconds=think_seconds,
                         energy_model=energy_model)


def run_heavy_scenario(
    system: MobileSystem,
    duration_s: float = 60.0,
    energy_model: EnergyModel | None = None,
) -> ScenarioResult:
    """Heavy workload: back-to-back launches with no intermission."""
    return _run_scenario(system, duration_s, think_seconds=0.0,
                         energy_model=energy_model)
