"""System-level simulation: the phone, its apps, and usage scenarios."""

from .scenario import (
    ScenarioResult,
    run_heavy_scenario,
    run_light_scenario,
    run_switching_scenario,
)
from .system import SCHEME_NAMES, MobileSystem, make_system

__all__ = [
    "MobileSystem",
    "SCHEME_NAMES",
    "ScenarioResult",
    "make_system",
    "run_heavy_scenario",
    "run_light_scenario",
    "run_switching_scenario",
]
