"""The simulated phone: DRAM + zpool + flash + a swap scheme + apps.

:class:`MobileSystem` replays workload traces against a swap scheme and
measures what the paper measures: relaunch latency (with its breakdown),
CPU time per thread/activity, bytes through flash, and energy inputs.

Relaunch latency model: when every page is in DRAM, a relaunch costs the
profile's measured DRAM latency (Figure 2's DRAM bar), split into a fixed
part (process/activity work) and a per-hot-page part (reading the working
set).  Any page that is *not* in DRAM adds its fault stall on top —
decompression, flash reads, and on-demand compression — which is exactly
how the schemes differentiate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import (
    AriadneConfig,
    AriadneScheme,
    DramScheme,
    FlashSwapScheme,
    PlatformConfig,
    RelaunchScenario,
    SwapScheme,
    ZramScheme,
    ZswapConfig,
    ZswapScheme,
    build_context,
    pixel7_platform,
)
from ..errors import ConfigError, PageStateError
from ..mem.page import Page
from ..metrics import APP, AccessRun, RelaunchResult
from ..trace.records import AppTrace, WorkloadTrace
from ..units import MS, SECOND

SCHEME_NAMES = ("DRAM", "ZRAM", "SWAP", "ZSWAP", "Ariadne")


@dataclass
class LiveApp:
    """Runtime state of one installed application."""

    trace: AppTrace
    pages: dict[int, Page]
    launched: bool = False
    next_session: int = 0
    #: Set by the low-memory killer (:mod:`repro.lmk`); the next
    #: relaunch is a cold launch charged ``process_create_ns``.
    killed: bool = False
    relaunch_results: list[RelaunchResult] = field(default_factory=list)
    #: Memoized replay runs (see :meth:`access_run`).
    _access_runs: dict[tuple, AccessRun] = field(
        default_factory=dict, repr=False
    )

    @property
    def uid(self) -> int:
        return self.trace.uid

    @property
    def name(self) -> str:
        return self.trace.name

    def access_run(
        self, stream: str, index: int, pfns: tuple[int, ...]
    ) -> AccessRun:
        """The materialized page run for one replay stream, memoized.

        A scenario replays the same immutable pfn streams many times
        (once the trace runs out of sessions, the last one repeats for
        every further relaunch), and this app's :class:`Page` objects
        are fixed for the system's lifetime — so the per-page dict
        lookups are paid once per (stream, session), not per replay.
        The memoized object is an :class:`repro.metrics.AccessRun`: the
        scheme stamps its residency verification directly on it, which
        is what lets a repeat replay skip every per-page residency
        probe.  Callers treat the returned run as read-only.  The pfn
        sequence is part of the key, so a caller replaying a different
        sequence under a reused (stream, index) can never be served a
        stale run (hashing the tuple is microseconds against the build
        it saves).
        """
        key = (stream, index, pfns)
        run = self._access_runs.get(key)
        if run is None:
            pages = self.pages
            run = AccessRun([pages[pfn] for pfn in pfns], self.uid)
            # Columnar core: a trace-level host for this run's handle
            # array.  Handles are a pure function of the immutable
            # trace (first-touch = launch creation order), so every
            # system built from this trace assigns the same numbers and
            # the array can be shared across systems and schemes (the
            # organizer still verifies agreement before trusting it —
            # see ``ColumnarOrganizerMixin.run_handles``).
            trace = self.trace
            host = getattr(trace, "_columnar_run_handles", None)
            if host is None:
                host = {}
                object.__setattr__(trace, "_columnar_run_handles", host)
            run.handle_cache = (host, key)
            self._access_runs[key] = run
        return run


class MobileSystem:
    """Drives one swap scheme over a workload trace."""

    def __init__(self, scheme: SwapScheme, trace: WorkloadTrace) -> None:
        self.scheme = scheme
        self.ctx = scheme.ctx
        self.trace = trace
        self._apps: dict[int, LiveApp] = {}
        for app_trace in trace.apps:
            self._apps[app_trace.uid] = LiveApp(
                trace=app_trace, pages=app_trace.materialize()
            )

    # ----------------------------------------------------------------- lookup

    def app(self, name: str) -> LiveApp:
        """Installed app by name."""
        for live in self._apps.values():
            if live.name == name:
                return live
        raise ConfigError(f"app {name!r} is not in this workload")

    @property
    def apps(self) -> list[LiveApp]:
        """All installed apps in trace order."""
        return [self._apps[t.uid] for t in self.trace.apps]

    # ------------------------------------------------------- pressure lifecycle

    def mark_killed(self, uid: int) -> None:
        """Record a low-memory kill (called by an installed plan)."""
        self._apps[uid].killed = True

    def app_killed(self, uid: int) -> bool:
        """Whether ``uid`` is dead (killed and not yet relaunched)."""
        live = self._apps.get(uid)
        return live is not None and live.killed

    # ----------------------------------------------------------------- launch

    def launch_app(self, name: str, settle_seconds: float = 10.0) -> None:
        """Cold-launch an app: allocate its anonymous data, warm its
        execution working set, then let kswapd settle."""
        live = self.app(name)
        if live.launched:
            raise PageStateError(f"{name} is already launched; use relaunch")
        self.scheme.register_app(
            live.uid, hot_seed_limit=live.trace.launch_page_count
        )
        # Columnar core: page handles are allocated lazily on first
        # admission (``handles_for`` ensures unknown pages in creation
        # order), so no separate priming pass is needed here.
        self.scheme.note_app_switch(live.uid)
        # The whole launch stream arrives as one coalesced (uid,
        # timestamp-ordered) run: batched admission is number-invariant
        # by construction (one watermark check admits the run when it
        # fits; under pressure the scheme runs the exact per-page
        # reference walk), so finer per-timestamp batching could only
        # add redundant checks, never change a victim.  The order —
        # (created_at_s, pfn) — is precomputed on the trace.
        pages = live.pages
        self.scheme.on_pages_created(
            live.uid,
            [pages[record.pfn] for record in live.trace.creation_order()],
        )
        self.scheme.end_launch(live.uid)
        # Touch the first session's execution set: the app ran for a while
        # before being backgrounded, so its warm data has been accessed.
        # Address order decorrelates this initial pass from the session's
        # own access order — the two are different executions.
        if live.trace.sessions:
            self.scheme.access_batch(
                live.access_run(
                    "warmup", 0, live.trace.sessions[0].execution_order()
                )
            )
        live.launched = True
        self.ctx.clock.advance(int(settle_seconds * SECOND))
        self.scheme.background_reclaim()

    def launch_all(self, settle_seconds: float = 10.0) -> None:
        """Launch every app in trace order (the paper's pressure setup)."""
        for app_trace in self.trace.apps:
            self.launch_app(app_trace.name, settle_seconds=settle_seconds)

    # ------------------------------------------------------------ EHL/AL setup

    def prepare_relaunch(
        self, name: str, scenario: RelaunchScenario | None
    ) -> None:
        """Force the paper's relaunch data placement before measuring.

        AL compresses all of the target's lists; EHL leaves the hot list
        resident.  ``None`` leaves whatever pressure produced (the organic
        state).  The DRAM baseline never compresses, so this is a no-op
        for it.
        """
        if scenario is None or isinstance(self.scheme, DramScheme):
            return
        live = self.app(name)
        exclude_hot = scenario is RelaunchScenario.EHL
        self.scheme.force_compress_app(live.uid, exclude_hot=exclude_hot)
        if exclude_hot:
            # EHL is defined by its measured state: the hot list resides
            # in main memory.  Earlier pressure may have pushed hot pages
            # out; bring them back (background work, not measured).
            restore = getattr(self.scheme, "restore_hot_resident", None)
            if restore is not None:
                restore(live.uid)
        self.scheme.background_reclaim()

    # ---------------------------------------------------------------- relaunch

    def relaunch(
        self, name: str, session_index: int | None = None, run_execution: bool = True
    ) -> RelaunchResult:
        """Hot-launch an app from the background and measure its latency."""
        live = self.app(name)
        if not live.launched:
            raise PageStateError(f"{name} must be launched before relaunching")
        sessions = live.trace.sessions
        if session_index is None:
            session_index = min(live.next_session, len(sessions) - 1)
        if not 0 <= session_index < len(sessions):
            raise ConfigError(
                f"{name} has {len(sessions)} sessions; {session_index} invalid"
            )
        session = sessions[session_index]
        profile = live.trace.profile
        platform = self.ctx.platform

        fixed_ns = int(
            profile.dram_relaunch_ms * MS * platform.relaunch_fixed_fraction
        )
        n_pages = max(1, len(session.relaunch_pfns))
        per_page_ns = int(
            profile.dram_relaunch_ms
            * MS
            * (1.0 - platform.relaunch_fixed_fraction)
            / n_pages
        )

        self.scheme.begin_relaunch(live.uid)
        result = RelaunchResult(
            app_name=name, scheme_name=self.scheme.name, latency_ns=fixed_ns
        )
        result.breakdown.dram_ns += fixed_ns
        if live.killed:
            # The process was low-memory-killed: this relaunch re-creates
            # it from scratch (Section 2.1 — process creation dominates
            # cold launches).  Its data faults back through the lost-page
            # path below, which charges the per-page cost.
            create_ns = platform.process_create_ns
            result.latency_ns += create_ns
            result.breakdown.process_create_ns += create_ns
            live.killed = False
            self.ctx.counters.incr("lmk_cold_relaunches")
        # Batched replay: the summary's totals are exactly what the
        # per-access loop accumulated (per-page DRAM time is uniform, so
        # it distributes over the count), with no per-hit object churn.
        # The page run itself is memoized on the app — replays repeat.
        summary = self.scheme.access_batch(
            live.access_run("relaunch", session.index, session.relaunch_pfns),
            thread=APP,
        )
        result.latency_ns += per_page_ns * summary.pages + summary.stall_ns
        result.breakdown.dram_ns += per_page_ns * summary.pages
        result.breakdown.add(summary.breakdown)
        result.pages_accessed += summary.pages
        result.pages_from_dram += summary.from_dram
        result.pages_from_zpool += summary.from_zpool
        result.pages_from_flash += summary.from_flash
        result.pages_from_staging += summary.from_staging
        self.ctx.clock.advance(result.latency_ns)
        self.scheme.end_relaunch(live.uid)
        if run_execution:
            self._run_execution(live, session)
        live.next_session = session_index + 1
        live.relaunch_results.append(result)
        self.scheme.background_reclaim()
        return result

    def _run_execution(self, live: LiveApp, session) -> None:
        """Play the session's post-relaunch execution accesses.

        Execution faults stall the app but are not part of relaunch
        latency; they still cost CPU and move the clock.
        """
        summary = self.scheme.access_batch(
            live.access_run("execution", session.index, session.execution_pfns),
            thread=APP,
        )
        self.ctx.clock.advance(summary.stall_ns)

    # ----------------------------------------------------------------- helpers

    def switch_away(self, name: str) -> None:
        """Background an app without measuring anything."""
        live = self.app(name)
        self.scheme.note_app_switch(live.uid)
        self.scheme.background_reclaim()


def make_system(
    scheme_name: str,
    trace: WorkloadTrace,
    platform: PlatformConfig | None = None,
    codec_name: str = "lzo",
    ariadne_config: AriadneConfig | None = None,
    zswap_config: ZswapConfig | None = None,
) -> MobileSystem:
    """Factory: build a system running ``scheme_name`` over ``trace``.

    ``scheme_name`` is one of ``DRAM`` / ``ZRAM`` / ``SWAP`` / ``ZSWAP``
    / ``Ariadne``.  For the DRAM baseline the platform's DRAM budget is
    inflated to hold the whole workload (the paper's "optimistic
    assumption that DRAM is large enough").  ``ZSWAP`` builds its swap
    area over ``zswap_config.n_devices`` equal-priority flash devices.
    """
    base_platform = platform if platform is not None else pixel7_platform()
    real_budget = base_platform.dram_bytes
    if scheme_name == "DRAM":
        total = sum(a.total_bytes() for a in trace.apps)
        base_platform = PlatformConfig(
            dram_bytes=max(base_platform.dram_bytes, 2 * total),
            zpool_bytes=base_platform.zpool_bytes,
            swap_bytes=base_platform.swap_bytes,
            scale=base_platform.scale,
            parallelism=base_platform.parallelism,
        )
    n_flash_devices = 1
    if scheme_name == "ZSWAP":
        if zswap_config is None:
            zswap_config = ZswapConfig()
        n_flash_devices = zswap_config.n_devices
    ctx = build_context(base_platform, codec_name,
                        n_flash_devices=n_flash_devices)
    if scheme_name == "DRAM":
        scheme: SwapScheme = DramScheme(ctx, pressure_budget_bytes=real_budget)
    elif scheme_name == "ZRAM":
        scheme = ZramScheme(ctx)
    elif scheme_name == "SWAP":
        scheme = FlashSwapScheme(ctx)
    elif scheme_name == "ZSWAP":
        scheme = ZswapScheme(ctx, zswap_config)
    elif scheme_name == "Ariadne":
        scheme = AriadneScheme(ctx, ariadne_config)
    else:
        raise ConfigError(
            f"unknown scheme {scheme_name!r}; choose from {SCHEME_NAMES}"
        )
    return MobileSystem(scheme, trace)
