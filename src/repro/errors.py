"""Exception hierarchy for the Ariadne reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem and
carry enough context in their message to debug a failing simulation without
a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class CorruptDataError(CompressionError):
    """Decompression produced output that fails integrity checks."""


class MemoryPressureError(ReproError):
    """The simulated system could not free enough memory to proceed."""


class ZpoolFullError(MemoryPressureError):
    """The zpool has no room for a compressed block and writeback is off."""


class FlashFullError(MemoryPressureError):
    """The flash swap area ran out of slots."""


class FlashIOError(ReproError):
    """A flash device command failed (injected by a fault plan)."""


class TransientFlashError(FlashIOError):
    """A flash command failed but a retry may succeed."""


class PermanentFlashError(FlashIOError):
    """A flash command failed unrecoverably (media error, bad block)."""


class ChunkLostError(ReproError):
    """A stored chunk became unreadable and was dropped.

    Internal control flow for the graceful-degradation path: the scheme
    already marked the chunk's pages lost when this is raised, so the
    access that hit it falls back to a cold refault instead of crashing.
    """


class InvariantViolationError(ReproError):
    """A runtime audit found simulator bookkeeping out of sync.

    Raised only under ``REPRO_AUDIT=1`` (see :mod:`repro.audit`); the
    message carries the counter, the expected ground-truth value, and
    the drifted running value.
    """


class PageStateError(ReproError):
    """A page was found in a state inconsistent with the requested move."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class SchedulingError(ReproError):
    """The simulated clock or an event was manipulated inconsistently."""
