"""Flash-backed swap area: slot allocation on top of the device model.

Used two ways, exactly as in the paper: the SWAP baseline writes raw
pages here, and Ariadne writes *compressed cold chunks* here when the
zpool overflows (the ZSWAP role, Section 4.1), which is what keeps its
flash writes small.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FlashFullError
from ..units import fmt_bytes
from .device import FlashDevice


@dataclass(frozen=True)
class SwapSlot:
    """One occupied region of the swap area.

    ``sequential`` records whether the slot was written as one contiguous
    extent (a compressed-chunk writeback) or as independently-placed
    pages (classic swap-out); it determines how many device commands a
    later read needs.
    """

    slot_id: int
    stored_bytes: int
    sequential: bool = False
    #: Which equal-priority device holds the slot (0 = primary).
    device_index: int = 0


#: Largest contiguous transfer a single UFS command covers in our model.
_MAX_SEQ_COMMAND_BYTES = 256 * 1024


class FlashSwapArea:
    """Slot-granular swap space on a :class:`FlashDevice`.

    Args:
        device: The flash device latencies/wear are charged to.
        capacity_bytes: Size of the swap partition/file (simulation scale).
        byte_scale: Real bytes represented by one stored byte.  Slot
            accounting stays at simulation scale, but device latency and
            wear are charged for the real transfer (one simulated page
            stands for ``byte_scale`` real pages).
        n_devices: Equal-priority swap devices sharing the capacity.
            ``device`` is device 0; extras are built from its config.
            Single-slot ``store``/``load`` stay on device 0 (the classic
            single-device paths are bit-identical); batched writeback
            picks a device per batch (see :meth:`store_batch`).
    """

    def __init__(
        self,
        device: FlashDevice,
        capacity_bytes: int,
        byte_scale: int = 1,
        n_devices: int = 1,
    ) -> None:
        if capacity_bytes <= 0:
            raise FlashFullError(
                f"swap area capacity must be positive: {capacity_bytes}"
            )
        if byte_scale < 1:
            raise FlashFullError(f"byte_scale must be >= 1, got {byte_scale}")
        if n_devices < 1:
            raise FlashFullError(f"n_devices must be >= 1, got {n_devices}")
        self.device = device
        self.devices: tuple[FlashDevice, ...] = (device,) + tuple(
            FlashDevice(device.config, index=i) for i in range(1, n_devices)
        )
        self.capacity_bytes = capacity_bytes
        self.byte_scale = byte_scale
        self._slots: dict[int, SwapSlot] = {}
        self._next_slot = 1
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining swap space."""
        return self.capacity_bytes - self._used_bytes

    def has_room_for(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more fit."""
        return nbytes <= self.free_bytes

    def _command_count(self, real_bytes: int, sequential: bool) -> int:
        if sequential:
            return max(1, -(-real_bytes // _MAX_SEQ_COMMAND_BYTES))
        return self.byte_scale

    def store(self, nbytes: int, sequential: bool = False) -> tuple[SwapSlot, int]:
        """Write ``nbytes`` to swap; returns (slot, write latency ns).

        ``sequential`` marks the slot as one contiguous extent (compressed
        chunk writeback); otherwise the transfer is ``byte_scale``
        independent page writes.
        """
        if nbytes > self.free_bytes:
            raise FlashFullError(
                f"swap area cannot fit {fmt_bytes(nbytes)} "
                f"(free {fmt_bytes(self.free_bytes)})"
            )
        # Device write first, slot allocation second: an injected write
        # fault (repro.faults) must not leak a half-allocated slot.  On
        # the success path this ordering is observationally identical.
        real_bytes = nbytes * self.byte_scale
        latency_ns = self.device.write_many(
            real_bytes, n_commands=self._command_count(real_bytes, sequential)
        )
        slot = SwapSlot(
            slot_id=self._next_slot, stored_bytes=nbytes, sequential=sequential
        )
        self._next_slot += 1
        self._slots[slot.slot_id] = slot
        self._used_bytes += nbytes
        return slot, latency_ns

    def load(self, slot_id: int) -> tuple[SwapSlot, int]:
        """Read a slot's contents; returns (slot, read latency ns).

        The slot stays allocated — freeing is a separate decision, as in
        the kernel (swap slots persist until ``swap_free``).
        """
        slot = self._slots.get(slot_id)
        if slot is None:
            raise FlashFullError(f"swap slot {slot_id} is not occupied")
        real_bytes = slot.stored_bytes * self.byte_scale
        latency_ns = self.devices[slot.device_index].read_many(
            real_bytes, n_commands=self._command_count(real_bytes, slot.sequential)
        )
        return slot, latency_ns

    def store_batch(
        self, sizes: list[int], device_index: int = 0
    ) -> tuple[tuple[SwapSlot, ...], int]:
        """Write a reclaim batch to contiguous slots on one device.

        The batch lands in consecutively numbered slots (the kernel's
        ``scan_swap_map`` cluster allocation), written as one sequential
        command train — what makes a later ``page-cluster`` readahead of
        the neighboring slots a single sequential read.  Returns
        ``(slots, write latency ns)``.  Like :meth:`store`, the device
        write happens before any slot is allocated, so an injected write
        fault leaks nothing and a retry is an exact re-execution.
        """
        if not sizes:
            raise FlashFullError("writeback batch cannot be empty")
        if not 0 <= device_index < len(self.devices):
            raise FlashFullError(
                f"device index {device_index} out of range "
                f"(have {len(self.devices)} device(s))"
            )
        total = sum(sizes)
        if total > self.free_bytes:
            raise FlashFullError(
                f"swap area cannot fit {fmt_bytes(total)} batch "
                f"(free {fmt_bytes(self.free_bytes)})"
            )
        real_total = total * self.byte_scale
        latency_ns = self.devices[device_index].write_many(
            real_total, n_commands=self._command_count(real_total, True)
        )
        slots = []
        for nbytes in sizes:
            slot = SwapSlot(
                slot_id=self._next_slot,
                stored_bytes=nbytes,
                sequential=True,
                device_index=device_index,
            )
            self._next_slot += 1
            self._slots[slot.slot_id] = slot
            self._used_bytes += nbytes
            slots.append(slot)
        return tuple(slots), latency_ns

    def load_run(self, slot_ids: list[int]) -> tuple[tuple[SwapSlot, ...], int]:
        """Read several same-device slots as one sequential command train.

        The zswap readahead path uses this for the contiguous slots of
        one writeback batch: the whole window costs one sequential read
        rather than per-slot random commands.  All slots must be
        occupied and on the same device; they stay allocated (freeing is
        the caller's decision, as with :meth:`load`).
        """
        if not slot_ids:
            raise FlashFullError("slot run cannot be empty")
        slots = []
        for slot_id in slot_ids:
            slot = self._slots.get(slot_id)
            if slot is None:
                raise FlashFullError(f"swap slot {slot_id} is not occupied")
            slots.append(slot)
        device_index = slots[0].device_index
        if any(slot.device_index != device_index for slot in slots):
            raise FlashFullError(
                "slot run spans devices; a sequential read cannot"
            )
        real_total = sum(slot.stored_bytes for slot in slots) * self.byte_scale
        latency_ns = self.devices[device_index].read_many(
            real_total, n_commands=self._command_count(real_total, True)
        )
        return tuple(slots), latency_ns

    def write_commands_by_device(self) -> tuple[int, ...]:
        """Per-device write-command totals (striping visibility)."""
        return tuple(device.write_commands for device in self.devices)

    def host_bytes_written_by_device(self) -> tuple[int, ...]:
        """Per-device host bytes written (striping visibility)."""
        return tuple(device.host_bytes_written for device in self.devices)

    def free(self, slot_id: int) -> SwapSlot:
        """Release a slot without I/O (invalidation is metadata-only)."""
        slot = self._slots.pop(slot_id, None)
        if slot is None:
            raise FlashFullError(f"swap slot {slot_id} is not occupied")
        self._used_bytes -= slot.stored_bytes
        return slot

    @property
    def slot_count(self) -> int:
        """Number of occupied slots."""
        return len(self._slots)
