"""Flash-backed swap area: slot allocation on top of the device model.

Used two ways, exactly as in the paper: the SWAP baseline writes raw
pages here, and Ariadne writes *compressed cold chunks* here when the
zpool overflows (the ZSWAP role, Section 4.1), which is what keeps its
flash writes small.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FlashFullError
from ..units import fmt_bytes
from .device import FlashDevice


@dataclass(frozen=True)
class SwapSlot:
    """One occupied region of the swap area.

    ``sequential`` records whether the slot was written as one contiguous
    extent (a compressed-chunk writeback) or as independently-placed
    pages (classic swap-out); it determines how many device commands a
    later read needs.
    """

    slot_id: int
    stored_bytes: int
    sequential: bool = False


#: Largest contiguous transfer a single UFS command covers in our model.
_MAX_SEQ_COMMAND_BYTES = 256 * 1024


class FlashSwapArea:
    """Slot-granular swap space on a :class:`FlashDevice`.

    Args:
        device: The flash device latencies/wear are charged to.
        capacity_bytes: Size of the swap partition/file (simulation scale).
        byte_scale: Real bytes represented by one stored byte.  Slot
            accounting stays at simulation scale, but device latency and
            wear are charged for the real transfer (one simulated page
            stands for ``byte_scale`` real pages).
    """

    def __init__(
        self, device: FlashDevice, capacity_bytes: int, byte_scale: int = 1
    ) -> None:
        if capacity_bytes <= 0:
            raise FlashFullError(
                f"swap area capacity must be positive: {capacity_bytes}"
            )
        if byte_scale < 1:
            raise FlashFullError(f"byte_scale must be >= 1, got {byte_scale}")
        self.device = device
        self.capacity_bytes = capacity_bytes
        self.byte_scale = byte_scale
        self._slots: dict[int, SwapSlot] = {}
        self._next_slot = 1
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining swap space."""
        return self.capacity_bytes - self._used_bytes

    def has_room_for(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more fit."""
        return nbytes <= self.free_bytes

    def _command_count(self, real_bytes: int, sequential: bool) -> int:
        if sequential:
            return max(1, -(-real_bytes // _MAX_SEQ_COMMAND_BYTES))
        return self.byte_scale

    def store(self, nbytes: int, sequential: bool = False) -> tuple[SwapSlot, int]:
        """Write ``nbytes`` to swap; returns (slot, write latency ns).

        ``sequential`` marks the slot as one contiguous extent (compressed
        chunk writeback); otherwise the transfer is ``byte_scale``
        independent page writes.
        """
        if nbytes > self.free_bytes:
            raise FlashFullError(
                f"swap area cannot fit {fmt_bytes(nbytes)} "
                f"(free {fmt_bytes(self.free_bytes)})"
            )
        # Device write first, slot allocation second: an injected write
        # fault (repro.faults) must not leak a half-allocated slot.  On
        # the success path this ordering is observationally identical.
        real_bytes = nbytes * self.byte_scale
        latency_ns = self.device.write_many(
            real_bytes, n_commands=self._command_count(real_bytes, sequential)
        )
        slot = SwapSlot(
            slot_id=self._next_slot, stored_bytes=nbytes, sequential=sequential
        )
        self._next_slot += 1
        self._slots[slot.slot_id] = slot
        self._used_bytes += nbytes
        return slot, latency_ns

    def load(self, slot_id: int) -> tuple[SwapSlot, int]:
        """Read a slot's contents; returns (slot, read latency ns).

        The slot stays allocated — freeing is a separate decision, as in
        the kernel (swap slots persist until ``swap_free``).
        """
        slot = self._slots.get(slot_id)
        if slot is None:
            raise FlashFullError(f"swap slot {slot_id} is not occupied")
        real_bytes = slot.stored_bytes * self.byte_scale
        latency_ns = self.device.read_many(
            real_bytes, n_commands=self._command_count(real_bytes, slot.sequential)
        )
        return slot, latency_ns

    def free(self, slot_id: int) -> SwapSlot:
        """Release a slot without I/O (invalidation is metadata-only)."""
        slot = self._slots.pop(slot_id, None)
        if slot is None:
            raise FlashFullError(f"swap slot {slot_id} is not occupied")
        self._used_bytes -= slot.stored_bytes
        return slot

    @property
    def slot_count(self) -> int:
        """Number of occupied slots."""
        return len(self._slots)
