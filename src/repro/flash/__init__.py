"""Flash-storage substrate: a UFS-like device model and a swap area."""

from .device import FlashDevice, FlashDeviceConfig
from .swaparea import FlashSwapArea, SwapSlot

__all__ = ["FlashDevice", "FlashDeviceConfig", "FlashSwapArea", "SwapSlot"]
