"""UFS-like flash device latency and wear model.

The Pixel 7's UFS 3.1 storage serves ~4 KB random reads in the
80-100 us range and sustains roughly 2 GB/s sequential reads; writes are
slower and, critically for the paper's lifetime argument, wear out flash
cells.  The model charges a fixed per-command cost plus a per-byte
transfer cost and counts every byte written (the wear figure the paper's
Section 2.2 cares about).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import US


@dataclass(frozen=True)
class FlashDeviceConfig:
    """Latency/wear coefficients for the flash device.

    Defaults approximate a UFS 3.1 part like the Pixel 7's.
    """

    read_command_ns: int = 80 * US
    write_command_ns: int = 120 * US
    #: Transfer cost per byte on reads (~2 GB/s sequential).
    read_per_byte_ns: float = 0.5
    #: Transfer cost per byte on writes (~1 GB/s sustained program rate).
    write_per_byte_ns: float = 1.0
    #: NAND write amplification applied to wear accounting.
    write_amplification: float = 1.5

    def validate(self) -> None:
        if self.read_command_ns < 0 or self.write_command_ns < 0:
            raise ConfigError("flash command latencies cannot be negative")
        if self.read_per_byte_ns < 0 or self.write_per_byte_ns < 0:
            raise ConfigError("flash per-byte latencies cannot be negative")
        if self.write_amplification < 1.0:
            raise ConfigError("write amplification cannot be below 1.0")


class FlashDevice:
    """Charges latency for flash I/O and tracks wear.

    ``fault_plan`` (normally installed via
    :func:`repro.faults.install_fault_plan`) is consulted *before* any
    counter moves, so an injected failure leaves the device state
    untouched — a retry is an exact re-execution, and with no plan (or
    a rate-0 plan) every number is bit-identical to the fault-free
    model.
    """

    def __init__(
        self, config: FlashDeviceConfig | None = None, index: int = 0
    ) -> None:
        self.config = config if config is not None else FlashDeviceConfig()
        self.config.validate()
        if index < 0:
            raise ConfigError(f"device index cannot be negative: {index}")
        #: Position in a multi-device swap setup (0 = the primary device;
        #: :class:`~repro.flash.swaparea.FlashSwapArea` stripes writeback
        #: batches across equal-priority devices by this index).
        self.index = index
        self.host_bytes_read = 0
        self.host_bytes_written = 0
        self.read_commands = 0
        self.write_commands = 0
        #: Optional :class:`repro.faults.FaultPlan` injecting I/O errors.
        self.fault_plan = None

    def read(self, nbytes: int) -> int:
        """Perform a read; returns latency in ns and updates counters."""
        if nbytes < 0:
            raise ConfigError(f"cannot read negative bytes: {nbytes}")
        if self.fault_plan is not None:
            self.fault_plan.before_read()
        self.host_bytes_read += nbytes
        self.read_commands += 1
        return self.config.read_command_ns + int(nbytes * self.config.read_per_byte_ns)

    def write(self, nbytes: int) -> int:
        """Perform a write; returns latency in ns and updates counters."""
        if nbytes < 0:
            raise ConfigError(f"cannot write negative bytes: {nbytes}")
        if self.fault_plan is not None:
            self.fault_plan.before_write()
        self.host_bytes_written += nbytes
        self.write_commands += 1
        return self.config.write_command_ns + int(
            nbytes * self.config.write_per_byte_ns
        )

    def read_many(self, total_bytes: int, n_commands: int) -> int:
        """Read ``total_bytes`` spread over ``n_commands`` random commands.

        Swap-in of one simulated page is ``scale`` real 4 KB reads, each
        its own command — this is what makes flash swap-in slow even
        though the aggregate bandwidth looks fine.
        """
        if n_commands < 1:
            raise ConfigError(f"n_commands must be >= 1, got {n_commands}")
        if self.fault_plan is not None:
            self.fault_plan.before_read()
        self.host_bytes_read += total_bytes
        self.read_commands += n_commands
        return n_commands * self.config.read_command_ns + int(
            total_bytes * self.config.read_per_byte_ns
        )

    def write_many(self, total_bytes: int, n_commands: int) -> int:
        """Write ``total_bytes`` over ``n_commands`` commands."""
        if n_commands < 1:
            raise ConfigError(f"n_commands must be >= 1, got {n_commands}")
        if self.fault_plan is not None:
            self.fault_plan.before_write()
        self.host_bytes_written += total_bytes
        self.write_commands += n_commands
        return n_commands * self.config.write_command_ns + int(
            total_bytes * self.config.write_per_byte_ns
        )

    @property
    def nand_bytes_written(self) -> int:
        """Wear-relevant bytes programmed into NAND (after amplification)."""
        return int(self.host_bytes_written * self.config.write_amplification)
