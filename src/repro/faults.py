"""Deterministic fault injection: seeded flash-I/O and corruption chaos.

Production compressed swap must survive what the simulator's perfect
substrate never shows: transient flash command failures, unrecoverable
media errors, and bit-flips in stored compressed payloads.  A
:class:`FaultPlan` injects all three deterministically — every decision
comes from per-category ``random.Random`` streams derived from one seed,
so a chaotic run replays bit-identically across processes and job
counts.

Wiring: :func:`install_fault_plan` attaches the plan to a scheme context
and its flash device.  The device consults the plan *before* mutating
any counter, so a failed command charges nothing and retries are exact
re-executions.  The schemes own the recovery policy (bounded
retry-with-backoff on transient errors; drop-and-cold-refault on
permanent errors and corruption) and expose it through the
``fault_*`` counters listed in :data:`repro.metrics.FAULT_COUNTERS`.

With no plan installed (or any plan at rate 0) the hot paths see one
``is None`` test (or a never-firing RNG draw that touches no simulator
state), so fault injection is free when off: golden numbers stay
bit-identical.
"""

from __future__ import annotations

import random
from hashlib import blake2b

from .errors import PermanentFlashError, TransientFlashError
from .units import US

#: Injection-ledger categories (see :meth:`FaultPlan.injected`).
_CATEGORIES = (
    "read_transient",
    "read_permanent",
    "write_transient",
    "write_permanent",
    "bitflips",
)


def _stream(seed: int, name: str) -> random.Random:
    """An independent deterministic RNG stream for one fault category.

    The seed is derived by hashing, not offsetting, so streams stay
    independent for any user seed (and independent of
    ``PYTHONHASHSEED`` — blake2b, not ``hash``).
    """
    digest = blake2b(f"{seed}:{name}".encode("utf-8"), digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


class FaultPlan:
    """Seeded fault-injection schedule for one simulated system.

    One plan serves one system: the decision streams are stateful, so
    sharing a plan across systems couples their fault schedules.

    Args:
        seed: Root seed for all decision streams.
        read_error_rate: Probability a flash read command errors.
        write_error_rate: Probability a flash write command errors.
        permanent_fraction: Given an error, probability it is permanent
            (unrecoverable) rather than transient (retryable).
        bitflip_rate: Probability a freshly stored compressed chunk is
            silently corrupted (detected at decompress time by the
            per-page content-digest check).
        max_retries: Bounded retry budget per transient-error sequence.
        retry_backoff_ns: Backoff charged before the first retry;
            doubles per attempt (capped at 64x).
    """

    def __init__(
        self,
        seed: int = 2025,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        permanent_fraction: float = 0.1,
        bitflip_rate: float = 0.0,
        max_retries: int = 3,
        retry_backoff_ns: int = 100 * US,
    ) -> None:
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("write_error_rate", write_error_rate),
            ("permanent_fraction", permanent_fraction),
            ("bitflip_rate", bitflip_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_retries < 0:
            raise ValueError(f"max_retries cannot be negative: {max_retries}")
        if retry_backoff_ns < 0:
            raise ValueError(
                f"retry_backoff_ns cannot be negative: {retry_backoff_ns}"
            )
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.write_error_rate = write_error_rate
        self.permanent_fraction = permanent_fraction
        self.bitflip_rate = bitflip_rate
        self.max_retries = max_retries
        self.retry_backoff_ns = retry_backoff_ns
        self._read_rng = _stream(seed, "flash-read")
        self._write_rng = _stream(seed, "flash-write")
        self._flip_rng = _stream(seed, "bitflip")
        self._injected: dict[str, int] = {name: 0 for name in _CATEGORIES}

    # ------------------------------------------------------------- decisions

    def before_read(self) -> None:
        """Decide one flash read command's fate; raises on injection."""
        if self.read_error_rate <= 0.0:
            return
        if self._read_rng.random() >= self.read_error_rate:
            return
        if self._read_rng.random() < self.permanent_fraction:
            self._injected["read_permanent"] += 1
            raise PermanentFlashError("injected permanent flash read error")
        self._injected["read_transient"] += 1
        raise TransientFlashError("injected transient flash read error")

    def before_write(self) -> None:
        """Decide one flash write command's fate; raises on injection."""
        if self.write_error_rate <= 0.0:
            return
        if self._write_rng.random() >= self.write_error_rate:
            return
        if self._write_rng.random() < self.permanent_fraction:
            self._injected["write_permanent"] += 1
            raise PermanentFlashError("injected permanent flash write error")
        self._injected["write_transient"] += 1
        raise TransientFlashError("injected transient flash write error")

    def corrupt_on_store(self) -> bool:
        """Whether the chunk being stored right now gets a bit-flip."""
        if self.bitflip_rate <= 0.0:
            return False
        if self._flip_rng.random() >= self.bitflip_rate:
            return False
        self._injected["bitflips"] += 1
        return True

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based, doubling)."""
        return self.retry_backoff_ns << min(attempt - 1, 6)

    # --------------------------------------------------------------- ledger

    def injected(self) -> dict[str, int]:
        """Copy of the per-category injection counts so far."""
        return dict(self._injected)

    @property
    def injected_total(self) -> int:
        """Total faults injected so far (all categories)."""
        return sum(self._injected.values())

    def ledger(self, counters) -> dict[str, object]:
        """Cross-check injections against the schemes' recovery counters.

        Returns a dict with the injected counts, the recovery counts,
        and ``consistent`` — True iff every injected fault is accounted
        for: transient errors were each either retried to success or
        abandoned after the retry budget, and every drop the schemes
        recorded traces back to a permanent error, an abandoned retry
        sequence, or an injected bit-flip.
        """
        injected = self.injected()
        transient = injected["read_transient"] + injected["write_transient"]
        recovered = counters.get("fault_transient_recovered")
        abandoned = counters.get("fault_transient_abandoned")
        dropped = counters.get("fault_chunks_dropped")
        dropped_io = counters.get("fault_dropped_flash_io")
        dropped_corrupt = counters.get("fault_dropped_corrupt")
        consistent = (
            recovered + abandoned == transient
            and dropped == dropped_io + dropped_corrupt
            and dropped_corrupt <= injected["bitflips"]
        )
        return {
            "injected": injected,
            "recovered_transient": recovered,
            "abandoned_transient": abandoned,
            "chunks_dropped": dropped,
            "consistent": consistent,
        }


def install_fault_plan(ctx, plan: FaultPlan | None) -> None:
    """Attach ``plan`` to a scheme context and its flash device.

    Pass ``None`` to detach.  Must run before the scenario starts — a
    mid-run install skips decisions for I/O already performed, breaking
    the deterministic replay property.
    """
    ctx.fault_plan = plan
    ctx.flash_device.fault_plan = plan
    # Multi-device swap setups (zswap striping) share the one plan: a
    # batch write consults it once regardless of which device it lands
    # on, so the decision sequence is independent of device count.
    for device in getattr(ctx.flash_swap, "devices", ()):
        device.fault_plan = plan
