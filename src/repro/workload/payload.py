"""Synthetic anonymous-page payload generation.

The paper's Insight 2 attributes fast small-chunk compression to mobile
anonymous data's structure: "an anonymous page contains multiple types of
data blocks, and similar types of data are gathered within a small region
(e.g., 128B or 512B)".  This generator reproduces that structure so the
*real* codecs in :mod:`repro.compression` measure the paper's ratio curve
(about 1.7 at 128 B chunks rising toward ~3.9 at 128 KB, Figure 6):

- a page is a sequence of 128 B *fields*;
- a *fresh* field repeats a short motif with a few byte mutations —
  redundancy confined to the field, harvestable even by 128 B chunks;
- a *template* field is copied verbatim from a per-app pool — redundancy
  across fields and pages, harvestable only by chunks large enough to
  span multiple occurrences;
- an *entropy* field is random (media/cipher payloads) — incompressible
  at any chunk size;
- zero fields and all-zero pages mirror the kernel's same-filled pages.
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from ..mem.page import PageKind
from ..units import PAGE_SIZE
from .profiles import AppProfile

FIELD_SIZE = 128
FIELDS_PER_PAGE = PAGE_SIZE // FIELD_SIZE

#: Distinct template fields per app.  Small enough that templates repeat
#: many times across a large chunk (cross-page redundancy), large enough
#: that a single page rarely repeats one.
_TEMPLATE_POOL_SIZE = 40
#: Distinct motifs fresh fields draw from.
_MOTIF_POOL_SIZE = 160
#: Probability a compressible field is a template copy (vs. fresh).
_TEMPLATE_PROB = 0.78
#: Byte mutations applied to each fresh field (keeps 128 B ratio ~1.7).
_FRESH_MUTATIONS = 5
#: Probability a non-entropy field is all zeros (slack space in objects).
_ZERO_FIELD_PROB = 0.05


class PayloadGenerator:
    """Generates 4 KB page payloads for one application.

    Deterministic given (profile, rng state): the same seed yields the
    same trace bytes, which keeps every experiment reproducible.

    Args:
        profile: The application being synthesized (supplies the
            incompressible and zero-page fractions).
        rng: Private random stream (see :mod:`repro.rng`).
    """

    def __init__(self, profile: AppProfile, rng: random.Random) -> None:
        self._profile = profile
        self._rng = rng
        self._motifs = [self._make_motif() for _ in range(_MOTIF_POOL_SIZE)]
        self._templates = [self._make_template() for _ in range(_TEMPLATE_POOL_SIZE)]

    def _make_motif(self) -> bytes:
        """A short high-redundancy seed string (40..64 bytes).

        Motif length tunes the within-field ratio: one motif fills most of
        a 128 B field, so a field alone compresses to roughly
        motif + match + mutations (about 1.7x, the paper's 128 B point).
        """
        length = self._rng.randrange(40, 65)
        return bytes(self._rng.randrange(256) for _ in range(length))

    def _make_template(self) -> bytes:
        """A reusable 128 B field built by tiling one motif."""
        motif = self._rng.choice(self._motifs)
        copies = -(-FIELD_SIZE // len(motif))
        return (motif * copies)[:FIELD_SIZE]

    def _fresh_field(self) -> bytes:
        """A field with redundancy confined to itself."""
        base = bytearray(self._make_template())
        for _ in range(_FRESH_MUTATIONS):
            base[self._rng.randrange(FIELD_SIZE)] = self._rng.randrange(256)
        return bytes(base)

    def _entropy_field(self) -> bytes:
        """An incompressible field (decoded media, encrypted data)."""
        return self._rng.randbytes(FIELD_SIZE)

    def generate_page(self) -> tuple[bytes, PageKind]:
        """Synthesize one page; returns (payload, kind).

        The kind reflects the dominant field type, which downstream code
        only uses for reporting.
        """
        rng = self._rng
        if rng.random() < self._profile.zero_page_fraction:
            return bytes(PAGE_SIZE), PageKind.ZERO
        fields: list[bytes] = []
        entropy_fields = 0
        template_fields = 0
        for _ in range(FIELDS_PER_PAGE):
            roll = rng.random()
            if roll < self._profile.incompressible_fraction:
                fields.append(self._entropy_field())
                entropy_fields += 1
            elif roll < self._profile.incompressible_fraction + _ZERO_FIELD_PROB:
                fields.append(bytes(FIELD_SIZE))
            elif rng.random() < _TEMPLATE_PROB:
                # Quadratic skew: a few templates dominate, so large chunks
                # see the same field many times (better large-chunk ratio).
                index = int(rng.random() ** 2 * _TEMPLATE_POOL_SIZE)
                fields.append(self._templates[index])
                template_fields += 1
            else:
                fields.append(self._fresh_field())
        payload = b"".join(fields)
        if len(payload) != PAGE_SIZE:
            raise ConfigError(
                f"generated page is {len(payload)} bytes, expected {PAGE_SIZE}"
            )
        if entropy_fields > FIELDS_PER_PAGE // 3:
            kind = PageKind.BITMAP
        elif template_fields > FIELDS_PER_PAGE // 2:
            kind = PageKind.UI_SURFACE
        else:
            kind = PageKind.HEAP_OBJECTS
        return payload, kind
