"""Per-application calibration profiles.

Each :class:`AppProfile` captures what the paper measured about one app.
Values for YouTube, Twitter, Firefox, Google Earth and BangDream come
straight from the paper (Table 1 volumes, Table 3 locality, Figure 5
similarity); the other five apps the paper ran (TikTok, Edge, Google
Maps, Angry Birds, TwitchTV) have no published per-app numbers, so their
profiles are set to plausible values inside the ranges the paper reports
(EXPERIMENTS.md flags them as uncalibrated).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Android-oomd-style kill priority per app class: higher = more
#: killable.  The low-memory killer (:mod:`repro.lmk`) weighs these
#: against LRU recency; "cached" is the default for apps with no class.
OOM_CLASS_SCORES: dict[str, int] = {
    "system": 0,
    "navigation": 3,
    "social": 4,
    "browser": 5,
    "media": 6,
    "game": 7,
    "cached": 8,
}


@dataclass(frozen=True)
class AppProfile:
    """Calibration knobs for one application's synthetic workload.

    Attributes:
        name: Application name as used in the paper's figures.
        uid: Stable application id (Android UID analogue).
        anon_mb_10s: Anonymous data volume 10 s after launch (paper MB).
        anon_mb_5min: Anonymous data volume 5 min after launch (paper MB).
        hot_fraction: Fraction of the 5-min footprint used during a
            relaunch (the hot set).
        warm_fraction: Fraction used during post-relaunch execution.
        hot_similarity: Overlap between consecutive relaunch hot sets
            (Figure 5 "Hot Data Similarity").
        reused_fraction: Fraction of one relaunch's hot set found in the
            next relaunch's hot+warm sets (Figure 5 "Reused Data").
        locality_p2: Probability of two consecutive zpool sector accesses
            during relaunch swap-in (Table 3, row "2").
        locality_p4: Probability of four consecutive accesses (row "4").
        dram_relaunch_ms: Relaunch latency when all data is in DRAM
            (the Figure 2/10 "DRAM" bar).
        incompressible_fraction: Fraction of page fields holding
            high-entropy media/cipher data (drives per-app ratio spread).
        zero_page_fraction: Fraction of fully zero pages.
        app_class: Kill-priority class (:data:`OOM_CLASS_SCORES` key)
            consumed by the low-memory killer's oom-score formula.
    """

    name: str
    uid: int
    anon_mb_10s: float
    anon_mb_5min: float
    hot_fraction: float
    warm_fraction: float
    hot_similarity: float
    reused_fraction: float
    locality_p2: float
    locality_p4: float
    dram_relaunch_ms: float
    incompressible_fraction: float = 0.15
    zero_page_fraction: float = 0.06
    app_class: str = "cached"

    def __post_init__(self) -> None:
        if self.app_class not in OOM_CLASS_SCORES:
            raise ConfigError(
                f"{self.name}: app_class {self.app_class!r} not in "
                f"{sorted(OOM_CLASS_SCORES)}"
            )
        if self.anon_mb_10s <= 0 or self.anon_mb_5min < self.anon_mb_10s:
            raise ConfigError(
                f"{self.name}: anon volumes must satisfy 0 < 10s <= 5min"
            )
        for field_name in (
            "hot_fraction",
            "warm_fraction",
            "hot_similarity",
            "reused_fraction",
            "locality_p2",
            "locality_p4",
            "incompressible_fraction",
            "zero_page_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{self.name}: {field_name}={value} not in [0, 1]")
        if self.hot_fraction + self.warm_fraction > 1.0:
            raise ConfigError(
                f"{self.name}: hot+warm fractions exceed 1.0 "
                f"({self.hot_fraction} + {self.warm_fraction})"
            )
        if self.locality_p4 > self.locality_p2:
            raise ConfigError(
                f"{self.name}: P(4 consecutive) cannot exceed P(2 consecutive)"
            )
        if self.dram_relaunch_ms <= 0:
            raise ConfigError(f"{self.name}: dram_relaunch_ms must be positive")

    def anon_mb_at(self, seconds: float) -> float:
        """Anonymous-data volume (paper MB) after ``seconds`` of execution.

        Linear ramp from launch to the 10 s point, then logarithmic growth
        to the 5 min point (allocation bursts early, then tapers), then
        flat — matching the paper's observation that volume keeps growing
        with run time (Table 1 discussion).
        """
        import math

        if seconds <= 0:
            return 0.0
        if seconds <= 10.0:
            return self.anon_mb_10s * (seconds / 10.0)
        if seconds >= 300.0:
            return self.anon_mb_5min
        span = self.anon_mb_5min - self.anon_mb_10s
        progress = math.log(seconds / 10.0) / math.log(300.0 / 10.0)
        return self.anon_mb_10s + span * progress


def solve_run_mix(p2: float, p4: float) -> tuple[float, int]:
    """Derive sequential-run parameters from the paper's Table 3 numbers.

    The relaunch swap-in sequence is generated as runs of consecutive
    sectors: a run has length 1 with probability ``w`` and length ``K``
    otherwise.  For such a mixture, the fraction of adjacent access pairs
    is ``(1-w)(K-1) / E[L]`` and the fraction of fully consecutive
    4-windows is ``(1-w)(K-3) / E[L]`` with ``E[L] = w + (1-w)K``.
    Inverting those two equations for (``w``, ``K``) makes the generator
    hit the target (p2, p4) in expectation.

    Returns:
        (w, K): singleton-run probability and long-run length.
    """
    if not 0.0 < p2 < 1.0:
        raise ConfigError(f"p2 must be in (0, 1), got {p2}")
    if not 0.0 < p4 <= p2:
        raise ConfigError(f"p4 must be in (0, p2], got {p4}")
    ratio = p2 / p4
    if ratio <= 1.0:
        # p4 == p2 means runs never end inside a window; use a long run.
        return 0.0, 64
    run_length = (3.0 * ratio - 1.0) / (ratio - 1.0)
    k = min(256, max(4, round(run_length)))
    w = (k * (1.0 - p2) - 1.0) / ((k - 1) * (1.0 - p2))
    w = min(max(w, 0.0), 0.999)
    return w, k


def _catalog() -> tuple[AppProfile, ...]:
    """Build the ten-app catalog (paper Section 5 workloads)."""
    return (
        # --- the five apps with published per-app numbers -----------------
        AppProfile(
            name="YouTube", uid=1,
            anon_mb_10s=177, anon_mb_5min=358,
            hot_fraction=0.22, warm_fraction=0.30,
            hot_similarity=0.78, reused_fraction=0.98,
            locality_p2=0.86, locality_p4=0.72,
            dram_relaunch_ms=68.0,
            incompressible_fraction=0.18,
            app_class="media",
        ),
        AppProfile(
            name="Twitter", uid=2,
            anon_mb_10s=182, anon_mb_5min=273,
            hot_fraction=0.25, warm_fraction=0.30,
            hot_similarity=0.75, reused_fraction=0.98,
            locality_p2=0.81, locality_p4=0.61,
            dram_relaunch_ms=60.0,
            incompressible_fraction=0.12,
            app_class="social",
        ),
        AppProfile(
            name="Firefox", uid=3,
            anon_mb_10s=560, anon_mb_5min=716,
            hot_fraction=0.18, warm_fraction=0.28,
            hot_similarity=0.62, reused_fraction=0.97,
            locality_p2=0.69, locality_p4=0.43,
            dram_relaunch_ms=95.0,
            incompressible_fraction=0.14,
            app_class="browser",
        ),
        AppProfile(
            name="GEarth", uid=4,
            anon_mb_10s=273, anon_mb_5min=429,
            hot_fraction=0.20, warm_fraction=0.28,
            hot_similarity=0.72, reused_fraction=0.98,
            locality_p2=0.77, locality_p4=0.54,
            dram_relaunch_ms=80.0,
            incompressible_fraction=0.22,
            app_class="navigation",
        ),
        AppProfile(
            name="BangDream", uid=5,
            anon_mb_10s=326, anon_mb_5min=821,
            hot_fraction=0.08, warm_fraction=0.25,
            hot_similarity=0.55, reused_fraction=0.96,
            locality_p2=0.61, locality_p4=0.33,
            dram_relaunch_ms=120.0,
            incompressible_fraction=0.30,
            app_class="game",
        ),
        # --- the other five (no per-app numbers published; plausible) ------
        AppProfile(
            name="TikTok", uid=6,
            anon_mb_10s=260, anon_mb_5min=540,
            hot_fraction=0.22, warm_fraction=0.30,
            hot_similarity=0.74, reused_fraction=0.98,
            locality_p2=0.80, locality_p4=0.60,
            dram_relaunch_ms=72.0,
            incompressible_fraction=0.22,
            app_class="media",
        ),
        AppProfile(
            name="Edge", uid=7,
            anon_mb_10s=230, anon_mb_5min=430,
            hot_fraction=0.20, warm_fraction=0.28,
            hot_similarity=0.68, reused_fraction=0.97,
            locality_p2=0.74, locality_p4=0.50,
            dram_relaunch_ms=65.0,
            incompressible_fraction=0.12,
            app_class="browser",
        ),
        AppProfile(
            name="GoogleMaps", uid=8,
            anon_mb_10s=210, anon_mb_5min=390,
            hot_fraction=0.18, warm_fraction=0.30,
            hot_similarity=0.70, reused_fraction=0.98,
            locality_p2=0.76, locality_p4=0.52,
            dram_relaunch_ms=85.0,
            incompressible_fraction=0.20,
            app_class="navigation",
        ),
        AppProfile(
            name="AngryBirds", uid=9,
            anon_mb_10s=190, anon_mb_5min=350,
            hot_fraction=0.15, warm_fraction=0.26,
            hot_similarity=0.73, reused_fraction=0.98,
            locality_p2=0.78, locality_p4=0.55,
            dram_relaunch_ms=75.0,
            incompressible_fraction=0.24,
            app_class="game",
        ),
        AppProfile(
            name="TwitchTV", uid=10,
            anon_mb_10s=240, anon_mb_5min=470,
            hot_fraction=0.20, warm_fraction=0.28,
            hot_similarity=0.65, reused_fraction=0.97,
            locality_p2=0.72, locality_p4=0.48,
            dram_relaunch_ms=70.0,
            incompressible_fraction=0.20,
            app_class="media",
        ),
    )


#: All ten applications from the paper's workload list.
APP_CATALOG: tuple[AppProfile, ...] = _catalog()

#: The five applications with per-app numbers in the paper's tables.
TABLE1_APPS: tuple[str, ...] = (
    "YouTube",
    "Twitter",
    "Firefox",
    "GEarth",
    "BangDream",
)

_BY_NAME = {profile.name: profile for profile in APP_CATALOG}


def profile_by_name(name: str) -> AppProfile:
    """Look up a catalog profile by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown application {name!r}; catalog: {sorted(_BY_NAME)}"
        ) from None
