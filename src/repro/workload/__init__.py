"""Workload substrate: application profiles and synthetic page payloads.

The paper characterizes ten real applications on a Pixel 7; we have no
phone, so each app becomes an :class:`AppProfile` whose knobs are set
from the paper's published measurements (Table 1 anonymous-data volumes,
Figure 5 similarity, Table 3 locality, Figure 4 hotness mix), and page
*contents* are synthesized with the granularity structure the paper
describes (similar data gathered within small 128 B regions — the reason
small-chunk compression is fast, Insight 2).
"""

from .payload import PayloadGenerator
from .profiles import (
    APP_CATALOG,
    AppProfile,
    TABLE1_APPS,
    profile_by_name,
    solve_run_mix,
)

__all__ = [
    "APP_CATALOG",
    "AppProfile",
    "PayloadGenerator",
    "TABLE1_APPS",
    "profile_by_name",
    "solve_run_mix",
]
