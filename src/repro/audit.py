"""Opt-in runtime invariant auditor (``REPRO_AUDIT=1``).

The simulator keeps several O(1) running counters (free-DRAM bytes,
pool occupancy, per-app non-resident page counts, residency
verification epochs) precisely so the hot paths never recompute them.
The flip side is that a single missed hook silently drifts the model —
the numbers stay plausible and the goldens only catch it if the drift
changes a reported figure.

This module cross-checks the running state against from-scratch ground
truth *while a scenario runs*.  It is wired into every kswapd wakeup
(``SwapScheme.background_reclaim``) but dormant unless the
``REPRO_AUDIT`` environment variable is truthy, so normal runs pay one
``is None`` test per wakeup and nothing else.  On a mismatch it raises
:class:`~repro.errors.InvariantViolationError` with enough context
(which counter, which app, expected vs actual, the current eviction
epoch) to localize the broken transition.

Environment knobs:

- ``REPRO_AUDIT`` — ``1``/``true``/``on``/``yes`` enables auditing.
- ``REPRO_AUDIT_INTERVAL`` — audit every Nth checkpoint (default 1:
  every kswapd wakeup).  Raise it to cheapen long scenarios.

The auditor is deliberately duck-typed against
:class:`~repro.core.scheme.SwapScheme` (no core imports) so the core
can import it without a cycle.
"""

from __future__ import annotations

import os
from collections import Counter as TallyCounter

from .errors import InvariantViolationError

#: Environment variable enabling the auditor.
AUDIT_ENV = "REPRO_AUDIT"
#: Environment variable controlling the checkpoint sampling interval.
AUDIT_INTERVAL_ENV = "REPRO_AUDIT_INTERVAL"

_TRUTHY = frozenset({"1", "true", "on", "yes"})


def audit_enabled() -> bool:
    """Whether ``REPRO_AUDIT`` asks for runtime invariant auditing."""
    return os.environ.get(AUDIT_ENV, "").strip().lower() in _TRUTHY


def auditor_from_env() -> InvariantAuditor | None:
    """An :class:`InvariantAuditor` per the environment, else ``None``."""
    if not audit_enabled():
        return None
    raw = os.environ.get(AUDIT_INTERVAL_ENV, "1")
    try:
        interval = int(raw)
    except ValueError:
        interval = 1
    return InvariantAuditor(interval=max(1, interval))


class InvariantAuditor:
    """Cross-checks a scheme's O(1) counters against ground truth.

    Args:
        interval: Audit every ``interval``-th :meth:`checkpoint` call
            (checkpoints land on kswapd wakeups, the natural quiescent
            points between reclaim batches).
    """

    def __init__(self, interval: int = 1) -> None:
        if interval < 1:
            raise InvariantViolationError(
                f"audit interval must be >= 1, got {interval}"
            )
        self.interval = interval
        self._checkpoints = 0
        #: Full audits actually performed (tests assert this moved).
        self.audits_performed = 0

    # ------------------------------------------------------------- entry points

    def checkpoint(self, scheme) -> None:
        """Sampled audit hook: runs :meth:`audit` every Nth call."""
        self._checkpoints += 1
        if self._checkpoints % self.interval == 0:
            self.audit(scheme)

    def audit(self, scheme) -> None:
        """Run every cross-check; raises on the first violation."""
        self._audit_pool_occupancy(scheme)
        self._audit_free_dram(scheme)
        self._audit_nonresident_counts(scheme)
        self._audit_lru_membership(scheme)
        self._audit_columnar(scheme)
        self._audit_zpool_classes(scheme)
        self._audit_swap_slots(scheme)
        self._audit_zswap_writeback(scheme)
        self.audits_performed += 1

    # -------------------------------------------------------------- the checks

    def _audit_pool_occupancy(self, scheme) -> None:
        """Running pool occupancy counters match from-scratch recomputes."""
        dram = scheme.ctx.dram
        actual, expected = dram.used_bytes, dram.audit_used_bytes()
        if actual != expected:
            raise InvariantViolationError(
                f"DRAM used_bytes drifted: running counter {actual} != "
                f"audit recompute {expected} "
                f"({dram.resident_count} resident pages, "
                f"epoch {scheme.eviction_epoch})"
            )
        if scheme.uses_zpool:
            zpool = scheme.ctx.zpool
            actual, expected = zpool.used_bytes, zpool.audit_used_bytes()
            if actual != expected:
                raise InvariantViolationError(
                    f"zpool used_bytes drifted: running counter {actual} != "
                    f"audit recompute {expected} "
                    f"(epoch {scheme.eviction_epoch})"
                )

    def _audit_free_dram(self, scheme) -> None:
        """The incremental free-DRAM counter matches the audit recompute."""
        if not scheme.tracks_free_dram:
            return
        actual = scheme._free_dram_bytes
        expected = scheme.audit_free_dram_bytes()
        if actual != expected:
            raise InvariantViolationError(
                "free-DRAM accounting drifted: incremental counter "
                f"{actual} != audit recompute {expected} (delta "
                f"{actual - expected:+d} bytes, "
                f"{scheme.accounting_updates} hook updates, "
                f"epoch {scheme.eviction_epoch})"
            )

    def _ground_truth_nonresident(self, scheme) -> TallyCounter:
        """Per-uid non-resident page counts rebuilt from first principles.

        A page is non-resident iff it sits in a stored chunk, in the
        staging buffer (Ariadne), or in the lost set — exactly the
        states :attr:`SwapScheme._nonresident_pages` claims to count.
        """
        truth: TallyCounter = TallyCounter()
        for chunk in scheme._chunks.values():
            truth[chunk.uid] += chunk.page_count
        truth.update(scheme._lost_pfns.values())
        staging = getattr(scheme, "staging", None)
        if staging is not None:
            for page in staging._pages.values():
                truth[page.uid] += 1
        return truth

    def _audit_nonresident_counts(self, scheme) -> None:
        """Per-app non-resident counters and epoch stamps hold."""
        truth = self._ground_truth_nonresident(scheme)
        app_epochs = scheme._app_eviction_epoch
        verified = scheme._resident_verified_epoch
        for uid, claimed in scheme._nonresident_pages.items():
            actual = truth.get(uid, 0)
            if claimed != actual:
                raise InvariantViolationError(
                    f"app {uid} non-resident count drifted: counter says "
                    f"{claimed}, ground truth (stored+staged+lost) is "
                    f"{actual} (epoch {scheme.eviction_epoch}, app epoch "
                    f"{app_epochs.get(uid)})"
                )
            stamp = app_epochs.get(uid, 0)
            if stamp > scheme.eviction_epoch:
                raise InvariantViolationError(
                    f"app {uid} epoch stamp {stamp} is ahead of the global "
                    f"eviction epoch {scheme.eviction_epoch}"
                )
            if verified.get(uid, -1) >= stamp and actual != 0:
                raise InvariantViolationError(
                    f"app {uid} is verified fully resident (verified epoch "
                    f"{verified.get(uid)} >= app epoch {stamp}) but has "
                    f"{actual} non-resident pages — the epoch fast path "
                    "would silently skip their faults"
                )
        extra = set(truth) - set(scheme._nonresident_pages)
        if extra:
            raise InvariantViolationError(
                f"apps {sorted(extra)} own non-resident pages but have no "
                "non-resident counter entry"
            )

    def _audit_columnar(self, scheme) -> None:
        """Columnar organizers' struct-of-arrays state is self-consistent.

        Under the columnar core (``repro.mem.columnar``) list membership
        and recency live in flat columns; this delegates to each
        organizer's ``audit_columnar_state`` cross-check (handle-table
        bijectivity, per-list column census vs tracked counts, order/pos
        linkage).  Object-core organizers have no columnar state and are
        skipped — :meth:`_audit_lru_membership` already covered them.
        """
        for organizer in scheme._organizers.values():
            check = getattr(organizer, "audit_columnar_state", None)
            if check is not None:
                check()

    def _audit_lru_membership(self, scheme) -> None:
        """Organizer LRU lists and DRAM residency agree exactly.

        Every page on some organizer's lists must be resident, no page
        may appear on two lists, and together the lists must cover all
        of DRAM — a page resident but on no list can never be reclaimed
        (a leak), one on a list but not resident would be evicted twice.
        """
        resident = scheme.ctx.dram._resident
        seen: dict[int, int] = {}
        for uid, organizer in scheme._organizers.items():
            for page in organizer.resident_pages():
                pfn = page.pfn
                other = seen.get(pfn)
                if other is not None:
                    raise InvariantViolationError(
                        f"page {pfn} appears on the LRU lists of both app "
                        f"{other} and app {uid}"
                    )
                seen[pfn] = uid
                if pfn not in resident:
                    raise InvariantViolationError(
                        f"page {pfn} (app {uid}) is on an LRU list but not "
                        "resident in DRAM"
                    )
        if len(seen) != len(resident):
            orphans = sorted(set(resident) - set(seen))[:5]
            raise InvariantViolationError(
                f"{len(resident)} pages resident but only {len(seen)} on "
                f"LRU lists; first orphan pfns: {orphans}"
            )

    def _audit_zpool_classes(self, scheme) -> None:
        """The zpool's size-class tally matches its live entries exactly.

        The tally is a maintained counter (one dict update per
        store/free); a missed update means fragmentation accounting and
        any class-level reporting silently drift.  The per-class counts
        must also re-sum to ``audit_used_bytes()`` — tying the two
        independent recomputes together.
        """
        if not scheme.uses_zpool:
            return
        zpool = scheme.ctx.zpool
        tally = zpool.class_tally()
        truth = zpool.audit_class_tally()
        if tally != truth:
            drifted = sorted(
                cls
                for cls in set(tally) | set(truth)
                if tally.get(cls, 0) != truth.get(cls, 0)
            )
            raise InvariantViolationError(
                "zpool size-class tally drifted: counter vs entries differ "
                f"for class(es) {drifted} (counter "
                f"{ {c: tally.get(c, 0) for c in drifted} }, entries "
                f"{ {c: truth.get(c, 0) for c in drifted} })"
            )
        class_sum = sum(cls * count for cls, count in tally.items())
        expected = zpool.audit_used_bytes()
        if class_sum != expected:
            raise InvariantViolationError(
                f"zpool size-class tally sums to {class_sum} bytes but the "
                f"entries hold {expected} bytes"
            )

    def _audit_swap_slots(self, scheme) -> None:
        """Flash swap slots and live in-flash chunk handles agree exactly.

        A slot with no chunk pointing at it is a capacity leak (the area
        fills with garbage until ``FlashFullError``); a chunk pointing
        at a missing slot was double-freed and its next fault would read
        freed storage.
        """
        flash_swap = getattr(scheme.ctx, "flash_swap", None)
        if flash_swap is None:
            return
        slots = set(flash_swap._slots)
        live = {
            chunk.flash_slot
            for chunk in scheme._chunks.values()
            if chunk.in_flash and chunk.flash_slot is not None
        }
        orphans = slots - live
        if orphans:
            raise InvariantViolationError(
                f"{len(orphans)} swap slot(s) allocated but owned by no "
                f"live chunk (leak); first: {sorted(orphans)[:5]}"
            )
        missing = live - slots
        if missing:
            raise InvariantViolationError(
                f"{len(missing)} in-flash chunk(s) reference freed swap "
                f"slot(s) (double free); first: {sorted(missing)[:5]}"
            )

    def _audit_zswap_writeback(self, scheme) -> None:
        """Zswap writeback ledger balances and batches stay contiguous.

        Duck-typed on the zswap batch records (``_batches``/
        ``_batch_of``); other schemes skip.  Three invariants:

        - **Ledger balance** — every stored page is in exactly one
          location: pages in in-zpool chunks plus pages in in-flash
          chunks must equal the stored-page index (``_stored_by_pfn``).
          A mismatch means a writeback or readahead transition updated
          one side and not the other.
        - **Batch membership** — every in-flash membership record maps
          to a recorded batch that actually lists the chunk.
        - **Slot contiguity** — a live batch member's slot id must be
          ``first_slot + position``: batched writeback allocated the
          slots consecutively, and readahead's one-sequential-command
          charge is only honest while that layout holds.
        """
        batches = getattr(scheme, "_batches", None)
        batch_of = getattr(scheme, "_batch_of", None)
        if batches is None or batch_of is None:
            return
        in_zpool = sum(
            chunk.page_count
            for chunk in scheme._chunks.values()
            if chunk.in_zpool
        )
        in_flash = sum(
            chunk.page_count
            for chunk in scheme._chunks.values()
            if chunk.in_flash
        )
        stored = len(scheme._stored_by_pfn)
        if in_zpool + in_flash != stored:
            raise InvariantViolationError(
                f"zswap writeback ledger unbalanced: {in_zpool} pages in "
                f"zpool chunks + {in_flash} in flash chunks != {stored} "
                f"stored pages (epoch {scheme.eviction_epoch})"
            )
        for batch_id, (first_slot, members) in batches.items():
            for position, chunk in enumerate(members):
                if batch_of.get(chunk.chunk_id) != batch_id:
                    continue  # member already faulted in / read / dropped
                expected_slot = first_slot + position
                if chunk.flash_slot != expected_slot:
                    raise InvariantViolationError(
                        f"zswap batch {batch_id} lost slot contiguity: "
                        f"chunk {chunk.chunk_id} at position {position} "
                        f"holds slot {chunk.flash_slot}, expected "
                        f"{expected_slot} (first slot {first_slot})"
                    )
        for chunk_id, batch_id in batch_of.items():
            entry = batches.get(batch_id)
            if entry is None or all(c.chunk_id != chunk_id for c in entry[1]):
                raise InvariantViolationError(
                    f"zswap chunk {chunk_id} claims membership of batch "
                    f"{batch_id}, which does not record it"
                )
