"""Measurement plumbing: per-thread CPU accounting and event counters.

This is the simulator's stand-in for the paper's Perfetto profiling
(Figure 3, Figure 11): every modeled operation charges simulated CPU
nanoseconds to a named thread, so experiments can ask "how much CPU did
kswapd burn compressing?" exactly the way the authors asked Perfetto.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .errors import SchedulingError

#: Thread names used throughout the simulator.
KSWAPD = "kswapd"
APP = "app"
PREDECOMP = "predecomp"
ZSWAPD = "zswapd"


class CpuAccount:
    """Accumulates simulated CPU time per thread and per activity.

    Charges are tagged with ``(thread, activity)`` so reports can slice
    either way: Figure 3 wants all of kswapd's time; Figure 11 wants all
    compression + decompression time regardless of thread.
    """

    def __init__(self) -> None:
        #: The only store is the (thread, activity) ledger — the charge
        #: path is the hottest accounting call in the simulator, so the
        #: per-thread and per-activity rollups are derived on read (reads
        #: are rare: once per report) instead of maintained on write.
        self._by_pair: dict[tuple[str, str], int] = defaultdict(int)

    def charge(self, thread: str, activity: str, ns: int) -> None:
        """Add ``ns`` of CPU time for ``thread`` doing ``activity``."""
        if ns < 0:
            raise SchedulingError(
                f"cannot charge negative CPU time ({ns} ns) to {thread}/{activity}"
            )
        self._by_pair[(thread, activity)] += ns

    def thread_ns(self, thread: str) -> int:
        """Total CPU ns charged to ``thread``."""
        return sum(
            ns for (t, _a), ns in self._by_pair.items() if t == thread
        )

    def activity_ns(self, activity: str) -> int:
        """Total CPU ns charged to ``activity`` across all threads."""
        return sum(
            ns for (_t, a), ns in self._by_pair.items() if a == activity
        )

    def pair_ns(self, thread: str, activity: str) -> int:
        """CPU ns for one (thread, activity) pair."""
        return self._by_pair.get((thread, activity), 0)

    @property
    def total_ns(self) -> int:
        """All CPU time charged anywhere."""
        return sum(self._by_pair.values())

    def activities(self) -> dict[str, int]:
        """Per-activity totals (derived from the pair ledger)."""
        totals: dict[str, int] = defaultdict(int)
        for (_thread, activity), ns in self._by_pair.items():
            totals[activity] += ns
        return dict(totals)

    def threads(self) -> dict[str, int]:
        """Per-thread totals (derived from the pair ledger)."""
        totals: dict[str, int] = defaultdict(int)
        for (thread, _activity), ns in self._by_pair.items():
            totals[thread] += ns
        return dict(totals)

    def merged_with(self, other: "CpuAccount") -> "CpuAccount":
        """Return a new account holding the sum of both."""
        merged = CpuAccount()
        for (thread, activity), ns in self._by_pair.items():
            merged.charge(thread, activity, ns)
        for (thread, activity), ns in other._by_pair.items():
            merged.charge(thread, activity, ns)
        return merged


#: Recovery counters maintained by the schemes' graceful-degradation
#: paths (see :mod:`repro.faults`).  All stay zero without an installed
#: fault plan; :func:`recovery_summary` snapshots them for reports.
FAULT_COUNTERS = (
    # Injection-side mirrors, bumped when an injected error reaches a scheme.
    "fault_flash_read_transient",
    "fault_flash_read_permanent",
    "fault_flash_write_transient",
    "fault_flash_write_permanent",
    # Recovery outcomes.
    "fault_io_retries",
    "fault_transient_recovered",
    "fault_transient_abandoned",
    "fault_write_gave_up",
    "fault_writeback_deferred",
    # Degradation outcomes.
    "fault_chunks_dropped",
    "fault_dropped_flash_io",
    "fault_dropped_corrupt",
    "fault_cold_refaults",
)


def recovery_summary(counters: "Counters | dict[str, int]") -> dict[str, int]:
    """Snapshot of the :data:`FAULT_COUNTERS` from a counter store.

    Accepts a live :class:`Counters` or a plain counter dict (e.g. a
    :class:`~repro.sim.scenario.ScenarioResult`'s ``counters``).
    """
    if isinstance(counters, dict):
        return {name: counters.get(name, 0) for name in FAULT_COUNTERS}
    return {name: counters.get(name) for name in FAULT_COUNTERS}


#: Memory-pressure lifecycle counters maintained by the schemes and the
#: low-memory killer (see :mod:`repro.lmk`).  All stay zero without an
#: installed pressure plan; :func:`pressure_summary` snapshots them.
PRESSURE_COUNTERS = (
    # Signal-side: PSI sampling and kswapd escalation.
    "pressure_samples",
    "pressure_escalations",
    "pressure_boost_evictions",
    # Killer outcomes (executed teardowns).
    "lmk_kills",
    "lmk_pages_killed",
    "lmk_cold_relaunches",
    # Hard-exhaustion fallbacks.
    "pressure_overflow_drops",
    "pressure_admission_refusals",
    "pressure_pages_refused",
)


def pressure_summary(counters: "Counters | dict[str, int]") -> dict[str, int]:
    """Snapshot of the :data:`PRESSURE_COUNTERS` from a counter store.

    Accepts a live :class:`Counters` or a plain counter dict, exactly
    like :func:`recovery_summary`.
    """
    if isinstance(counters, dict):
        return {name: counters.get(name, 0) for name in PRESSURE_COUNTERS}
    return {name: counters.get(name) for name in PRESSURE_COUNTERS}


#: Zswap writeback-tier counters (see :mod:`repro.core.zswap`).  All
#: stay zero for the other schemes; :func:`zswap_summary` snapshots them
#: for reports, mirroring :func:`recovery_summary`.
ZSWAP_COUNTERS = (
    # Shrinker: batched LRU writeback to contiguous swap slots.
    "zswap_writeback_batches",
    "zswap_pages_written_back",
    "zswap_batch_pages_max",
    # Slot-locality readahead: speculative neighbor decompressions.
    "zswap_readahead_reads",
    "zswap_readahead_hits",
    "zswap_readahead_wasted",
    "zswap_readahead_aborted",
)


def zswap_summary(counters: "Counters | dict[str, int]") -> dict[str, int]:
    """Snapshot of the :data:`ZSWAP_COUNTERS` from a counter store.

    Accepts a live :class:`Counters` or a plain counter dict, exactly
    like :func:`recovery_summary`.
    """
    if isinstance(counters, dict):
        return {name: counters.get(name, 0) for name in ZSWAP_COUNTERS}
    return {name: counters.get(name) for name in ZSWAP_COUNTERS}


class Counters:
    """Named integer event counters (compressions, faults, hits, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def mutable(self) -> dict[str, int]:
        """The live counter store, for hot paths that batch several
        increments without per-call :meth:`incr` dispatch.  Mutating the
        returned defaultdict is equivalent to the same ``incr`` calls."""
        return self._counts

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Copy of all counters."""
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)


@dataclass
class LatencyBreakdown:
    """Where the nanoseconds of one measured operation went.

    Used for relaunch latency reports (Figures 2 and 10): the sum of the
    parts equals the reported latency.
    """

    dram_ns: int = 0
    decompress_ns: int = 0
    compress_ns: int = 0
    flash_read_ns: int = 0
    flash_write_ns: int = 0
    process_create_ns: int = 0
    other_ns: int = 0

    @property
    def total_ns(self) -> int:
        """Sum of all components."""
        return (
            self.dram_ns
            + self.decompress_ns
            + self.compress_ns
            + self.flash_read_ns
            + self.flash_write_ns
            + self.process_create_ns
            + self.other_ns
        )

    def add(self, other: "LatencyBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.dram_ns += other.dram_ns
        self.decompress_ns += other.decompress_ns
        self.compress_ns += other.compress_ns
        self.flash_read_ns += other.flash_read_ns
        self.flash_write_ns += other.flash_write_ns
        self.process_create_ns += other.process_create_ns
        self.other_ns += other.other_ns


#: Shared all-zero breakdown for zero-stall results (DRAM hits).  Treated
#: as immutable everywhere: consumers may read or identity-compare it to
#: skip no-op accumulation, but must never mutate it.
EMPTY_BREAKDOWN = LatencyBreakdown()


class AccessRun(list):
    """A memoized single-app replay run with residency-verification state.

    Replay streams (relaunch/execution/warm-up page sequences) are
    immutable and replayed many times per scenario, so
    ``MobileSystem`` materializes each one once and hands the *same*
    list object to every replay.  That stability is what makes
    run-level epoch verification sound: ``verified_epoch`` records the
    scheme's :attr:`~repro.core.scheme.SwapScheme.eviction_epoch` at the
    end of a replay that left every page of this run resident.  As long
    as no page of ``uid`` has left DRAM since (the scheme's per-app
    eviction stamp has not passed ``verified_epoch``), every page is
    still resident and the next replay needs zero per-page residency
    probes.  The stamp lives on the run object itself — there is no
    key-reuse hazard a side table would have.
    """

    __slots__ = ("uid", "verified_epoch", "columnar_handles", "handle_cache")

    def __init__(self, pages, uid: int) -> None:
        super().__init__(pages)
        self.uid = uid
        #: Scheme epoch at the last fully-resident replay (-1 = never).
        self.verified_epoch = -1
        #: Memoized handle array of this run in its organizer's columnar
        #: page table (``repro.mem.columnar``); None until first replay
        #: under the columnar core.  Safe for the same reason
        #: ``verified_epoch`` is: the run object is per-app per-system,
        #: and handles are stable for the organizer's lifetime.
        self.columnar_handles = None
        #: Optional ``(host_dict, key)`` for sharing the handle array
        #: across systems built from the same immutable trace (set by
        #: ``LiveApp.access_run``; consumed by the columnar organizers,
        #: which verify table agreement before trusting an entry).
        self.handle_cache = None


@dataclass
class AccessBatchSummary:
    """Aggregate outcome of a batched access replay.

    One summary replaces a stream of per-access :class:`AccessResult`
    objects: the scheme's ``access_batch`` coalesces resident-hit runs
    into count bumps here, and folds each fault's stall/breakdown in as
    it happens.  Totals are exactly the sums the per-access loop would
    have produced (additive accounting is order-free), which is what
    keeps batched replay number-invariant.
    """

    pages: int = 0
    stall_ns: int = 0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    from_dram: int = 0
    from_zpool: int = 0
    from_flash: int = 0
    from_staging: int = 0

    def add_hits(self, count: int) -> None:
        """Fold in ``count`` zero-stall resident hits."""
        self.pages += count
        self.from_dram += count

    def add_result(self, result) -> None:
        """Fold in one :class:`repro.core.scheme.AccessResult`."""
        self.pages += 1
        self.stall_ns += result.stall_ns
        if result.breakdown is not EMPTY_BREAKDOWN:
            self.breakdown.add(result.breakdown)
        source = result.source.value
        if source == "dram":
            self.from_dram += 1
        elif source == "zpool":
            self.from_zpool += 1
        elif source == "flash":
            self.from_flash += 1
        else:
            self.from_staging += 1


@dataclass
class RelaunchResult:
    """Outcome of one measured application relaunch."""

    app_name: str
    scheme_name: str
    latency_ns: int
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    pages_accessed: int = 0
    pages_from_dram: int = 0
    pages_from_zpool: int = 0
    pages_from_flash: int = 0
    pages_from_staging: int = 0

    @property
    def latency_ms(self) -> float:
        """Relaunch latency in milliseconds."""
        return self.latency_ns / 1_000_000
