"""zsmalloc-style size classes.

zsmalloc serves allocations from a set of fixed size classes so that
compressed objects of similar size pack tightly into 4 KB blocks.  The
difference between an object's payload size and its class size is
internal fragmentation, which the pool reports.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import ZPOOL_BLOCK_SIZE


class SizeClassTable:
    """Rounds allocation sizes up to fixed classes.

    Args:
        granularity: Spacing between classes in bytes (zsmalloc uses 16 B
            steps on arm64; we default to 32 B which keeps the table small
            without materially changing fragmentation).
        max_size: Largest allocation a single class serves.  Larger
            requests occupy whole blocks.
    """

    def __init__(
        self, granularity: int = 32, max_size: int = ZPOOL_BLOCK_SIZE
    ) -> None:
        if granularity <= 0:
            raise ConfigError(f"granularity must be positive, got {granularity}")
        if max_size % granularity != 0:
            raise ConfigError(
                f"max_size {max_size} is not a multiple of granularity {granularity}"
            )
        self.granularity = granularity
        self.max_size = max_size

    def class_size(self, payload_size: int) -> int:
        """Bytes actually reserved for a ``payload_size``-byte object.

        Objects up to ``max_size`` round up to the next class boundary;
        larger objects (multi-page chunks under AdaptiveComp's LargeSize)
        span whole blocks, again rounded to the granularity.
        """
        if payload_size < 0:
            raise ConfigError(f"payload size cannot be negative: {payload_size}")
        if payload_size == 0:
            return self.granularity
        rounded = -(-payload_size // self.granularity) * self.granularity
        return rounded

    def fragmentation(self, payload_size: int) -> int:
        """Wasted bytes when storing a ``payload_size``-byte object."""
        return self.class_size(payload_size) - payload_size
