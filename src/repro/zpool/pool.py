"""The compressed-object pool.

:class:`Zpool` stores opaque compressed chunks, each identified by a
*handle* and placed at a *sector* (a monotonically increasing position in
the pool, assigned in storage order).  Sector adjacency therefore encodes
compression order — the data layout property PreDecomp's next-sector
prediction relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ZpoolFullError
from ..units import fmt_bytes
from .sizeclass import SizeClassTable


#: Sector-number stride separating lanes (see :meth:`Zpool.store`).
LANE_STRIDE = 1 << 40


@dataclass(frozen=True)
class ZpoolEntry:
    """One stored compressed chunk.

    Attributes:
        handle: Opaque id for lookups and frees.
        sector: Position in the pool (storage order within the lane).
        payload_bytes: Size of the compressed chunk.
        class_bytes: Bytes actually reserved (payload rounded to a class).
    """

    handle: int
    sector: int
    payload_bytes: int
    class_bytes: int


@dataclass
class ZpoolStats:
    """Aggregate occupancy counters for reporting."""

    capacity_bytes: int
    used_bytes: int
    payload_bytes: int
    entry_count: int
    stores: int
    frees: int

    @property
    def fragmentation_bytes(self) -> int:
        """Internal fragmentation (class rounding waste)."""
        return self.used_bytes - self.payload_bytes

    @property
    def utilization(self) -> float:
        """Used fraction of capacity."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


class Zpool:
    """Capacity-limited compressed-object pool.

    Args:
        capacity_bytes: The pool budget (paper Table 5: ``S`` = 3 GB,
            scaled by the simulation scale factor by callers).
        size_classes: Size-class table for fragmentation accounting.
    """

    def __init__(
        self,
        capacity_bytes: int,
        size_classes: SizeClassTable | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ZpoolFullError(f"zpool capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._classes = size_classes if size_classes is not None else SizeClassTable()
        self._entries: dict[int, ZpoolEntry] = {}
        self._by_sector: dict[int, int] = {}
        self._next_handle = 1
        self._next_sector_by_lane: dict[int, int] = {}
        self._used_bytes = 0
        self._payload_bytes = 0
        #: Live entries per size class (class_bytes -> count), maintained
        #: on every store/free; :meth:`audit_class_tally` recomputes it
        #: from the entries for the runtime auditor's cross-check.
        self._class_tally: dict[int, int] = {}
        #: Byte-delta listeners, called as ``fn(delta)`` after every
        #: occupancy change (positive on store, negative on free) — the
        #: same incremental-accounting protocol as
        #: :meth:`repro.mem.MainMemory.subscribe`.
        self._listeners: list[Callable[[int], None]] = []
        self.stores = 0
        self.frees = 0
        self.peak_used_bytes = 0

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a byte-delta hook fired on every occupancy change."""
        self._listeners.append(listener)

    def _notify(self, delta: int) -> None:
        for listener in self._listeners:
            listener(delta)

    # -- capacity ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes reserved (class sizes) by live entries (running counter)."""
        return self._used_bytes

    def audit_used_bytes(self) -> int:
        """From-scratch recompute of :attr:`used_bytes` (invariant checks)."""
        return sum(entry.class_bytes for entry in self._entries.values())

    def class_tally(self) -> dict[int, int]:
        """Live entry count per size class (maintained counter, copied)."""
        return dict(self._class_tally)

    def audit_class_tally(self) -> dict[int, int]:
        """From-scratch recompute of :meth:`class_tally` from the entries."""
        tally: dict[int, int] = {}
        for entry in self._entries.values():
            tally[entry.class_bytes] = tally.get(entry.class_bytes, 0) + 1
        return tally

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used_bytes

    def has_room_for(self, payload_bytes: int) -> bool:
        """Whether a ``payload_bytes`` chunk fits right now."""
        return self._classes.class_size(payload_bytes) <= self.free_bytes

    # -- store / free -------------------------------------------------------------

    def store(self, payload_bytes: int, lane: int = 0) -> ZpoolEntry:
        """Reserve space for a compressed chunk; returns its entry.

        ``lane`` selects an independent sector sequence.  Stock zram uses
        one lane; Ariadne stores each hotness class in its own lane, so
        hot chunks land at consecutive sectors even when their evictions
        interleave with cold evictions of other apps — this is the
        "different data layout in zpool" of the paper's Figure 9, and it
        is what keeps next-sector prediction accurate.

        Raises :class:`ZpoolFullError` when the chunk does not fit — the
        caller (the swap scheme) must free or write back entries first.
        """
        if not 0 <= lane < 1024:
            raise ZpoolFullError(f"lane must be in [0, 1024), got {lane}")
        class_bytes = self._classes.class_size(payload_bytes)
        if class_bytes > self.free_bytes:
            raise ZpoolFullError(
                f"zpool cannot fit {fmt_bytes(payload_bytes)} "
                f"(free {fmt_bytes(self.free_bytes)})"
            )
        position = self._next_sector_by_lane.get(lane, 0)
        entry = ZpoolEntry(
            handle=self._next_handle,
            sector=lane * LANE_STRIDE + position,
            payload_bytes=payload_bytes,
            class_bytes=class_bytes,
        )
        self._next_handle += 1
        self._next_sector_by_lane[lane] = position + 1
        self._entries[entry.handle] = entry
        self._by_sector[entry.sector] = entry.handle
        self._used_bytes += class_bytes
        self._payload_bytes += payload_bytes
        self._class_tally[class_bytes] = (
            self._class_tally.get(class_bytes, 0) + 1
        )
        self.stores += 1
        if self._used_bytes > self.peak_used_bytes:
            self.peak_used_bytes = self._used_bytes
        if self._listeners:
            self._notify(class_bytes)
        return entry

    def free(self, handle: int) -> ZpoolEntry:
        """Release the entry behind ``handle`` and return it."""
        entry = self._entries.pop(handle, None)
        if entry is None:
            raise ZpoolFullError(f"zpool handle {handle} is not live")
        del self._by_sector[entry.sector]
        self._used_bytes -= entry.class_bytes
        self._payload_bytes -= entry.payload_bytes
        remaining = self._class_tally.get(entry.class_bytes, 0) - 1
        if remaining > 0:
            self._class_tally[entry.class_bytes] = remaining
        else:
            self._class_tally.pop(entry.class_bytes, None)
        self.frees += 1
        if self._listeners:
            self._notify(-entry.class_bytes)
        return entry

    # -- lookups ----------------------------------------------------------------

    def get(self, handle: int) -> ZpoolEntry:
        """Return the live entry behind ``handle``."""
        entry = self._entries.get(handle)
        if entry is None:
            raise ZpoolFullError(f"zpool handle {handle} is not live")
        return entry

    def contains(self, handle: int) -> bool:
        """Whether ``handle`` refers to a live entry."""
        return handle in self._entries

    def handle_at_sector(self, sector: int) -> int | None:
        """Handle stored at ``sector``, or None if that sector is free."""
        return self._by_sector.get(sector)

    def next_live_sector(self, sector: int, max_scan: int = 8) -> int | None:
        """First live sector after ``sector`` within ``max_scan`` positions.

        PreDecomp predicts "the page at the next sector"; freed sectors
        leave small gaps, so we scan a bounded window forward.  The scan
        never crosses a lane boundary (lanes are separate sequences).
        """
        lane_end = (sector // LANE_STRIDE + 1) * LANE_STRIDE
        for candidate in range(sector + 1, min(sector + 1 + max_scan, lane_end)):
            if candidate in self._by_sector:
                return candidate
        return None

    @property
    def entry_count(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    def stats(self) -> ZpoolStats:
        """Snapshot of occupancy counters."""
        return ZpoolStats(
            capacity_bytes=self.capacity_bytes,
            used_bytes=self._used_bytes,
            payload_bytes=self._payload_bytes,
            entry_count=len(self._entries),
            stores=self.stores,
            frees=self.frees,
        )

    def __repr__(self) -> str:
        return (
            f"Zpool(used={fmt_bytes(self._used_bytes)}, "
            f"capacity={fmt_bytes(self.capacity_bytes)}, "
            f"entries={len(self._entries)})"
        )
