"""Compressed-memory pool (the kernel's zpool/zsmalloc, simplified).

Compressed chunks live here between compression and either decompression
(swap-in) or writeback to flash.  Sector numbers are assigned in
compression order, which is exactly the locality structure Ariadne's
PreDecomp exploits (paper Insight 3 / Table 3).
"""

from .pool import Zpool, ZpoolEntry, ZpoolStats
from .sizeclass import SizeClassTable

__all__ = ["SizeClassTable", "Zpool", "ZpoolEntry", "ZpoolStats"]
