"""Ariadne reproduction: hotness-aware, size-adaptive compressed swap.

A trace-driven reproduction of *Ariadne* (HPCA 2025): the full mobile
compressed-swap stack — real from-scratch codecs, a zsmalloc-style
zpool, a flash swap device, an Android-like memory-pressure simulator —
plus the paper's contribution (HotnessOrg + AdaptiveComp + PreDecomp)
and its baselines (ZRAM, SWAP, DRAM).

Quickstart::

    from repro import (
        AriadneConfig, TraceGenerator, APP_CATALOG, make_system,
    )

    trace = TraceGenerator(seed=1).generate_workload(APP_CATALOG[:3])
    system = make_system("Ariadne", trace, ariadne_config=AriadneConfig())
    system.launch_all()
    result = system.relaunch("YouTube")
    print(f"relaunch took {result.latency_ms:.1f} ms (simulated)")

The experiment harness regenerating every table and figure of the paper
lives in :mod:`repro.experiments` (``python -m repro.experiments list``).
"""

from .clock import SimClock
from .compression import (
    BdiCompressor,
    Compressor,
    LatencyModel,
    Lz4Compressor,
    LzoCompressor,
    NullCompressor,
    available_compressors,
    chunk_compress,
    chunk_decompress,
    get_compressor,
)
from .core import (
    AriadneConfig,
    AriadneScheme,
    DramScheme,
    FlashSwapScheme,
    PlatformConfig,
    RelaunchScenario,
    SwapScheme,
    ZramScheme,
    build_context,
    pixel7_platform,
)
from .energy import EnergyCoefficients, EnergyModel, EnergyReport
from .errors import (
    CompressionError,
    ConfigError,
    CorruptDataError,
    FlashFullError,
    MemoryPressureError,
    PageStateError,
    ReproError,
    TraceFormatError,
    ZpoolFullError,
)
from .flash import FlashDevice, FlashSwapArea
from .mem import Hotness, LruList, MainMemory, Page, PageKind, PageLocation
from .metrics import CpuAccount, Counters, LatencyBreakdown, RelaunchResult
from .sim import (
    MobileSystem,
    make_system,
    run_heavy_scenario,
    run_light_scenario,
)
from .trace import (
    AppTrace,
    TraceGenerator,
    WorkloadTrace,
    load_trace,
    save_trace,
)
from .workload import APP_CATALOG, AppProfile, profile_by_name
from .zpool import Zpool

__version__ = "1.0.0"

__all__ = [
    "APP_CATALOG",
    "AppProfile",
    "AppTrace",
    "AriadneConfig",
    "AriadneScheme",
    "BdiCompressor",
    "CompressionError",
    "Compressor",
    "ConfigError",
    "CorruptDataError",
    "Counters",
    "CpuAccount",
    "DramScheme",
    "EnergyCoefficients",
    "EnergyModel",
    "EnergyReport",
    "FlashDevice",
    "FlashFullError",
    "FlashSwapArea",
    "FlashSwapScheme",
    "Hotness",
    "LatencyBreakdown",
    "LatencyModel",
    "LruList",
    "Lz4Compressor",
    "LzoCompressor",
    "MainMemory",
    "MemoryPressureError",
    "MobileSystem",
    "NullCompressor",
    "Page",
    "PageKind",
    "PageLocation",
    "PageStateError",
    "PlatformConfig",
    "RelaunchResult",
    "RelaunchScenario",
    "ReproError",
    "SimClock",
    "SwapScheme",
    "TraceFormatError",
    "TraceGenerator",
    "WorkloadTrace",
    "ZpoolFullError",
    "Zpool",
    "ZramScheme",
    "available_compressors",
    "build_context",
    "chunk_compress",
    "chunk_decompress",
    "get_compressor",
    "load_trace",
    "make_system",
    "pixel7_platform",
    "profile_by_name",
    "run_heavy_scenario",
    "run_light_scenario",
    "save_trace",
]
