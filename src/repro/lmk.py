"""Memory-pressure lifecycle: PSI signal, kswapd escalation, and a
deterministic low-memory killer.

The simulator's reclaim loop (PR 6's fault layer notwithstanding) never
killed anything: apps only relaunched on script, and an allocation that
outran the zpool was an unmodeled edge.  This module adds the lifecycle
the SWAM paper (PAPERS.md) studies:

- :class:`PressurePlan` — a per-system pressure controller.  Each kswapd
  wakeup it samples a PSI-style "some" signal: the fraction of the
  elapsed window the workload spent stalled on reclaim (direct-reclaim
  stall charged by ``_make_room``) plus the refault cost of pages
  faulted back from swap.  Rising pressure escalates kswapd's reclaim
  batch (``kswapd_boost``); pressure above ``full_threshold`` arms the
  killer under the ``lmk``/``hybrid`` policies.
- A deterministic oom-score victim selection: ``priority_weight *
  class_score + recency_weight * lru_age`` with the app class from
  :data:`~repro.workload.profiles.OOM_CLASS_SCORES` and the LRU age from
  the scheme's app-recency order (least-recently-used = oldest = most
  killable; ties resolve to the least-recently-used candidate).  The
  foreground app is never killed and ``min_resident_apps`` live apps
  always survive.
- Hard-exhaustion fallbacks: when reclaim finds no victims or the zpool
  refuses an allocation, the installed plan turns the former unhandled
  error into an emergency kill (``lmk``/``hybrid``), a counted oldest-
  chunk drop (``swap``), or a counted admission refusal — all audited by
  :mod:`repro.audit` and cross-checked by :meth:`PressurePlan.ledger`.

Everything is deterministic — no RNG, no wall clock — and without an
installed plan every scheme hook is a single ``is None`` test, keeping
pressure-off runs bit-identical to main (pinned by the goldens).
"""

from __future__ import annotations

from .core.config import PressureConfig
from .metrics import KSWAPD, pressure_summary
from .units import PAGE_SIZE
from .workload.profiles import OOM_CLASS_SCORES


class PressurePlan:
    """Deterministic pressure controller for one scheme/system.

    Create one per simulated system (it accumulates window state), bind
    it with :func:`install_pressure`, and read the decision/counter
    cross-check from :meth:`ledger` at the end of the run.
    """

    def __init__(self, config: PressureConfig | None = None) -> None:
        self.config = config if config is not None else PressureConfig()
        #: Current kswapd reclaim-batch multiplier (1 = no escalation).
        self.kswapd_boost = 1
        #: PSI value of the most recent completed sample window.
        self.last_psi = 0.0
        self._window_stall_ns = 0
        self._window_refaults = 0
        self._last_sample_ns: int | None = None
        self._app_classes: dict[int, str] = {}
        self._killed_uids: set[int] = set()
        self._system = None
        #: Decision tally, cross-checked against the executed-outcome
        #: counters by :meth:`ledger` — every kill/drop/refusal the
        #: counters report must trace back to a decision made here.
        self._decisions = {
            "proactive_kills": 0,
            "emergency_kills": 0,
            "overflow_drops": 0,
            "admission_refusals": 0,
        }

    # ------------------------------------------------------------- binding

    def bind(self, system) -> None:
        """Attach to a :class:`~repro.sim.system.MobileSystem`: harvest
        app classes from its profiles and track kill/relaunch state."""
        self._system = system
        for live in system.apps:
            profile = live.trace.profile
            self._app_classes[profile.uid] = profile.app_class

    def set_app_class(self, uid: int, app_class: str) -> None:
        """Declare an app's kill-priority class (systemless unit tests)."""
        if app_class not in OOM_CLASS_SCORES:
            raise ValueError(
                f"unknown app class {app_class!r}; known: "
                f"{sorted(OOM_CLASS_SCORES)}"
            )
        self._app_classes[uid] = app_class

    # ------------------------------------------------------ signal plumbing

    def note_stall(self, ns: int) -> None:
        """Direct-reclaim stall charged inside the sample window."""
        self._window_stall_ns += ns

    def note_refault(self, pages: int) -> None:
        """Pages faulted back from swap inside the sample window."""
        self._window_refaults += pages

    # ------------------------------------------------------------- sampling

    def on_kswapd(self, scheme) -> None:
        """Per-wakeup hook: sample PSI, escalate, maybe kill, boost."""
        self._sample(scheme)
        self._boost_reclaim(scheme)

    def _sample(self, scheme) -> None:
        ctx = scheme.ctx
        now = ctx.clock.now_ns
        if self._last_sample_ns is None:
            self._last_sample_ns = now
            return
        window_ns = now - self._last_sample_ns
        if window_ns <= 0:
            return  # clock did not advance; fold into the next window
        self._last_sample_ns = now
        platform = ctx.platform
        # Refaults stall the app for the fault-path cost; like the
        # schemes' own stall accounting, divide by the parallelism that
        # hides it.  Stall ns are already post-division.
        refault_ns = (
            self._window_refaults * platform.fault_overhead_ns * platform.scale
        ) // platform.parallelism
        psi = min(1.0, (self._window_stall_ns + refault_ns) / window_ns)
        self.last_psi = psi
        self._window_stall_ns = 0
        self._window_refaults = 0
        ctx.counters.incr("pressure_samples")
        cfg = self.config
        if psi >= cfg.some_threshold:
            if self.kswapd_boost < cfg.kswapd_boost_max:
                self.kswapd_boost += 1
                ctx.counters.incr("pressure_escalations")
        elif self.kswapd_boost > 1:
            self.kswapd_boost -= 1
        if psi >= cfg.full_threshold and cfg.policy in ("lmk", "hybrid"):
            if (
                cfg.policy == "hybrid"
                and self.kswapd_boost < cfg.kswapd_boost_max
            ):
                # SWAM-style: shed load through swap first; kill only
                # once reclaim escalation is already saturated.
                return
            uid = self.select_victim(scheme)
            if uid is not None:
                self._decisions["proactive_kills"] += 1
                self._execute_kill(scheme, uid)

    def _boost_reclaim(self, scheme) -> None:
        """Escalated kswapd batch: reclaim ahead of the high watermark."""
        if self.kswapd_boost <= 1:
            return
        ctx = scheme.ctx
        platform = ctx.platform
        extra_pages = (self.kswapd_boost - 1) * platform.kswapd_batch_pages
        # The bigger batch also shrinks the file LRU proportionally.
        file_ns = platform.file_writeback_ns * extra_pages * platform.scale
        scheme._charge(KSWAPD, "file_writeback", file_ns)
        ctx.counters.incr("file_pages_written", extra_pages)
        target = platform.high_watermark_bytes + extra_pages * PAGE_SIZE
        evicted = 0
        while scheme.free_dram_bytes() < target and evicted < extra_pages:
            victim = scheme._pop_victim()
            if victim is None:
                break
            scheme._evict(victim, KSWAPD)
            evicted += 1
        if evicted:
            ctx.counters.incr("pressure_boost_evictions", evicted)

    # ------------------------------------------------------ victim selection

    def oom_score(self, scheme, uid: int, lru_age: int) -> float:
        """The kill priority: class score weighted against LRU age."""
        cfg = self.config
        app_class = self._app_classes.get(uid, "cached")
        return (
            cfg.oom_priority_weight * OOM_CLASS_SCORES[app_class]
            + cfg.oom_recency_weight * lru_age
        )

    def select_victim(self, scheme) -> int | None:
        """Highest-oom-score killable app, or ``None``.

        Never the foreground app; never an app with nothing to free;
        never below ``min_resident_apps`` surviving apps.  Ties resolve
        to the least-recently-used candidate (iteration order), so the
        choice is deterministic.
        """
        lru_order = list(scheme._app_lru)  # first = least recently used
        alive = [uid for uid in lru_order if not self._app_killed(uid)]
        if len(alive) <= self.config.min_resident_apps:
            return None
        n = len(lru_order)
        best_uid: int | None = None
        best_score = 0.0
        for index, uid in enumerate(lru_order):
            if uid == scheme._foreground_uid:
                continue
            if not scheme.app_has_reclaimable(uid):
                continue
            score = self.oom_score(scheme, uid, n - 1 - index)
            if best_uid is None or score > best_score:
                best_uid, best_score = uid, score
        return best_uid

    def _app_killed(self, uid: int) -> bool:
        if self._system is not None:
            return self._system.app_killed(uid)
        return uid in self._killed_uids

    def _execute_kill(self, scheme, uid: int) -> None:
        self._killed_uids.add(uid)
        scheme.terminate_app(uid)
        if self._system is not None:
            self._system.mark_killed(uid)

    # --------------------------------------------------- exhaustion fallbacks

    def zpool_relief(self, scheme) -> bool:
        """zpool-overflow response when this plan is installed.

        Lossless relief first (Ariadne's cold-first writeback); only
        when nothing non-destructive remains does the policy's lossy
        step run — so an installed killer never costs data a writeback
        could have saved.
        """
        if scheme._relieve_zpool_lossless():
            return True
        return self.emergency_relief(scheme)

    def emergency_relief(self, scheme) -> bool:
        """Free memory when reclaim is out of victims; returns progress.

        ``lmk``/``hybrid`` kill the best oom-score victim; ``swap`` (and
        the kill policies once no app is killable) falls back to a
        counted oldest-chunk drop.  ``False`` means the plan could not
        help and the caller's original error stands.
        """
        if self.config.policy in ("lmk", "hybrid"):
            uid = self.select_victim(scheme)
            if uid is not None:
                self._decisions["emergency_kills"] += 1
                self._execute_kill(scheme, uid)
                return True
        if scheme._drop_oldest_chunk():
            self._decisions["overflow_drops"] += 1
            scheme.ctx.counters.incr("pressure_overflow_drops")
            return True
        return False

    def note_refusal(self, pages: int) -> None:
        """A zpool admission was refused (the scheme counts the pages)."""
        self._decisions["admission_refusals"] += 1

    # --------------------------------------------------------------- ledger

    def ledger(self, counters) -> dict:
        """Decision-vs-outcome cross-check (cf. ``FaultPlan.ledger``).

        ``consistent`` holds when every executed kill traces to a
        pressure event or exhaustion fallback decided here, every cold
        relaunch traces to a kill, and drop/refusal counts match their
        decisions exactly.
        """
        summary = pressure_summary(counters)
        decided_kills = (
            self._decisions["proactive_kills"]
            + self._decisions["emergency_kills"]
        )
        consistent = (
            summary["lmk_kills"] == decided_kills
            and summary["lmk_cold_relaunches"] <= summary["lmk_kills"]
            and summary["pressure_overflow_drops"]
            == self._decisions["overflow_drops"]
            and summary["pressure_admission_refusals"]
            == self._decisions["admission_refusals"]
        )
        return {
            **self._decisions,
            **summary,
            "consistent": consistent,
        }


def install_pressure(system, plan: PressurePlan) -> bool:
    """Wire ``plan`` into ``system``'s scheme; returns whether it took.

    The DRAM baseline tracks no free-memory budget (nothing to reclaim,
    nothing to kill for), so installation is a no-op there — exactly
    like the scheme's other pressure-dependent machinery.
    """
    scheme = system.scheme
    if not scheme.tracks_free_dram:
        return False
    plan.bind(system)
    scheme._pressure = plan
    return True
