"""Memory substrate: pages, LRU lists, data organizers, main memory.

This package models the parts of the Linux memory-management stack the
paper's techniques live in: anonymous pages, the kernel's LRU page lists
(active/inactive in stock Android, hot/warm/cold under Ariadne's
HotnessOrg), and a capacity-tracked main memory.
"""

from .dram import MainMemory
from .lru import LruList
from .organizer import (
    ActiveInactiveOrganizer,
    DataOrganizer,
    HotWarmColdOrganizer,
)
from .page import Hotness, Page, PageKind, PageLocation

__all__ = [
    "ActiveInactiveOrganizer",
    "DataOrganizer",
    "Hotness",
    "HotWarmColdOrganizer",
    "LruList",
    "MainMemory",
    "Page",
    "PageKind",
    "PageLocation",
]
