"""Memory substrate: pages, LRU lists, data organizers, main memory.

This package models the parts of the Linux memory-management stack the
paper's techniques live in: anonymous pages, the kernel's LRU page lists
(active/inactive in stock Android, hot/warm/cold under Ariadne's
HotnessOrg), and a capacity-tracked main memory.  Each organizer (and
its LRU lists) exists in two bit-identical implementations selected by
``REPRO_CORE``: the object model (:mod:`repro.mem.organizer`) and the
numpy columnar core (:mod:`repro.mem.columnar`).
"""

from .columnar import (
    ColumnarActiveInactiveOrganizer,
    ColumnarHotWarmColdOrganizer,
    ColumnarOrganizerMixin,
    make_tri_list_organizer,
    make_two_list_organizer,
    resolve_core,
)
from .dram import MainMemory
from .lru import IndexLruList, LruList
from .organizer import (
    ActiveInactiveOrganizer,
    DataOrganizer,
    HotWarmColdOrganizer,
)
from .page import Hotness, Page, PageKind, PageLocation

__all__ = [
    "ActiveInactiveOrganizer",
    "ColumnarActiveInactiveOrganizer",
    "ColumnarHotWarmColdOrganizer",
    "ColumnarOrganizerMixin",
    "DataOrganizer",
    "Hotness",
    "HotWarmColdOrganizer",
    "IndexLruList",
    "LruList",
    "MainMemory",
    "Page",
    "PageKind",
    "PageLocation",
    "make_tri_list_organizer",
    "make_two_list_organizer",
    "resolve_core",
]
