"""Anonymous page model.

A :class:`Page` is the unit everything else moves around: 4 KB of
process-execution data (stack/heap/UI state).  Pages carry both *ground
truth* hotness (assigned by the workload generator from how the page is
actually used across relaunches — the classification of Section 3,
Insight 1) and runtime state (where the page currently lives).  Schemes
never read the ground truth; it exists so experiments can score a
scheme's hotness identification (Figure 14).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..units import PAGE_SIZE


class PageKind(enum.Enum):
    """Content category of an anonymous page (drives synthetic payloads)."""

    HEAP_OBJECTS = "heap"
    STACK = "stack"
    UI_SURFACE = "ui"
    BITMAP = "bitmap"
    CODE_CACHE = "jit"
    ZERO = "zero"


class Hotness(enum.Enum):
    """The paper's three-level hotness classification (Section 1).

    - HOT: used during application relaunch; on the relaunch critical path.
    - WARM: potentially used during execution after relaunch.
    - COLD: usually never used again.
    """

    HOT = "hot"
    WARM = "warm"
    COLD = "cold"

    @property
    def rank(self) -> int:
        """Eviction priority: higher rank is evicted earlier."""
        return {Hotness.HOT: 0, Hotness.WARM: 1, Hotness.COLD: 2}[self]


#: Dense integer codes for :class:`Hotness`, used as list ids by the
#: columnar page-metadata core (``repro.mem.columnar``).  The codes
#: equal ``Hotness.rank`` so "evicted earlier" sorts ascending either
#: way; ``-1`` (no list) is reserved and must stay out of this table.
HOTNESS_TO_ID = {Hotness.HOT: 0, Hotness.WARM: 1, Hotness.COLD: 2}
ID_TO_HOTNESS = {code: hotness for hotness, code in HOTNESS_TO_ID.items()}


class PageLocation(enum.Enum):
    """Where a page's data currently resides."""

    DRAM = "dram"
    ZPOOL = "zpool"
    FLASH = "flash"
    #: Staged in PreDecomp's decompressed-ahead buffer.
    STAGING = "staging"


@dataclass
class Page:
    """One 4 KB anonymous page.

    Attributes:
        pfn: Page frame number; unique per page within a trace.
        uid: Owning application id.
        kind: Content category (what the payload generator synthesized).
        payload: The page's actual bytes (always ``PAGE_SIZE`` long).
        true_hotness: Ground-truth classification from the generator.
        location: Current residence of the data.
        last_access_ns: Simulated time of the last access (LRU input).
        access_count: Total accesses (debugging/metrics).
    """

    pfn: int
    uid: int
    kind: PageKind = PageKind.HEAP_OBJECTS
    payload: bytes = b""
    true_hotness: Hotness = Hotness.COLD
    location: PageLocation = PageLocation.DRAM
    last_access_ns: int = 0
    access_count: int = field(default=0, repr=False)
    #: Cached 16-byte blake2b of the payload (see :meth:`content_digest`).
    _content_digest: bytes | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.payload:
            self.payload = bytes(PAGE_SIZE)
        if len(self.payload) != PAGE_SIZE:
            raise ValueError(
                f"page {self.pfn} payload is {len(self.payload)} bytes, "
                f"expected {PAGE_SIZE}"
            )

    @property
    def size(self) -> int:
        """Page size in bytes (constant, provided for readability)."""
        return PAGE_SIZE

    def record_access(self, now_ns: int) -> None:
        """Update recency bookkeeping after an access at ``now_ns``."""
        self.last_access_ns = now_ns
        self.access_count += 1

    def content_digest(self) -> bytes:
        """Collision-safe content key of the payload, computed once.

        A page's payload never changes after materialization, so the
        digest is cached — trace records pre-share theirs (one hash per
        page per *process*, not per run), and pages built directly in
        tests compute it lazily here.  Size-cache lookups key chunk
        groups by these digests instead of re-hashing the concatenated
        payload on every compression.
        """
        digest = self._content_digest
        if digest is None:
            from ..compression.chunking import payload_digest

            digest = self._content_digest = payload_digest(self.payload)
        return digest

    def __hash__(self) -> int:
        return hash((self.pfn, self.uid))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Page):
            return NotImplemented
        return self.pfn == other.pfn and self.uid == other.uid
