"""Per-application data organizers: how resident anonymous pages are
grouped and in what order they are offered up for reclaim.

Two organizers are provided:

- :class:`ActiveInactiveOrganizer` — the stock kernel's two-list scheme
  (new pages start inactive; a touch promotes to active; reclaim pops the
  inactive tail, refilling it from the active tail).  This is the policy
  whose hotness-blindness Figure 4 of the paper demonstrates.
- :class:`HotWarmColdOrganizer` — the tri-list substrate of Ariadne's
  HotnessOrg (Section 4.2): hotness initialization at first launch,
  hotness update at relaunch boundaries, and cold -> warm -> hot eviction
  order.

Both organizers only manipulate list membership — no data moves — which
is why HotnessOrg is "low overhead" (Section 6.4).  The
``list_operations`` counter lets experiments charge the (tiny) CPU cost
of those manipulations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ..errors import PageStateError
from .lru import LruList
from .page import Hotness, Page


class DataOrganizer(ABC):
    """Owns the resident-page lists of one application."""

    def __init__(self, uid: int) -> None:
        self.uid = uid
        #: Count of individual LRU-list manipulations (for CPU accounting).
        self.list_operations = 0

    @abstractmethod
    def add_page(self, page: Page) -> None:
        """Register a newly resident page."""

    def add_page_run(self, pages: list[Page]) -> None:
        """Register a batch of newly resident pages, in order.

        Semantically identical to calling :meth:`add_page` per page;
        concrete organizers override with bulk list inserts.
        """
        for page in pages:
            self.add_page(page)

    @abstractmethod
    def on_access(self, page: Page, now_ns: int) -> None:
        """Record an access to a resident page (may promote it)."""

    def on_access_run(self, pages: list[Page], now_ns: int) -> None:
        """Record an in-order run of accesses to resident pages.

        Semantically identical to calling :meth:`on_access` once per
        page in order — same final list states, same ``list_operations``
        count — but implemented as one bulk operation by the concrete
        organizers, which is what makes batched access replay cheap.
        This default is the correct-by-construction fallback.
        """
        for page in pages:
            self.on_access(page, now_ns)

    @abstractmethod
    def remove_page(self, page: Page) -> None:
        """Drop a page from all lists (it is being reclaimed)."""

    @abstractmethod
    def pop_victim(self) -> Page:
        """Remove and return the next page this policy would reclaim."""

    @abstractmethod
    def has_victims(self) -> bool:
        """Whether any resident page remains to reclaim."""

    @abstractmethod
    def hotness_estimate(self, page: Page) -> Hotness:
        """The organizer's belief about a resident page's hotness."""

    @abstractmethod
    def resident_pages(self) -> Iterator[Page]:
        """Iterate over all resident pages (no particular order)."""

    @abstractmethod
    def resident_count(self) -> int:
        """Number of resident pages."""

    def resident_bytes(self) -> int:
        """Total bytes of resident pages."""
        return sum(page.size for page in self.resident_pages())


class ActiveInactiveOrganizer(DataOrganizer):
    """Stock kernel two-list LRU (the ZRAM baseline's organizer).

    Args:
        uid: Owning application id.
        refill_batch: How many active-tail pages are demoted when the
            inactive list runs dry, mirroring the kernel's batched
            ``shrink_active_list``.
    """

    def __init__(self, uid: int, refill_batch: int = 32) -> None:
        super().__init__(uid)
        self.active = LruList(f"app{uid}.active")
        self.inactive = LruList(f"app{uid}.inactive")
        self._refill_batch = refill_batch

    def add_page(self, page: Page) -> None:
        self.inactive.add(page)
        self.list_operations += 1

    def add_page_run(self, pages: list[Page]) -> None:
        self.inactive.add_run(pages)
        self.list_operations += len(pages)

    def on_access(self, page: Page, now_ns: int) -> None:
        page.record_access(now_ns)
        if page in self.inactive:
            self.inactive.remove(page)
            self.active.add(page)
            self.list_operations += 2
        elif page in self.active:
            self.active.touch(page)
            self.list_operations += 1
        else:
            raise PageStateError(
                f"page {page.pfn} accessed but not resident in app {self.uid}"
            )

    def on_access_run(self, pages: list[Page], now_ns: int) -> None:
        if not self.inactive._pages:
            # Single-populated-list fast path: with the inactive list
            # empty every resident page is active and stays there (a
            # touch never demotes), so classification is settled for
            # the whole run — one fused bulk touch, zero per-pfn
            # membership probes.
            self.list_operations += self.active.touch_all(pages, now_ns)
            return
        # Touches and inactive->active promotions land on the *same*
        # list, so their relative order matters and no touch can be
        # deferred past a promotion (unlike the tri-list organizer,
        # where promotions enter warm, never hot).  The bulk win here is
        # hoisting the backing dicts and accumulating the op count.
        inactive_pages = self.inactive._pages
        active_pages = self.active._pages
        active_move = active_pages.move_to_end
        ops = 0
        for page in pages:
            page.record_access(now_ns)
            pfn = page.pfn
            if pfn in inactive_pages:
                del inactive_pages[pfn]
                active_pages[pfn] = page
                ops += 2
            elif pfn in active_pages:
                active_move(pfn)
                ops += 1
            else:
                raise PageStateError(
                    f"page {pfn} accessed but not resident in app {self.uid}"
                )
        self.list_operations += ops

    def remove_page(self, page: Page) -> None:
        if not (self.inactive.discard(page) or self.active.discard(page)):
            raise PageStateError(
                f"page {page.pfn} not resident in app {self.uid}"
            )
        self.list_operations += 1

    def _refill_inactive(self) -> None:
        moved = 0
        while len(self.active) > 0 and moved < self._refill_batch:
            page = self.active.pop_lru()
            self.inactive.add(page)
            self.list_operations += 2
            moved += 1

    def pop_victim(self) -> Page:
        if len(self.inactive) == 0:
            self._refill_inactive()
        if len(self.inactive) == 0:
            raise PageStateError(f"app {self.uid} has no pages to reclaim")
        self.list_operations += 1
        return self.inactive.pop_lru()

    def has_victims(self) -> bool:
        return len(self.inactive) > 0 or len(self.active) > 0

    def hotness_estimate(self, page: Page) -> Hotness:
        # The two-list scheme has no hot notion; the closest mapping is
        # active -> WARM, inactive -> COLD.
        if page in self.active:
            return Hotness.WARM
        if page in self.inactive:
            return Hotness.COLD
        raise PageStateError(f"page {page.pfn} not resident in app {self.uid}")

    def resident_pages(self) -> Iterator[Page]:
        yield from self.inactive
        yield from self.active

    def resident_count(self) -> int:
        return len(self.inactive) + len(self.active)


class HotWarmColdOrganizer(DataOrganizer):
    """Tri-list organizer implementing HotnessOrg's within-app policy.

    Lifecycle (Section 4.2 of the paper):

    - *Hotness initialization*: the first ``hot_seed_limit`` pages added
      during the app's launch window go to the hot list (the profiled
      launch working set); pages created afterwards go to the cold list.
    - *Execution*: touching a cold page promotes it to warm (the analogue
      of inactive -> active); hot/warm touches just refresh recency.
    - *Hotness update*: callers bracket a relaunch with
      :meth:`begin_relaunch` / :meth:`end_relaunch`.  At the end, pages
      accessed during the relaunch form the new hot list; stale hot pages
      demote to warm.
    - *Eviction*: cold pages first, then warm, then (only if unavoidable)
      hot — each list in LRU order.
    """

    def __init__(self, uid: int, hot_seed_limit: int) -> None:
        super().__init__(uid)
        if hot_seed_limit < 0:
            raise PageStateError(
                f"hot_seed_limit must be >= 0, got {hot_seed_limit}"
            )
        self.hot = LruList(f"app{uid}.hot")
        self.warm = LruList(f"app{uid}.warm")
        self.cold = LruList(f"app{uid}.cold")
        self._hot_seed_limit = hot_seed_limit
        self._seeded = 0
        self._in_launch_window = True
        self._relaunch_active = False
        self._relaunch_accessed: set[int] = set()

    # -- membership helpers ---------------------------------------------------

    def _list_of(self, page: Page) -> LruList | None:
        for lru in (self.hot, self.warm, self.cold):
            if page in lru:
                return lru
        return None

    # -- lifecycle ------------------------------------------------------------

    def end_launch_window(self) -> None:
        """Mark the initial launch as finished; later pages default to cold."""
        self._in_launch_window = False

    def add_page(self, page: Page) -> None:
        if self._relaunch_active:
            # Pages faulted in during a relaunch join the hot list; only an
            # actual access marks them relaunch-used, so chunk siblings that
            # were materialized but never touched demote to warm afterwards.
            self.hot.add(page)
        elif self._in_launch_window and self._seeded < self._hot_seed_limit:
            self.hot.add(page)
            self._seeded += 1
        else:
            self.cold.add(page)
        self.list_operations += 1

    def add_page_run(self, pages: list[Page]) -> None:
        # The per-page routing state is fixed across an admission batch
        # (relaunch flag and launch window only flip between batches);
        # only the hot-seed budget moves, so the batch splits into at
        # most one hot prefix and one cold tail.
        count = len(pages)
        if self._relaunch_active:
            self.hot.add_run(pages)
        elif self._in_launch_window and self._seeded < self._hot_seed_limit:
            take = min(self._hot_seed_limit - self._seeded, count)
            self.hot.add_run(pages[:take] if take < count else pages)
            self._seeded += take
            if take < count:
                self.cold.add_run(pages[take:])
        else:
            self.cold.add_run(pages)
        self.list_operations += count

    def add_page_as(self, page: Page, hotness: Hotness) -> None:
        """Insert a page directly into a specific list (used by swap-in)."""
        {Hotness.HOT: self.hot, Hotness.WARM: self.warm, Hotness.COLD: self.cold}[
            hotness
        ].add(page)
        self.list_operations += 1

    def on_access(self, page: Page, now_ns: int) -> None:
        # The hottest organizer operation: membership and recency updates
        # go straight at the backing dicts (one lookup each instead of
        # LruList's check-then-act pair).
        page.last_access_ns = now_ns
        page.access_count += 1
        pfn = page.pfn
        hot_pages = self.hot._pages
        warm_pages = self.warm._pages
        if pfn in hot_pages:
            if self._relaunch_active:
                self._relaunch_accessed.add(pfn)
            hot_pages.move_to_end(pfn)
            self.list_operations += 1
            return
        if pfn in warm_pages:
            if self._relaunch_active:
                self._relaunch_accessed.add(pfn)
            warm_pages.move_to_end(pfn)
            self.list_operations += 1
            return
        cold_pages = self.cold._pages
        if pfn in cold_pages:
            if self._relaunch_active:
                self._relaunch_accessed.add(pfn)
            del cold_pages[pfn]
            warm_pages[pfn] = page
            self.list_operations += 2
            return
        raise PageStateError(
            f"page {page.pfn} accessed but not resident in app {self.uid}"
        )

    def on_access_run(self, pages: list[Page], now_ns: int) -> None:
        if not self.warm._pages and not self.cold._pages:
            # Single-populated-list fast path: warm and cold empty means
            # every resident page is hot and stays hot (touches never
            # leave the hot list), so the whole run is one fused bulk
            # touch with zero per-pfn classification probes.  This is
            # exactly the EHL/AL relaunch shape: force-compression
            # empties warm and cold, and relaunch faults admit straight
            # to hot.  Relaunch-accessed tracking is a set; order-free.
            ops = self.hot.touch_all(pages, now_ns)
            if self._relaunch_active:
                self._relaunch_accessed.update(
                    [page.pfn for page in pages]
                )
            self.list_operations += ops
            return
        # Hot-list touches can be deferred to one bulk touch_run at the
        # end: accesses never move a page *into or out of* the hot list
        # (cold promotes to warm), so the final hot order depends only
        # on the order of hot touches — which the collected run
        # preserves.  Warm/cold ops interleave on the warm list and run
        # inline.  Relaunch-accessed tracking is a set; order-free.
        hot_pages = self.hot._pages
        warm_pages = self.warm._pages
        cold_pages = self.cold._pages
        warm_move = warm_pages.move_to_end
        relaunch = self._relaunch_active
        accessed = self._relaunch_accessed
        hot_run: list[int] = []
        hot_append = hot_run.append
        ops = 0
        for page in pages:
            page.last_access_ns = now_ns
            page.access_count += 1
            pfn = page.pfn
            if pfn in hot_pages:
                hot_append(pfn)
            elif pfn in warm_pages:
                if relaunch:
                    accessed.add(pfn)
                warm_move(pfn)
                ops += 1
            elif pfn in cold_pages:
                if relaunch:
                    accessed.add(pfn)
                del cold_pages[pfn]
                warm_pages[pfn] = page
                ops += 2
            else:
                raise PageStateError(
                    f"page {pfn} accessed but not resident in app {self.uid}"
                )
        if hot_run:
            ops += self.hot.touch_run(hot_run)
            if relaunch:
                accessed.update(hot_run)
        self.list_operations += ops

    def remove_page(self, page: Page) -> None:
        lru = self._list_of(page)
        if lru is None:
            raise PageStateError(f"page {page.pfn} not resident in app {self.uid}")
        lru.remove(page)
        self.list_operations += 1

    # -- relaunch bracketing ----------------------------------------------------

    def begin_relaunch(self) -> None:
        """Start recording which pages this relaunch touches."""
        self._relaunch_active = True
        self._relaunch_accessed = set()

    def end_relaunch(self) -> None:
        """Apply the hotness update: relaunch-touched pages become the hot
        list; stale hot pages demote to warm."""
        if not self._relaunch_active:
            raise PageStateError(f"app {self.uid}: end_relaunch without begin")
        self._relaunch_active = False
        accessed = self._relaunch_accessed
        for page in list(self.hot):
            if page.pfn not in accessed:
                self.hot.remove(page)
                self.warm.add(page)
                self.list_operations += 2
        for lru in (self.warm, self.cold):
            for page in list(lru):
                if page.pfn in accessed:
                    lru.remove(page)
                    self.hot.add(page)
                    self.list_operations += 2
        self._relaunch_accessed = set()

    # -- reclaim ---------------------------------------------------------------

    def pop_victim(self) -> Page:
        for lru in (self.cold, self.warm, self.hot):
            if len(lru):
                self.list_operations += 1
                return lru.pop_lru()
        raise PageStateError(f"app {self.uid} has no pages to reclaim")

    def level_list(self, level: Hotness):
        """The LRU list backing one hotness level.

        An ``is``-chain rather than a per-call dict build: this sits on
        the reclaim scan's innermost loop, and it stays correct when a
        subclass swaps the list implementation in its own ``__init__``.
        """
        if level is Hotness.COLD:
            return self.cold
        if level is Hotness.WARM:
            return self.warm
        return self.hot

    def pop_victim_from_level(self, level: Hotness) -> Page:
        """Remove the LRU page of one specific list.

        Used by Ariadne's global eviction order (Section 4.2: cold data
        of *all* applications first, then warm, then hot).
        """
        lru = self.level_list(level)
        if not len(lru):
            raise PageStateError(
                f"app {self.uid} has no {level.value} pages to reclaim"
            )
        self.list_operations += 1
        return lru.pop_lru()

    def level_population(self, level: Hotness) -> int:
        """Number of resident pages on one hotness list."""
        return len(self.level_list(level))

    def has_victims(self) -> bool:
        return bool(len(self.cold) or len(self.warm) or len(self.hot))

    def has_non_hot_victims(self) -> bool:
        """Whether reclaim can proceed without touching the hot list."""
        return bool(len(self.cold) or len(self.warm))

    def hotness_estimate(self, page: Page) -> Hotness:
        if page in self.hot:
            return Hotness.HOT
        if page in self.warm:
            return Hotness.WARM
        if page in self.cold:
            return Hotness.COLD
        raise PageStateError(f"page {page.pfn} not resident in app {self.uid}")

    def resident_pages(self) -> Iterator[Page]:
        yield from self.cold
        yield from self.warm
        yield from self.hot

    def resident_count(self) -> int:
        return len(self.cold) + len(self.warm) + len(self.hot)
