"""Least-recently-used page lists with O(1) operations.

Mirrors the kernel's per-zone LRU lists: most-recently-used pages sit at
the head, reclaim pops from the tail.  Two interchangeable
implementations share the API:

- :class:`LruList` — an ``OrderedDict`` of :class:`Page` objects, the
  object-model reference.
- :class:`IndexLruList` — a numpy index-linked view over one list id of
  a columnar handle table (``repro.mem.columnar``): membership and
  recency live in flat integer columns, and bulk ``touch_run`` /
  ``touch_all`` / ``add_run`` become single fancy-indexing kernels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from ..errors import PageStateError
from .page import Page

try:  # Soft dependency: without numpy only LruList is constructible.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_CORE tests
    _np = None


class LruList:
    """Ordered collection of pages, LRU at the tail, MRU at the head."""

    def __init__(self, name: str = "lru") -> None:
        self.name = name
        #: Insertion order == recency order: last item is MRU.
        self._pages: OrderedDict[int, Page] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page.pfn in self._pages

    def __iter__(self) -> Iterator[Page]:
        """Iterate from LRU (evict-first) to MRU."""
        return iter(self._pages.values())

    @property
    def total_bytes(self) -> int:
        """Sum of page sizes on this list."""
        return sum(page.size for page in self._pages.values())

    def add(self, page: Page) -> None:
        """Insert ``page`` at the MRU end; error if already present."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page

    def add_run(self, pages) -> None:
        """Insert pages at the MRU end in order; error on any duplicate.

        The bulk analogue of :meth:`add` for admission batches: same
        final order, same duplicate check, one attribute resolution.
        """
        _pages = self._pages
        for page in pages:
            pfn = page.pfn
            if pfn in _pages:
                raise PageStateError(
                    f"page {pfn} already on list {self.name!r}"
                )
            _pages[pfn] = page

    def add_lru(self, page: Page) -> None:
        """Insert ``page`` at the LRU end (evicted first)."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page
        self._pages.move_to_end(page.pfn, last=False)

    def touch(self, page: Page) -> None:
        """Move ``page`` to the MRU end; error if absent."""
        if page.pfn not in self._pages:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")
        self._pages.move_to_end(page.pfn)

    def touch_run(self, pfns) -> int:
        """Move already-present pages to the MRU end, in order; returns count.

        The bulk analogue of :meth:`touch` for access replay: one
        attribute resolution serves the whole run, and the in-order
        moves leave exactly the recency order a touch-per-page loop
        would.  Callers guarantee membership (the organizer classified
        each pfn against this list's backing dict first); an absent pfn
        is a caller bug and surfaces as :class:`PageStateError`.
        """
        move = self._pages.move_to_end
        try:
            for pfn in pfns:
                move(pfn)
        except KeyError:
            raise PageStateError(
                f"page {pfn} not on list {self.name!r}"
            ) from None
        return len(pfns)

    def touch_all(self, pages, now_ns: int) -> int:
        """Touch a run of pages known to live on *this* list; returns count.

        The single-populated-list fast path of the organizers' bulk
        access replay: when an app's every resident page sits on one
        list (EHL/AL relaunches empty the other lists; the DRAM
        baseline's inactive list drains), per-page membership
        classification is pure overhead — each page's access stamps and
        recency move happen in one fused loop with no per-pfn dict
        probes beyond the move itself.  Exactly equivalent to the
        classified path: every page would have classified onto this
        list, a touch is one list operation, and stamps are
        per-page either way.  An absent page is a caller bug and
        surfaces as :class:`PageStateError`.
        """
        move = self._pages.move_to_end
        try:
            for page in pages:
                page.last_access_ns = now_ns
                page.access_count += 1
                move(page.pfn)
        except KeyError:
            raise PageStateError(
                f"page {page.pfn} not on list {self.name!r}"
            ) from None
        return len(pages)

    def remove(self, page: Page) -> None:
        """Remove ``page``; error if absent."""
        if self._pages.pop(page.pfn, None) is None:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")

    def discard(self, page: Page) -> bool:
        """Remove ``page`` if present; return whether it was present."""
        return self._pages.pop(page.pfn, None) is not None

    def pop_lru(self) -> Page:
        """Remove and return the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        _, page = self._pages.popitem(last=False)
        return page

    def peek_lru(self) -> Page:
        """Return (without removing) the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(iter(self._pages.values()))

    def peek_mru(self) -> Page:
        """Return (without removing) the most-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(reversed(self._pages.values()))

    def pages_lru_order(self) -> list[Page]:
        """Snapshot of all pages, LRU first."""
        return list(self._pages.values())

    def __repr__(self) -> str:
        return f"LruList(name={self.name!r}, pages={len(self._pages)})"


#: Sentinel list id for "on no list" in the columnar ``list_id`` column.
NO_LIST = -1

#: Batch size below which the index-linked list's bulk operations run a
#: plain Python loop: a fancy-indexed numpy kernel carries ~10 us of
#: fixed cost (temp arrays, dtype dispatch) that a loop over a
#: chunk-sized batch undercuts several-fold.
_SMALL_RUN = 16


class IndexLruList:
    """Index-linked LRU list over one list id of a columnar handle table.

    API-compatible with :class:`LruList` (the organizers and their
    callers cannot tell them apart), but membership and recency live in
    the handle table's flat columns instead of per-page dict nodes:

    - ``table.list_id[h] == lid`` says handle ``h`` is on this list;
    - ``table.pos[h]`` is its slot in the append-order ``_order`` array.

    Recency order is the append order: a touch re-appends the handle at
    the tail of ``_order`` and bumps ``pos``, leaving the old slot
    *dead* (a slot ``p`` is live iff ``list_id[order[p]] == lid and
    pos[order[p]] == p``).  Ascending live positions therefore read
    LRU -> MRU — the property the columnar ``end_relaunch`` journal
    sort relies on.  Dead slots are reclaimed by compaction when the
    array fills; ``pop_lru``/``peek`` skip them from the head at
    amortized O(1).  Bulk ``add_run``/``touch_run``/``touch_all`` are
    single fancy-indexed appends: writing ``pos[handles] = arange(...)``
    resolves within-run duplicates last-write-wins, which is exactly
    the recency a touch-per-page loop leaves.
    """

    __slots__ = ("name", "_table", "_lid", "_order", "_head", "_tail", "_count")

    def __init__(self, table, lid: int, name: str) -> None:
        self.name = name
        self._table = table
        self._lid = lid
        self._order = _np.zeros(64, dtype=_np.int64)
        self._head = 0
        self._tail = 0
        self._count = 0

    # -- representation internals -------------------------------------------

    def _live_handles(self):
        """Handles on this list, LRU -> MRU (vectorized dead-slot filter)."""
        table = self._table
        seg = self._order[self._head:self._tail]
        if not seg.size:
            return seg
        live = (table.list_id[seg] == self._lid) & (
            table.pos[seg]
            == _np.arange(self._head, self._tail, dtype=_np.int64)
        )
        return seg[live]

    def _reserve(self, extra: int, front: int = 0) -> None:
        """Guarantee ``extra`` free tail slots (and ``front`` head slots),
        compacting dead entries (and growing) when the array is full."""
        if self._tail + extra <= self._order.shape[0] and self._head >= front:
            return
        live = self._live_handles()
        n = int(live.size)
        cap = max(64, 2 * (n + extra + front))
        order = _np.zeros(cap, dtype=_np.int64)
        order[front:front + n] = live
        self._table.pos[live] = _np.arange(front, front + n, dtype=_np.int64)
        self._order = order
        self._head = front
        self._tail = front + n

    def _append(self, h: int) -> None:
        """Append one handle at the MRU end (caller manages list_id/count)."""
        tail = self._tail
        if tail >= self._order.shape[0]:
            self._reserve(1)
            tail = self._tail
        self._order[tail] = h
        self._table.pos[h] = tail
        self._tail = tail + 1

    def _append_run(self, handles) -> None:
        """Bulk-append handles in order (within-run duplicates: last wins)."""
        k = int(handles.shape[0])
        if not k:
            return
        if self._tail + k > self._order.shape[0]:
            self._reserve(k)
        tail = self._tail
        self._order[tail:tail + k] = handles
        self._table.pos[handles] = _np.arange(tail, tail + k, dtype=_np.int64)
        self._tail = tail + k

    def _check_member(self, page: Page) -> int:
        h = self._table.index.get(page.pfn)
        if h is None or self._table.list_id.item(h) != self._lid:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")
        return h

    # -- LruList API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, page: Page) -> bool:
        h = self._table.index.get(page.pfn)
        return h is not None and self._table.list_id.item(h) == self._lid

    def __iter__(self) -> Iterator[Page]:
        """Iterate from LRU (evict-first) to MRU."""
        pages = self._table.pages
        for h in self._live_handles():
            yield pages[h]

    @property
    def total_bytes(self) -> int:
        """Sum of page sizes on this list (pages are uniformly sized)."""
        from ..units import PAGE_SIZE

        return self._count * PAGE_SIZE

    def add(self, page: Page) -> None:
        """Insert ``page`` at the MRU end; error if already on a list.

        Stricter than :class:`LruList.add`, which only rejects presence
        on *this* list: a handle carries exactly one list id, so adding
        a page that still sits on a sibling list would corrupt that
        list's count.  No legitimate caller does this (the object core
        would silently create the dual membership the auditor flags).
        """
        table = self._table
        h = table.ensure(page)
        lid = table.list_id.item(h)
        if lid == self._lid:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        if lid != NO_LIST:
            raise PageStateError(
                f"page {page.pfn} still on a sibling list (id {lid}) "
                f"of {self.name!r}; remove it first"
            )
        table.list_id[h] = self._lid
        self._append(h)
        self._count += 1

    def add_run(self, pages) -> None:
        """Insert pages at the MRU end in order; error on any duplicate.

        Validates the whole batch before mutating anything (same
        no-partial-mutation guarantee on both the scalar and the
        vectorized path).  Batches below ``_SMALL_RUN`` go through a
        plain loop — the fixed cost of the fancy-indexed kernel
        (~10 us) dwarfs per-page work for chunk-sized admissions.
        """
        n = len(pages)
        if not n:
            return
        table = self._table
        lid = self._lid
        if n <= _SMALL_RUN:
            ensure = table.ensure
            # Ensure first: allocating a handle may grow (reallocate) the
            # columns, so ``list_id`` must be bound only afterwards.
            handles = [ensure(page) for page in pages]
            list_item = table.list_id.item
            seen = set()
            for page, h in zip(pages, handles):
                cur = list_item(h)
                if cur == lid:
                    raise PageStateError(
                        f"page {page.pfn} already on list {self.name!r}"
                    )
                if cur != NO_LIST:
                    raise PageStateError(
                        f"page {page.pfn} still on a sibling list of "
                        f"{self.name!r}; remove it first"
                    )
                if h in seen:
                    raise PageStateError(
                        f"duplicate page in add_run on list {self.name!r}"
                    )
                seen.add(h)
            self._reserve(n)
            list_id = table.list_id
            pos = table.pos
            order = self._order
            tail = self._tail
            for h in handles:
                list_id[h] = lid
                order[tail] = h
                pos[h] = tail
                tail += 1
            self._tail = tail
            self._count += n
            return
        handles = table.handles_for(pages)
        lids = table.list_id[handles]
        if (lids != NO_LIST).any():
            if (lids == lid).any():
                bad = pages[int(_np.argmax(lids == lid))]
                raise PageStateError(
                    f"page {bad.pfn} already on list {self.name!r}"
                )
            bad = pages[int(_np.argmax(lids != NO_LIST))]
            raise PageStateError(
                f"page {bad.pfn} still on a sibling list of "
                f"{self.name!r}; remove it first"
            )
        if len(set(handles.tolist())) != n:
            raise PageStateError(
                f"duplicate page in add_run on list {self.name!r}"
            )
        table.list_id[handles] = lid
        self._append_run(handles)
        self._count += n

    def add_lru(self, page: Page) -> None:
        """Insert ``page`` at the LRU end (evicted first)."""
        table = self._table
        h = table.ensure(page)
        lid = table.list_id.item(h)
        if lid == self._lid:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        if lid != NO_LIST:
            raise PageStateError(
                f"page {page.pfn} still on a sibling list (id {lid}) "
                f"of {self.name!r}; remove it first"
            )
        if self._head == 0:
            self._reserve(0, front=8)
        self._head -= 1
        self._order[self._head] = h
        table.pos[h] = self._head
        table.list_id[h] = self._lid
        self._count += 1

    def touch(self, page: Page) -> None:
        """Move ``page`` to the MRU end; error if absent."""
        self._append(self._check_member(page))

    def touch_run(self, pfns) -> int:
        """Move already-present pages to the MRU end, in order."""
        index = self._table.index
        try:
            handles = _np.fromiter(
                (index[pfn] for pfn in pfns), dtype=_np.int64, count=len(pfns)
            )
        except KeyError as exc:
            raise PageStateError(
                f"page {exc.args[0]} not on list {self.name!r}"
            ) from None
        if handles.size:
            lids = self._table.list_id[handles]
            if (lids != self._lid).any():
                bad = int(handles[int(_np.argmax(lids != self._lid))])
                raise PageStateError(
                    f"page {self._table.pages[bad].pfn} not on list "
                    f"{self.name!r}"
                )
            self._append_run(handles)
        return len(pfns)

    def touch_all(self, pages, now_ns: int) -> int:
        """Stamp and touch a run of pages known to live on this list.

        The columns are the authoritative access stamps in the columnar
        core; the per-page attributes are not written (see
        ``repro.mem.columnar``).
        """
        table = self._table
        handles = table.handles_for(pages)
        if handles.size:
            lids = table.list_id[handles]
            if (lids != self._lid).any():
                bad = pages[int(_np.argmax(lids != self._lid))]
                raise PageStateError(
                    f"page {bad.pfn} not on list {self.name!r}"
                )
            table.stamp_accesses(handles, now_ns)
            self._append_run(handles)
        return len(pages)

    def remove(self, page: Page) -> None:
        """Remove ``page``; error if absent."""
        h = self._check_member(page)
        self._table.list_id[h] = NO_LIST
        self._count -= 1

    def discard(self, page: Page) -> bool:
        """Remove ``page`` if present; return whether it was present."""
        table = self._table
        h = table.index.get(page.pfn)
        if h is None or table.list_id.item(h) != self._lid:
            return False
        table.list_id[h] = NO_LIST
        self._count -= 1
        return True

    def pop_lru(self) -> Page:
        """Remove and return the least-recently-used page."""
        table = self._table
        tail, lid = self._tail, self._lid
        # .item() readers return plain Python ints (one C call), about
        # half the cost of scalar fancy indexing + int().
        order_item = self._order.item
        list_item, pos_item = table.list_id.item, table.pos.item
        head = self._head
        while head < tail:
            h = order_item(head)
            if list_item(h) == lid and pos_item(h) == head:
                self._head = head + 1
                table.list_id[h] = NO_LIST
                self._count -= 1
                return table.pages[h]
            head += 1
        self._head = head
        raise PageStateError(f"list {self.name!r} is empty")

    def pop_lru_run(self, k: int) -> list[Page]:
        """Remove and return up to ``k`` LRU pages, oldest first.

        Returns fewer when the list drains — the batched analogue of
        ``while k and len(list): pop_lru()``, with the column bindings
        and the stale-slot walk paid once for the whole run.
        """
        if k <= 0 or not self._count:
            return []
        table = self._table
        tail, lid = self._tail, self._lid
        order_item = self._order.item
        list_item, pos_item = table.list_id.item, table.pos.item
        list_id = table.list_id
        pages = table.pages
        head = self._head
        out: list[Page] = []
        while head < tail and len(out) < k:
            h = order_item(head)
            if list_item(h) == lid and pos_item(h) == head:
                list_id[h] = NO_LIST
                out.append(pages[h])
            head += 1
        self._head = head
        self._count -= len(out)
        return out

    def peek_lru(self) -> Page:
        """Return (without removing) the least-recently-used page."""
        table = self._table
        tail, lid = self._tail, self._lid
        order_item = self._order.item
        list_item, pos_item = table.list_id.item, table.pos.item
        head = self._head
        while head < tail:
            h = order_item(head)
            if list_item(h) == lid and pos_item(h) == head:
                self._head = head  # dead prefix skipped for good
                return table.pages[h]
            head += 1
        self._head = head
        raise PageStateError(f"list {self.name!r} is empty")

    def peek_mru(self) -> Page:
        """Return (without removing) the most-recently-used page."""
        table = self._table
        head, lid = self._head, self._lid
        order_item = self._order.item
        list_item, pos_item = table.list_id.item, table.pos.item
        p = self._tail - 1
        while p >= head:
            h = order_item(p)
            if list_item(h) == lid and pos_item(h) == p:
                self._tail = p + 1  # dead suffix skipped for good
                return table.pages[h]
            p -= 1
        raise PageStateError(f"list {self.name!r} is empty")

    def pages_lru_order(self) -> list[Page]:
        """Snapshot of all pages, LRU first."""
        pages = self._table.pages
        return [pages[h] for h in self._live_handles()]

    def __repr__(self) -> str:
        return f"IndexLruList(name={self.name!r}, pages={self._count})"
