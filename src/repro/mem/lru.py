"""A least-recently-used page list with O(1) operations.

Mirrors the kernel's per-zone LRU lists: most-recently-used pages sit at
the head, reclaim pops from the tail.  Backed by an ``OrderedDict`` so
``touch`` (move to head), ``remove``, and ``pop_lru`` are all O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from ..errors import PageStateError
from .page import Page


class LruList:
    """Ordered collection of pages, LRU at the tail, MRU at the head."""

    def __init__(self, name: str = "lru") -> None:
        self.name = name
        #: Insertion order == recency order: last item is MRU.
        self._pages: OrderedDict[int, Page] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page.pfn in self._pages

    def __iter__(self) -> Iterator[Page]:
        """Iterate from LRU (evict-first) to MRU."""
        return iter(self._pages.values())

    @property
    def total_bytes(self) -> int:
        """Sum of page sizes on this list."""
        return sum(page.size for page in self._pages.values())

    def add(self, page: Page) -> None:
        """Insert ``page`` at the MRU end; error if already present."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page

    def add_run(self, pages) -> None:
        """Insert pages at the MRU end in order; error on any duplicate.

        The bulk analogue of :meth:`add` for admission batches: same
        final order, same duplicate check, one attribute resolution.
        """
        _pages = self._pages
        for page in pages:
            pfn = page.pfn
            if pfn in _pages:
                raise PageStateError(
                    f"page {pfn} already on list {self.name!r}"
                )
            _pages[pfn] = page

    def add_lru(self, page: Page) -> None:
        """Insert ``page`` at the LRU end (evicted first)."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page
        self._pages.move_to_end(page.pfn, last=False)

    def touch(self, page: Page) -> None:
        """Move ``page`` to the MRU end; error if absent."""
        if page.pfn not in self._pages:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")
        self._pages.move_to_end(page.pfn)

    def touch_run(self, pfns) -> int:
        """Move already-present pages to the MRU end, in order; returns count.

        The bulk analogue of :meth:`touch` for access replay: one
        attribute resolution serves the whole run, and the in-order
        moves leave exactly the recency order a touch-per-page loop
        would.  Callers guarantee membership (the organizer classified
        each pfn against this list's backing dict first); an absent pfn
        is a caller bug and surfaces as :class:`PageStateError`.
        """
        move = self._pages.move_to_end
        try:
            for pfn in pfns:
                move(pfn)
        except KeyError:
            raise PageStateError(
                f"page {pfn} not on list {self.name!r}"
            ) from None
        return len(pfns)

    def touch_all(self, pages, now_ns: int) -> int:
        """Touch a run of pages known to live on *this* list; returns count.

        The single-populated-list fast path of the organizers' bulk
        access replay: when an app's every resident page sits on one
        list (EHL/AL relaunches empty the other lists; the DRAM
        baseline's inactive list drains), per-page membership
        classification is pure overhead — each page's access stamps and
        recency move happen in one fused loop with no per-pfn dict
        probes beyond the move itself.  Exactly equivalent to the
        classified path: every page would have classified onto this
        list, a touch is one list operation, and stamps are
        per-page either way.  An absent page is a caller bug and
        surfaces as :class:`PageStateError`.
        """
        move = self._pages.move_to_end
        try:
            for page in pages:
                page.last_access_ns = now_ns
                page.access_count += 1
                move(page.pfn)
        except KeyError:
            raise PageStateError(
                f"page {page.pfn} not on list {self.name!r}"
            ) from None
        return len(pages)

    def remove(self, page: Page) -> None:
        """Remove ``page``; error if absent."""
        if self._pages.pop(page.pfn, None) is None:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")

    def discard(self, page: Page) -> bool:
        """Remove ``page`` if present; return whether it was present."""
        return self._pages.pop(page.pfn, None) is not None

    def pop_lru(self) -> Page:
        """Remove and return the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        _, page = self._pages.popitem(last=False)
        return page

    def peek_lru(self) -> Page:
        """Return (without removing) the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(iter(self._pages.values()))

    def peek_mru(self) -> Page:
        """Return (without removing) the most-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(reversed(self._pages.values()))

    def pages_lru_order(self) -> list[Page]:
        """Snapshot of all pages, LRU first."""
        return list(self._pages.values())

    def __repr__(self) -> str:
        return f"LruList(name={self.name!r}, pages={len(self._pages)})"
