"""A least-recently-used page list with O(1) operations.

Mirrors the kernel's per-zone LRU lists: most-recently-used pages sit at
the head, reclaim pops from the tail.  Backed by an ``OrderedDict`` so
``touch`` (move to head), ``remove``, and ``pop_lru`` are all O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from ..errors import PageStateError
from .page import Page


class LruList:
    """Ordered collection of pages, LRU at the tail, MRU at the head."""

    def __init__(self, name: str = "lru") -> None:
        self.name = name
        #: Insertion order == recency order: last item is MRU.
        self._pages: OrderedDict[int, Page] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page.pfn in self._pages

    def __iter__(self) -> Iterator[Page]:
        """Iterate from LRU (evict-first) to MRU."""
        return iter(self._pages.values())

    @property
    def total_bytes(self) -> int:
        """Sum of page sizes on this list."""
        return sum(page.size for page in self._pages.values())

    def add(self, page: Page) -> None:
        """Insert ``page`` at the MRU end; error if already present."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page

    def add_lru(self, page: Page) -> None:
        """Insert ``page`` at the LRU end (evicted first)."""
        if page.pfn in self._pages:
            raise PageStateError(f"page {page.pfn} already on list {self.name!r}")
        self._pages[page.pfn] = page
        self._pages.move_to_end(page.pfn, last=False)

    def touch(self, page: Page) -> None:
        """Move ``page`` to the MRU end; error if absent."""
        if page.pfn not in self._pages:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")
        self._pages.move_to_end(page.pfn)

    def remove(self, page: Page) -> None:
        """Remove ``page``; error if absent."""
        if self._pages.pop(page.pfn, None) is None:
            raise PageStateError(f"page {page.pfn} not on list {self.name!r}")

    def discard(self, page: Page) -> bool:
        """Remove ``page`` if present; return whether it was present."""
        return self._pages.pop(page.pfn, None) is not None

    def pop_lru(self) -> Page:
        """Remove and return the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        _, page = self._pages.popitem(last=False)
        return page

    def peek_lru(self) -> Page:
        """Return (without removing) the least-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(iter(self._pages.values()))

    def peek_mru(self) -> Page:
        """Return (without removing) the most-recently-used page."""
        if not self._pages:
            raise PageStateError(f"list {self.name!r} is empty")
        return next(reversed(self._pages.values()))

    def pages_lru_order(self) -> list[Page]:
        """Snapshot of all pages, LRU first."""
        return list(self._pages.values())

    def __repr__(self) -> str:
        return f"LruList(name={self.name!r}, pages={len(self._pages)})"
