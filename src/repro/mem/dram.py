"""Capacity-tracked main memory.

:class:`MainMemory` tracks which pages are resident and enforces the
capacity the platform provides for anonymous data.  It deliberately does
*not* decide what to evict — that is the swap scheme's job — it only
refuses to go over capacity, forcing callers to reclaim first (the
simulator's analogue of direct reclaim).

Occupancy is a running counter updated on every add/remove, and
interested parties (the swap schemes' free-memory accounting) can
:meth:`subscribe` to byte-delta notifications — the O(1) incremental
accounting layer that lets watermark probes cost an integer compare
instead of a recompute.  :meth:`audit_used_bytes` recomputes occupancy
from scratch for invariant checks.
"""

from __future__ import annotations

from typing import Callable

from ..errors import MemoryPressureError, PageStateError
from ..units import PAGE_SIZE, fmt_bytes
from .page import Page, PageLocation


class MainMemory:
    """DRAM capacity model for anonymous pages.

    Args:
        capacity_bytes: Bytes of DRAM available to anonymous data (the
            platform's total minus OS/file-cache reservations, scaled).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise MemoryPressureError(
                f"DRAM capacity {capacity_bytes} is smaller than one page"
            )
        self.capacity_bytes = capacity_bytes
        self._resident: dict[int, Page] = {}
        self._used_bytes = 0
        #: Byte-delta listeners, called as ``fn(delta)`` after every
        #: occupancy change (positive on admit, negative on evict).
        self._listeners: list[Callable[[int], None]] = []
        #: High-water mark of bytes resident (for reports).
        self.peak_used_bytes = 0

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a byte-delta hook fired on every occupancy change."""
        self._listeners.append(listener)

    def _notify(self, delta: int) -> None:
        for listener in self._listeners:
            listener(delta)

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by resident pages (running counter)."""
        return self._used_bytes

    def audit_used_bytes(self) -> int:
        """From-scratch recompute of :attr:`used_bytes` (invariant checks)."""
        return len(self._resident) * PAGE_SIZE

    @property
    def free_bytes(self) -> int:
        """Bytes available before hitting capacity."""
        return self.capacity_bytes - self._used_bytes

    @property
    def resident_count(self) -> int:
        """Number of resident pages."""
        return len(self._resident)

    def has_room_for(self, n_pages: int) -> bool:
        """Whether ``n_pages`` more pages fit without reclaim."""
        return self.free_bytes >= n_pages * PAGE_SIZE

    def add_page(self, page: Page) -> None:
        """Make ``page`` resident; the caller must have ensured room."""
        if page.pfn in self._resident:
            raise PageStateError(f"page {page.pfn} is already resident")
        if self.free_bytes < PAGE_SIZE:
            raise MemoryPressureError(
                f"DRAM full ({fmt_bytes(self._used_bytes)} of "
                f"{fmt_bytes(self.capacity_bytes)}); reclaim before adding"
            )
        self._resident[page.pfn] = page
        page.location = PageLocation.DRAM
        self._used_bytes += PAGE_SIZE
        if self._used_bytes > self.peak_used_bytes:
            self.peak_used_bytes = self._used_bytes
        # Listener loop inlined: this and remove_page are the two
        # per-page occupancy paths left on the fault storm.
        for listener in self._listeners:
            listener(PAGE_SIZE)

    def add_pages(self, pages: list[Page]) -> None:
        """Make a batch of pages resident; the caller ensured room.

        Identical outcome to calling :meth:`add_page` per page when the
        whole batch fits (the duplicate check runs per page; the peak
        watermark is monotone, so one update at the end records the same
        high-water mark; listeners see one summed delta, and deltas are
        additive by contract).  If the batch does not fit, the per-page
        path runs so the failure surfaces at exactly the page it would
        have.
        """
        if self.free_bytes < len(pages) * PAGE_SIZE:
            for page in pages:
                self.add_page(page)
            return
        resident = self._resident
        inserted = 0
        try:
            for page in pages:
                pfn = page.pfn
                if pfn in resident:
                    raise PageStateError(f"page {pfn} is already resident")
                resident[pfn] = page
                page.location = PageLocation.DRAM
                inserted += 1
        finally:
            # Account exactly for what was inserted even when a
            # duplicate aborts the batch midway — the per-page reference
            # leaves the earlier pages resident, so the counter (and the
            # subscribers) must see their delta or it drifts from
            # audit_used_bytes() forever.
            if inserted:
                delta = inserted * PAGE_SIZE
                self._used_bytes += delta
                if self._used_bytes > self.peak_used_bytes:
                    self.peak_used_bytes = self._used_bytes
                if self._listeners:
                    self._notify(delta)

    def remove_page(self, page: Page) -> None:
        """Evict ``page`` from DRAM (caller decides where it goes)."""
        if self._resident.pop(page.pfn, None) is None:
            raise PageStateError(f"page {page.pfn} is not resident")
        self._used_bytes -= PAGE_SIZE
        for listener in self._listeners:
            listener(-PAGE_SIZE)

    def remove_pages(self, pages: list[Page]) -> None:
        """Evict a batch of pages; one summed listener delta.

        Identical outcome to calling :meth:`remove_page` per page: the
        non-resident check runs per page and surfaces at exactly the
        page it would have (earlier pages stay removed, and the counter
        accounts for them, matching the per-page reference), and deltas
        are additive by contract so subscribers see the same total.
        """
        resident = self._resident
        removed = 0
        try:
            for page in pages:
                if resident.pop(page.pfn, None) is None:
                    raise PageStateError(f"page {page.pfn} is not resident")
                removed += 1
        finally:
            if removed:
                delta = removed * PAGE_SIZE
                self._used_bytes -= delta
                if self._listeners:
                    self._notify(-delta)

    def is_resident(self, page: Page) -> bool:
        """Whether ``page`` currently occupies DRAM."""
        return page.pfn in self._resident

    def __repr__(self) -> str:
        return (
            f"MainMemory(used={fmt_bytes(self._used_bytes)}, "
            f"capacity={fmt_bytes(self.capacity_bytes)})"
        )
