"""Capacity-tracked main memory.

:class:`MainMemory` tracks which pages are resident and enforces the
capacity the platform provides for anonymous data.  It deliberately does
*not* decide what to evict — that is the swap scheme's job — it only
refuses to go over capacity, forcing callers to reclaim first (the
simulator's analogue of direct reclaim).
"""

from __future__ import annotations

from ..errors import MemoryPressureError, PageStateError
from ..units import PAGE_SIZE, fmt_bytes
from .page import Page, PageLocation


class MainMemory:
    """DRAM capacity model for anonymous pages.

    Args:
        capacity_bytes: Bytes of DRAM available to anonymous data (the
            platform's total minus OS/file-cache reservations, scaled).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise MemoryPressureError(
                f"DRAM capacity {capacity_bytes} is smaller than one page"
            )
        self.capacity_bytes = capacity_bytes
        self._resident: dict[int, Page] = {}
        #: High-water mark of bytes resident (for reports).
        self.peak_used_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied by resident pages."""
        return len(self._resident) * PAGE_SIZE

    @property
    def free_bytes(self) -> int:
        """Bytes available before hitting capacity."""
        return self.capacity_bytes - self.used_bytes

    @property
    def resident_count(self) -> int:
        """Number of resident pages."""
        return len(self._resident)

    def has_room_for(self, n_pages: int) -> bool:
        """Whether ``n_pages`` more pages fit without reclaim."""
        return self.free_bytes >= n_pages * PAGE_SIZE

    def add_page(self, page: Page) -> None:
        """Make ``page`` resident; the caller must have ensured room."""
        if page.pfn in self._resident:
            raise PageStateError(f"page {page.pfn} is already resident")
        if self.free_bytes < PAGE_SIZE:
            raise MemoryPressureError(
                f"DRAM full ({fmt_bytes(self.used_bytes)} of "
                f"{fmt_bytes(self.capacity_bytes)}); reclaim before adding"
            )
        self._resident[page.pfn] = page
        page.location = PageLocation.DRAM
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)

    def add_pages(self, pages: list[Page]) -> None:
        """Make a batch of pages resident; the caller ensured room.

        Identical outcome to calling :meth:`add_page` per page when the
        whole batch fits (the duplicate check runs per page; the peak
        watermark is monotone, so one update at the end records the same
        high-water mark).  If the batch does not fit, the per-page path
        runs so the failure surfaces at exactly the page it would have.
        """
        if self.free_bytes < len(pages) * PAGE_SIZE:
            for page in pages:
                self.add_page(page)
            return
        resident = self._resident
        for page in pages:
            pfn = page.pfn
            if pfn in resident:
                raise PageStateError(f"page {pfn} is already resident")
            resident[pfn] = page
            page.location = PageLocation.DRAM
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)

    def remove_page(self, page: Page) -> None:
        """Evict ``page`` from DRAM (caller decides where it goes)."""
        if self._resident.pop(page.pfn, None) is None:
            raise PageStateError(f"page {page.pfn} is not resident")

    def is_resident(self, page: Page) -> bool:
        """Whether ``page`` currently occupies DRAM."""
        return page.pfn in self._resident

    def __repr__(self) -> str:
        return (
            f"MainMemory(used={fmt_bytes(self.used_bytes)}, "
            f"capacity={fmt_bytes(self.capacity_bytes)})"
        )
