"""Columnar page-metadata core: struct-of-arrays organizers.

The object-model organizers (:mod:`repro.mem.organizer`) spend the warm
wall on per-page Python work — OrderedDict node churn on every touch,
dict probes per membership classification, and whole-list scans at
relaunch boundaries.  This module re-implements both organizers over a
*columnar* page table, the same playbook that made the LZO index fast
(PR 1-2): per-page metadata lives in flat numpy columns indexed by a
dense integer *handle*, the LRU lists become index-linked views over
those columns (:class:`repro.mem.lru.IndexLruList`), and run-shaped
operations (``on_access_run``, ``add_page_run``, ``end_relaunch``)
become vectorized kernels over handle arrays.

Equivalence contract
--------------------

The columnar organizers are drop-in subclasses of the object ones:
every list operation leaves the *same final list order* and bumps
``list_operations`` by the *same count* as the object implementation,
so golden numbers, heavy-scenario fingerprints, and the quick-suite
``--json`` document are bit-identical under either core
(``tests/test_columnar_core.py`` pins this differentially).  Two
deliberate, observable-only-off-the-numbers deltas:

- Access stamps (``last_access_ns`` / ``access_count``) are written to
  the table columns, not the :class:`Page` attributes — the columns
  are authoritative in the columnar core.  Nothing outside the
  organizer reads the per-page attributes on scheme-owned pages.
- Error paths may raise *before* partially mutating state where the
  object core raises mid-loop (both still raise
  :class:`PageStateError` on the same inputs).

The relaunch *touched-page journal* replaces the object core's
whole-list ``end_relaunch`` scan: every access during a relaunch
appends its handles to an order-preserving journal, and the hotness
update promotes exactly ``journal ∩ warm`` then ``journal ∩ cold``,
each sorted by live position — which *is* that list's LRU order, so
the promotion order (and hence the final hot-list order) matches the
object core's full scan.  Stale-hot demotion uses the per-handle
relaunch generation stamp instead of the set: journaled handles all
carry the current generation, demoted ones never do, so the two
selections are disjoint exactly as in the object core.

Core selection
--------------

``REPRO_CORE`` picks the implementation: ``object`` forces the
reference organizers, ``columnar`` forces this module, and ``auto``
(the default) uses columnar when numpy imports and falls back to the
object core with a one-line warning otherwise — the same
soft-ImportError pattern as :mod:`repro.compression.lzo`, so the
pure-python tree still imports and runs everywhere.
"""

from __future__ import annotations

import os
import sys

from ..errors import ConfigError, InvariantViolationError, PageStateError
from .lru import NO_LIST, IndexLruList
from .organizer import ActiveInactiveOrganizer, HotWarmColdOrganizer
from .page import Page

try:  # Soft dependency, mirroring compression/lzo.py.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch tests
    _np = None

#: Environment variable selecting the page-metadata core.
CORE_ENV = "REPRO_CORE"

#: Valid ``REPRO_CORE`` values.
_CORE_MODES = ("auto", "object", "columnar")

#: List ids of the tri-list organizer (== ``HOTNESS_TO_ID`` codes).
HOT_ID, WARM_ID, COLD_ID = 0, 1, 2
#: List ids of the two-list organizer.
ACTIVE_ID, INACTIVE_ID = 0, 1

#: Residency-probe block size for :meth:`ColumnarOrganizerMixin.leading_resident`.
_PROBE_BLOCK = 256

#: Run length below which the access kernels fall back to a per-page
#: loop over the columns — the vectorized path's fixed setup cost
#: (~10 us of temp arrays) loses to the loop on short runs.
_SMALL_KERNEL = 12

_warned_no_numpy = False


def numpy_available() -> bool:
    """Whether the columnar core's numpy dependency is importable."""
    return _np is not None


def resolve_core() -> str:
    """Resolve ``REPRO_CORE`` to ``"object"`` or ``"columnar"``.

    Read per call (not cached) so tests and tools can flip the
    environment between system builds.  ``auto``/``columnar`` without
    numpy degrade to the object core with a one-line warning (once per
    process), keeping the pure-python tree runnable.
    """
    global _warned_no_numpy
    mode = os.environ.get(CORE_ENV, "auto").strip().lower() or "auto"
    if mode not in _CORE_MODES:
        raise ConfigError(
            f"{CORE_ENV}={mode!r} invalid; expected one of {_CORE_MODES}"
        )
    if mode == "object":
        return "object"
    if _np is None:
        if not _warned_no_numpy:
            print(
                "repro: numpy unavailable; using the object page-metadata "
                "core (REPRO_CORE=columnar needs numpy)",
                file=sys.stderr,
            )
            _warned_no_numpy = True
        return "object"
    return "columnar"


def make_tri_list_organizer(uid: int, hot_seed_limit: int):
    """Tri-list (hot/warm/cold) organizer under the resolved core."""
    if resolve_core() == "columnar":
        return ColumnarHotWarmColdOrganizer(uid, hot_seed_limit)
    return HotWarmColdOrganizer(uid, hot_seed_limit)


def make_two_list_organizer(uid: int, refill_batch: int = 32):
    """Two-list (active/inactive) organizer under the resolved core."""
    if resolve_core() == "columnar":
        return ColumnarActiveInactiveOrganizer(uid, refill_batch)
    return ActiveInactiveOrganizer(uid, refill_batch)


class HandleTable:
    """Dense pfn -> handle map plus the flat per-page metadata columns.

    One table per organizer (pages never change apps, and per-app
    tables keep handles dense over exactly the pages the organizer can
    ever see).  Handles are append-only: a page keeps its handle for
    the organizer's lifetime, across eviction and refault, so handle
    arrays cached on :class:`repro.metrics.AccessRun` replays stay
    valid.  Columns (all parallel, indexed by handle):

    - ``list_id``: which LRU list the page is on (``NO_LIST`` when
      evicted/absent) — doubling as the organizer-residency bit the
      batch replay probes.
    - ``pos``: slot in that list's append-order array (see
      :class:`repro.mem.lru.IndexLruList`).
    - ``stamp``: relaunch generation of the last access (the
      ``end_relaunch`` demotion predicate).
    - ``last_access_ns`` / ``access_count``: authoritative access
      stamps (the :class:`Page` attributes go stale under this core).
    """

    __slots__ = (
        "index", "pages", "list_id", "pos", "stamp",
        "last_access_ns", "access_count",
    )

    def __init__(self, capacity: int = 64) -> None:
        self.index: dict[int, int] = {}
        self.pages: list[Page] = []
        capacity = max(16, capacity)
        self.list_id = _np.full(capacity, NO_LIST, dtype=_np.int8)
        self.pos = _np.zeros(capacity, dtype=_np.int64)
        self.stamp = _np.zeros(capacity, dtype=_np.int64)
        self.last_access_ns = _np.zeros(capacity, dtype=_np.int64)
        self.access_count = _np.zeros(capacity, dtype=_np.int64)

    def __len__(self) -> int:
        return len(self.pages)

    def _grow(self, need: int) -> None:
        capacity = self.list_id.shape[0]
        while capacity < need:
            capacity *= 2

        def regrown(column, fill):
            out = _np.full(capacity, fill, dtype=column.dtype)
            out[: column.shape[0]] = column
            return out

        self.list_id = regrown(self.list_id, NO_LIST)
        self.pos = regrown(self.pos, 0)
        self.stamp = regrown(self.stamp, 0)
        self.last_access_ns = regrown(self.last_access_ns, 0)
        self.access_count = regrown(self.access_count, 0)

    def ensure(self, page: Page) -> int:
        """Handle of ``page``, allocating one on first sight."""
        h = self.index.get(page.pfn)
        if h is None:
            h = len(self.pages)
            if h >= self.list_id.shape[0]:
                self._grow(h + 1)
            self.index[page.pfn] = h
            self.pages.append(page)
        return h

    def handles_for(self, pages) -> "_np.ndarray":
        """Handle array for a sized page sequence (allocating as needed)."""
        index = self.index
        try:
            return _np.fromiter(
                (index[page.pfn] for page in pages),
                dtype=_np.int64,
                count=len(pages),
            )
        except KeyError:
            # Allocating pass, with ensure() inlined: probe the index
            # once per page, defer the column growth to a single
            # _grow() after the batch (nothing touches the columns
            # until the handles are returned).
            get = index.get
            pages_list = self.pages
            page_append = pages_list.append
            nxt = len(pages_list)
            handles: list[int] = []
            append = handles.append
            for page in pages:
                h = get(page.pfn)
                if h is None:
                    h = nxt
                    index[page.pfn] = h
                    page_append(page)
                    nxt += 1
                append(h)
            if nxt > self.list_id.shape[0]:
                self._grow(nxt)
            return _np.array(handles, dtype=_np.int64)

    def stamp_accesses(self, handles, now_ns: int) -> None:
        """Bulk access-stamp update (duplicates each count once)."""
        self.last_access_ns[handles] = now_ns
        # Unbuffered accumulate: a plain fancy `+= 1` collapses duplicate
        # handles within a run to a single increment, and a bincount
        # would cost O(table) per run instead of O(run).
        _np.add.at(self.access_count, handles, 1)


class ColumnarOrganizerMixin:
    """Marker + shared machinery of the columnar organizers.

    Importable (and isinstance-checkable) without numpy — only concrete
    organizer construction requires it.  The scheme's batched replay
    dispatches on this marker to the handle-array kernels.
    """

    # Concrete subclasses create these in __init__.
    _table: HandleTable

    def _init_columnar(self) -> None:
        self._table = HandleTable()
        #: Vectorized-touch kernel invocations / pages (profiling).
        self.kernel_batches = 0
        self.kernel_pages = 0
        #: Journal-bounded relaunch promotion scans / candidate handles.
        self.journal_scans = 0
        self.journal_candidates = 0

    def _views(self):
        raise NotImplementedError

    def prime_pages(self, pages) -> None:
        """Pre-allocate handles for an app's full page set.

        Called once at launch so hot-path kernels never take the
        allocating branch of :meth:`HandleTable.handles_for`; order is
        the deterministic trace order.
        """
        ensure = self._table.ensure
        for page in pages:
            ensure(page)

    def run_handles(self, pages) -> "_np.ndarray":
        """Handle array for a replay run, memoized on ``AccessRun``s.

        An :class:`repro.metrics.AccessRun` is memoized per app per
        system and this organizer is that system's only organizer for
        the app, so caching the handle array on the run is safe —
        handles are stable for the organizer's lifetime.
        """
        handles = getattr(pages, "columnar_handles", None)
        if handles is not None:
            return handles
        cache = getattr(pages, "handle_cache", None)
        if cache is not None:
            # Cross-system share: another system built from the same
            # trace already computed this run's handle array, and
            # first-touch order (launch creation order) makes handle
            # assignment a pure function of the trace — so the numbers
            # agree.  Verify the endpoints against this table before
            # trusting the entry: a run from a different table lineage
            # (hand-built organizer, disagreeing pfn set) falls through
            # to a fresh computation instead of silently misindexing.
            host, key = cache
            shared = host.get(key)
            if shared is not None and len(pages):
                index_get = self._table.index.get
                if (
                    index_get(pages[0].pfn) == shared.item(0)
                    and index_get(pages[-1].pfn) == shared.item(-1)
                ):
                    pages.columnar_handles = shared
                    return shared
        handles = self._table.handles_for(pages)
        try:
            pages.columnar_handles = handles
        except AttributeError:  # plain list: nowhere to memoize
            pass
        if cache is not None:
            cache[0][cache[1]] = handles
        return handles

    def leading_resident(self, handles, start: int) -> int:
        """Length of the organizer-resident prefix of ``handles[start:]``.

        Organizer membership (``list_id != NO_LIST``) is equivalent to
        DRAM residency at batch-replay probe points — the
        ``_audit_lru_membership`` invariant — so this is the columnar
        replacement for per-page ``pfn in dram._resident`` probes.
        Blockwise so a fault-heavy run costs O(n) total, not O(n²).
        """
        list_id = self._table.list_id
        n = handles.shape[0]
        i = start
        k = 0
        if n - i <= 24:
            # Short remainder: scalar probes undercut the fancy-index
            # block's fixed temp-array cost.
            list_item = list_id.item
            handle_item = handles.item
            while i < n:
                if list_item(handle_item(i)) == NO_LIST:
                    return k
                k += 1
                i += 1
            return k
        while i < n:
            j = min(i + _PROBE_BLOCK, n)
            dead = _np.flatnonzero(list_id[handles[i:j]] == NO_LIST)
            if dead.size:
                return k + int(dead[0])
            k += j - i
            i = j
        return k

    def remove_page(self, page: Page) -> None:
        """Detach ``page`` from whichever list holds it (one lookup).

        The object core's :meth:`_list_of` probes every list; here the
        ``list_id`` column names the list directly, so removal is one
        index lookup plus one column write.
        """
        table = self._table
        h = table.index.get(page.pfn)
        lid = -1 if h is None else int(table.list_id[h])
        if lid < 0:
            raise PageStateError(
                f"page {page.pfn} not resident in app {self.uid}"
            )
        table.list_id[h] = NO_LIST
        self._views()[lid]._count -= 1
        self.list_operations += 1

    def columnar_stats(self) -> dict[str, int]:
        """Profiling counters (``benchmarks/profile_scenario.py``)."""
        return {
            "handles": len(self._table),
            "kernel_batches": self.kernel_batches,
            "kernel_pages": self.kernel_pages,
            "journal_scans": self.journal_scans,
            "journal_candidates": self.journal_candidates,
        }

    # -- auditing ------------------------------------------------------------

    def audit_columnar_state(self) -> None:
        """Cross-check columns against list counts (``REPRO_AUDIT=1``).

        Raises :class:`InvariantViolationError` when the struct-of-
        arrays bookkeeping drifts: handle-table bijectivity, per-list
        cardinality (``list_id`` census vs the view's count), and the
        order/pos linkage (every on-list handle's recorded position
        must point back at it inside the view's live window).
        """
        table = self._table
        n = len(table.pages)
        if len(table.index) != n:
            raise InvariantViolationError(
                f"app {self.uid} columnar handle table: {len(table.index)} "
                f"pfns indexed vs {n} pages stored"
            )
        for pfn, h in table.index.items():
            if table.pages[h].pfn != pfn:
                raise InvariantViolationError(
                    f"app {self.uid} columnar handle table: pfn {pfn} maps "
                    f"to handle {h} holding pfn {table.pages[h].pfn}"
                )
        census_total = 0
        for view in self._views():
            members = _np.flatnonzero(table.list_id[:n] == view._lid)
            if members.size != len(view):
                raise InvariantViolationError(
                    f"list {view.name!r}: column census {members.size} "
                    f"pages vs tracked count {len(view)}"
                )
            census_total += int(members.size)
            if not members.size:
                continue
            positions = table.pos[members]
            if ((positions < view._head) | (positions >= view._tail)).any():
                raise InvariantViolationError(
                    f"list {view.name!r}: a member's pos lies outside the "
                    f"live window [{view._head}, {view._tail})"
                )
            if (view._order[positions] != members).any():
                raise InvariantViolationError(
                    f"list {view.name!r}: order/pos linkage broken (a "
                    f"member's recorded slot holds a different handle)"
                )
        on_lists = int((table.list_id[:n] != NO_LIST).sum())
        if on_lists != census_total:
            raise InvariantViolationError(
                f"app {self.uid}: {on_lists} handles carry a list id but "
                f"only {census_total} are accounted to a known list"
            )


class ColumnarHotWarmColdOrganizer(ColumnarOrganizerMixin, HotWarmColdOrganizer):
    """Columnar tri-list organizer (HotnessOrg under the columnar core).

    Inherits every routing decision — launch seeding, relaunch
    admission, eviction order — from :class:`HotWarmColdOrganizer`; the
    inherited methods operate unchanged through the
    :class:`IndexLruList` views.  Overridden here are only the
    run-shaped hot paths (access kernels) and the relaunch bracketing,
    which swaps the accessed-pfn set for the generation stamp +
    touched-page journal.
    """

    def __init__(self, uid: int, hot_seed_limit: int) -> None:
        super().__init__(uid, hot_seed_limit)
        self._init_columnar()
        self.hot = IndexLruList(self._table, HOT_ID, f"app{uid}.hot")
        self.warm = IndexLruList(self._table, WARM_ID, f"app{uid}.warm")
        self.cold = IndexLruList(self._table, COLD_ID, f"app{uid}.cold")
        #: Relaunch generation; `stamp[h] == _generation` marks handles
        #: touched during the currently open relaunch.
        self._generation = 0
        #: Order-preserving journal of handles touched since
        #: begin_relaunch (ints and arrays, in touch order).
        self._journal: list = []

    def _views(self):
        return (self.hot, self.warm, self.cold)

    # -- access kernels ------------------------------------------------------

    def on_access(self, page: Page, now_ns: int) -> None:
        table = self._table
        h = table.index.get(page.pfn)
        lid = NO_LIST if h is None else table.list_id.item(h)
        if lid == NO_LIST:
            raise PageStateError(
                f"page {page.pfn} accessed but not resident in app {self.uid}"
            )
        table.last_access_ns[h] = now_ns
        table.access_count[h] += 1
        if self._relaunch_active:
            table.stamp[h] = self._generation
            self._journal.append(h)
        if lid == COLD_ID:
            table.list_id[h] = WARM_ID
            self.cold._count -= 1
            self.warm._count += 1
            self.warm._append(h)
            self.list_operations += 2
        elif lid == WARM_ID:
            self.warm._append(h)
            self.list_operations += 1
        else:
            self.hot._append(h)
            self.list_operations += 1

    def on_access_run(self, pages, now_ns: int) -> None:
        self._on_access_handles(self.run_handles(pages), now_ns)

    def _on_access_handles(self, handles, now_ns: int) -> None:
        """Vectorized access replay over a resident handle run.

        Equivalent to the object core's loop: per-occurrence op counts
        (+1 touch, +2 cold->warm promotion at *first* occurrence, +1
        for later occurrences of the same — by then warm — handle) and
        final list orders match exactly.  Hot touches commute past
        warm/cold work (accesses never enter or leave the hot list), so
        warm and hot appends land in two independent bulk runs.
        """
        n = int(handles.shape[0])
        if not n:
            return
        table = self._table
        self.kernel_batches += 1
        self.kernel_pages += n
        if n <= _SMALL_KERNEL:
            # Short runs replay through the object core's per-page
            # logic on the columns: below ~a dozen pages the fancy-
            # indexed kernel's fixed temp-array cost loses to the loop.
            list_id = table.list_id
            list_item = list_id.item
            last = table.last_access_ns
            counts = table.access_count
            stamps = table.stamp
            relaunch = self._relaunch_active
            gen = self._generation
            journal = self._journal
            hot_append = self.hot._append
            warm = self.warm
            warm_append = warm._append
            cold = self.cold
            ops = 0
            for h in handles.tolist():
                last[h] = now_ns
                counts[h] += 1
                if relaunch:
                    stamps[h] = gen
                    journal.append(h)
                lid = list_item(h)
                if lid == HOT_ID:
                    hot_append(h)
                    ops += 1
                elif lid == WARM_ID:
                    warm_append(h)
                    ops += 1
                elif lid == COLD_ID:
                    list_id[h] = WARM_ID
                    cold._count -= 1
                    warm._count += 1
                    warm_append(h)
                    ops += 2
                else:
                    raise PageStateError(
                        f"page {table.pages[h].pfn} accessed but not "
                        f"resident in app {self.uid}"
                    )
            self.list_operations += ops
            return
        table.stamp_accesses(handles, now_ns)
        if self._relaunch_active:
            table.stamp[handles] = self._generation
            self._journal.append(handles)
        lids = table.list_id[handles]
        hot_mask = lids == HOT_ID
        if hot_mask.all():
            self.hot._append_run(handles)
            self.list_operations += n
            return
        if (lids == NO_LIST).any():
            bad = handles[int(_np.argmax(lids == NO_LIST))]
            raise PageStateError(
                f"page {table.pages[int(bad)].pfn} accessed but not "
                f"resident in app {self.uid}"
            )
        non_hot = handles[~hot_mask]
        cold_handles = handles[lids == COLD_ID]
        # set() over a small pylist beats np.unique's sort/hash setup on
        # run-sized arrays by ~4x (only the cardinality is needed).
        promoted = len(set(cold_handles.tolist())) if cold_handles.size else 0
        table.list_id[non_hot] = WARM_ID
        self.warm._append_run(non_hot)
        self.warm._count += promoted
        self.cold._count -= promoted
        hot_handles = handles[hot_mask]
        if hot_handles.size:
            self.hot._append_run(hot_handles)
        self.list_operations += int(non_hot.size) + promoted + int(hot_handles.size)

    # -- relaunch bracketing -------------------------------------------------

    def begin_relaunch(self) -> None:
        self._relaunch_active = True
        self._relaunch_accessed = set()  # unused; kept for attribute shape
        self._generation += 1
        self._journal = []

    def end_relaunch(self) -> None:
        """Hotness update, journal-bounded.

        Demotion: live hot handles whose generation stamp is stale, in
        hot-LRU order (the object core's first loop).  Promotion: the
        journal's unique handles still on warm then cold, each batch
        sorted by live position — ascending position within one list
        *is* that list's LRU order, so this equals the object core's
        full warm+cold scan while only touching the accessed set.
        Journaled handles all carry the current generation, so the
        demotion and promotion sets are disjoint by construction.
        """
        if not self._relaunch_active:
            raise PageStateError(f"app {self.uid}: end_relaunch without begin")
        self._relaunch_active = False
        table = self._table
        ops = 0
        hot_live = self.hot._live_handles()
        if hot_live.size:
            stale = hot_live[table.stamp[hot_live] != self._generation]
            demoted = int(stale.size)
            if demoted:
                table.list_id[stale] = WARM_ID
                self.warm._append_run(stale)
                self.hot._count -= demoted
                self.warm._count += demoted
                ops += 2 * demoted
        if self._journal:
            # Dedup via a set: candidate order is irrelevant (each
            # per-list batch is re-sorted by live position below), so
            # np.unique's sort would be wasted work.
            touched: set[int] = set()
            for part in self._journal:
                if isinstance(part, int):
                    touched.add(part)
                else:
                    touched.update(part.tolist())
            candidates = _np.fromiter(
                touched, dtype=_np.int64, count=len(touched)
            )
            self.journal_scans += 1
            self.journal_candidates += int(candidates.size)
            lids = table.list_id[candidates]
            for want, source in ((WARM_ID, self.warm), (COLD_ID, self.cold)):
                batch = candidates[lids == want]
                if not batch.size:
                    continue
                batch = batch[_np.argsort(table.pos[batch])]
                table.list_id[batch] = HOT_ID
                self.hot._append_run(batch)
                moved = int(batch.size)
                source._count -= moved
                self.hot._count += moved
                ops += 2 * moved
        self._journal = []
        self._relaunch_accessed = set()
        self.list_operations += ops


class ColumnarActiveInactiveOrganizer(ColumnarOrganizerMixin, ActiveInactiveOrganizer):
    """Columnar two-list organizer (stock-kernel LRU, columnar core).

    Admission, refill, and reclaim are inherited and run through the
    views; only the access paths are vectorized here.
    """

    def __init__(self, uid: int, refill_batch: int = 32) -> None:
        super().__init__(uid, refill_batch)
        self._init_columnar()
        self.active = IndexLruList(self._table, ACTIVE_ID, f"app{uid}.active")
        self.inactive = IndexLruList(self._table, INACTIVE_ID, f"app{uid}.inactive")

    def _views(self):
        return (self.active, self.inactive)

    def on_access(self, page: Page, now_ns: int) -> None:
        table = self._table
        h = table.index.get(page.pfn)
        lid = NO_LIST if h is None else table.list_id.item(h)
        if lid == NO_LIST:
            raise PageStateError(
                f"page {page.pfn} accessed but not resident in app {self.uid}"
            )
        table.last_access_ns[h] = now_ns
        table.access_count[h] += 1
        if lid == INACTIVE_ID:
            table.list_id[h] = ACTIVE_ID
            self.inactive._count -= 1
            self.active._count += 1
            self.active._append(h)
            self.list_operations += 2
        else:
            self.active._append(h)
            self.list_operations += 1

    def on_access_run(self, pages, now_ns: int) -> None:
        self._on_access_handles(self.run_handles(pages), now_ns)

    def _on_access_handles(self, handles, now_ns: int) -> None:
        """Vectorized access replay: every occurrence lands on the
        active list in run order (touch and promotion both move to the
        active MRU end, so one bulk append covers both); ops count one
        per occurrence plus one per unique inactive->active promotion,
        exactly the object core's loop."""
        n = int(handles.shape[0])
        if not n:
            return
        table = self._table
        self.kernel_batches += 1
        self.kernel_pages += n
        if n <= _SMALL_KERNEL:
            list_id = table.list_id
            list_item = list_id.item
            last = table.last_access_ns
            counts = table.access_count
            active = self.active
            active_append = active._append
            inactive = self.inactive
            ops = 0
            for h in handles.tolist():
                last[h] = now_ns
                counts[h] += 1
                lid = list_item(h)
                if lid == ACTIVE_ID:
                    active_append(h)
                    ops += 1
                elif lid == INACTIVE_ID:
                    list_id[h] = ACTIVE_ID
                    inactive._count -= 1
                    active._count += 1
                    active_append(h)
                    ops += 2
                else:
                    raise PageStateError(
                        f"page {table.pages[h].pfn} accessed but not "
                        f"resident in app {self.uid}"
                    )
            self.list_operations += ops
            return
        table.stamp_accesses(handles, now_ns)
        lids = table.list_id[handles]
        if (lids == NO_LIST).any():
            bad = handles[int(_np.argmax(lids == NO_LIST))]
            raise PageStateError(
                f"page {table.pages[int(bad)].pfn} accessed but not "
                f"resident in app {self.uid}"
            )
        inactive_handles = handles[lids == INACTIVE_ID]
        promoted = (
            len(set(inactive_handles.tolist())) if inactive_handles.size else 0
        )
        table.list_id[handles] = ACTIVE_ID
        self.active._append_run(handles)
        self.active._count += promoted
        self.inactive._count -= promoted
        self.list_operations += n + promoted
