"""Figure 10: application relaunch latency — ZRAM vs Ariadne configs
vs the DRAM lower bound.

Paper numbers: every Ariadne configuration cuts relaunch latency by
~50% versus ZRAM and lands within ~10% of DRAM; EHL vs AL differ only
marginally for the same size configuration.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .common import (
    FIGURE_APPS,
    build,
    measured_relaunch,
    paper_scheme_matrix,
    render_table,
    scenario_for,
    workload_trace,
)


@dataclass
class Fig10Result:
    """Relaunch latency (ms) per app per scheme column."""

    columns: list[str]
    latency_ms: dict[str, dict[str, float]]  # column -> app -> ms

    def _mean(self, column: str) -> float:
        return statistics.mean(self.latency_ms[column].values())

    @property
    def ariadne_reduction_vs_zram(self) -> float:
        """Average latency reduction of Ariadne columns vs ZRAM (paper ~0.5)."""
        zram = self._mean("ZRAM")
        ariadne_means = [
            self._mean(col) for col in self.columns if col.startswith("Ariadne")
        ]
        return 1.0 - statistics.mean(ariadne_means) / zram

    @property
    def ariadne_over_dram(self) -> float:
        """Average Ariadne latency relative to DRAM (paper: within 1.10x)."""
        dram = self._mean("DRAM")
        ariadne_means = [
            self._mean(col) for col in self.columns if col.startswith("Ariadne")
        ]
        return statistics.mean(ariadne_means) / dram

    def render(self) -> str:
        apps = list(self.latency_ms[self.columns[0]])
        rows = [
            [column] + [f"{self.latency_ms[column][app]:.0f}" for app in apps]
            for column in self.columns
        ]
        table = render_table(
            "Figure 10: relaunch latency (ms)", ["Scheme"] + apps, rows
        )
        return (
            f"{table}\n"
            f"Ariadne reduction vs ZRAM = "
            f"{self.ariadne_reduction_vs_zram:.0%} (paper: ~50%); "
            f"Ariadne/DRAM = {self.ariadne_over_dram:.2f}x (paper: <=1.10x)"
        )


def run(quick: bool = False) -> Fig10Result:
    """Measure relaunch latency for the paper's scheme matrix.

    Mirrors the paper's per-trace methodology: each target app gets a
    fresh system (the paper collects one trace per target, launching the
    other apps for pressure, then relaunching the target).
    """
    apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
    trace = workload_trace(n_apps=5)
    columns: list[str] = []
    latency: dict[str, dict[str, float]] = {}
    for scheme_name, config in paper_scheme_matrix(quick):
        scenario = scenario_for(scheme_name, config)
        column = None
        for target in apps:
            system = build(scheme_name, trace, config)
            system.launch_all()
            column = system.scheme.name
            pressure = [a for a in apps if a != target][:2]
            result = measured_relaunch(system, target, 1, scenario, pressure)
            latency.setdefault(column, {})[target] = result.latency_ms
        if column is not None:
            columns.append(column)
    return Fig10Result(columns=columns, latency_ms=latency)
