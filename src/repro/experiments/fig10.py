"""Figure 10: application relaunch latency — ZRAM vs Ariadne configs
vs the DRAM lower bound.

Paper numbers: every Ariadne configuration cuts relaunch latency by
~50% versus ZRAM and lands within ~10% of DRAM; EHL vs AL differ only
marginally for the same size configuration.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .common import (
    FIGURE_APPS,
    build,
    measured_relaunch,
    render_table,
    scenario_for,
    scheme_matrix_cell,
    scheme_matrix_cells,
    workload_trace,
)
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig10Result(ExperimentResult):
    """Relaunch latency (ms) per app per scheme column."""

    columns: list[str]
    latency_ms: dict[str, dict[str, float]]  # column -> app -> ms

    def _mean(self, column: str) -> float:
        return statistics.mean(self.latency_ms[column].values())

    @property
    def ariadne_reduction_vs_zram(self) -> float:
        """Average latency reduction of Ariadne columns vs ZRAM (paper ~0.5)."""
        zram = self._mean("ZRAM")
        ariadne_means = [
            self._mean(col) for col in self.columns if col.startswith("Ariadne")
        ]
        return 1.0 - statistics.mean(ariadne_means) / zram

    @property
    def ariadne_over_dram(self) -> float:
        """Average Ariadne latency relative to DRAM (paper: within 1.10x)."""
        dram = self._mean("DRAM")
        ariadne_means = [
            self._mean(col) for col in self.columns if col.startswith("Ariadne")
        ]
        return statistics.mean(ariadne_means) / dram

    def render(self) -> str:
        apps = list(self.latency_ms[self.columns[0]])
        rows = [
            [column] + [f"{self.latency_ms[column][app]:.0f}" for app in apps]
            for column in self.columns
        ]
        table = render_table(
            "Figure 10: relaunch latency (ms)", ["Scheme"] + apps, rows
        )
        return (
            f"{table}\n"
            f"Ariadne reduction vs ZRAM = "
            f"{self.ariadne_reduction_vs_zram:.0%} (paper: ~50%); "
            f"Ariadne/DRAM = {self.ariadne_over_dram:.2f}x (paper: <=1.10x)"
        )


@register
class Fig10(Experiment):
    """The headline relaunch-latency figure over the full scheme matrix."""

    id = "fig10"
    title = "Relaunch latency: ZRAM vs Ariadne configs vs DRAM"
    anchor = "Figure 10"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable (scheme x config) cell keys."""
        return [key for key, _, _ in scheme_matrix_cells(quick)]

    def run_cell(self, key: str, quick: bool = False) -> dict[str, float]:
        """Measure one scheme column: relaunch latency (ms) per app.

        Each cell builds its own systems from the shared deterministic
        trace, so cells are order-independent and safe to run on
        separate worker processes; the runner merges them with
        :meth:`merge`.
        """
        scheme_name, config = scheme_matrix_cell(key, quick)
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        scenario = scenario_for(scheme_name, config)
        column: dict[str, float] = {}
        for target in apps:
            system = build(scheme_name, trace, config)
            system.launch_all()
            pressure = [a for a in apps if a != target][:2]
            result = measured_relaunch(system, target, 1, scenario, pressure)
            column[target] = result.latency_ms
        return column

    def merge(
        self, cell_results: dict[str, dict[str, float]], quick: bool = False
    ) -> Fig10Result:
        """Assemble cell outputs into the figure, in matrix column order."""
        ordered = self._ordered(cell_results, quick)
        return Fig10Result(columns=list(ordered), latency_ms=ordered)
