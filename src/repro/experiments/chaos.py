"""Chaos sweep: compressed/flash swap under injected faults.

Not a paper figure — a robustness experiment for the reproduction
itself: it sweeps the fault-injection rate (:mod:`repro.faults`) across
a light switching scenario and reports how relaunch latency degrades
and how every injected fault was absorbed (retried to success,
abandoned to a counted cold refault, or caught by the digest check).

Each rate runs two schemes, because they stress complementary paths:
SWAP does raw flash I/O for every swap-out/in (flash command errors,
retry/backoff, drop-on-permanent), while Ariadne compresses into the
zpool (bit-flip corruption caught by the digest check) and only
touches flash through cold writeback.

Two properties the suite pins:

- the rate-0 column is *bit-identical* to a fault-free run — injection
  costs nothing when off;
- at any seeded rate the run is deterministic (same seed, same
  schedule) and the recovery ledger is consistent: every injected
  fault is accounted for and none crashed the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import FaultPlan, install_fault_plan
from ..metrics import FAULT_COUNTERS, recovery_summary
from ..sim.scenario import run_light_scenario
from .common import DEFAULT_SEED, render_table, scenario_build, workload_trace
from .registry import Experiment, ExperimentResult, register

#: Flash-command error rates swept (read and write alike; bit-flips at
#: one tenth — corruption is far rarer than command errors in practice).
FULL_RATES = (0.0, 0.0005, 0.002, 0.01, 0.05)
QUICK_RATES = (0.0, 0.01)

#: Schemes each rate runs (complementary fault surfaces; see module doc).
SCHEMES = ("Ariadne", "SWAP")

#: Scenario length (simulated seconds of app switching) per system.
_DURATION_S = 30.0
_QUICK_DURATION_S = 12.0


def _rate_key(rate: float) -> str:
    return f"rate-{rate:g}"


@dataclass
class ChaosCell:
    """One fault rate's measured outcome (picklable cell payload)."""

    rate: float
    relaunches: dict[str, int]           # scheme -> count
    mean_latency_ms: dict[str, float]    # scheme -> mean
    p95_latency_ms: dict[str, float]     # scheme -> p95
    injected: dict[str, int]             # summed across schemes
    recovery: dict[str, int]             # summed across schemes
    ledger_consistent: bool              # every scheme's ledger held

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())


@dataclass
class ChaosResult(ExperimentResult):
    """Relaunch degradation and recovery accounting per fault rate."""

    cells: list[ChaosCell]

    @property
    def all_consistent(self) -> bool:
        """Every injected fault at every rate was fully accounted for."""
        return all(cell.ledger_consistent for cell in self.cells)

    def render(self) -> str:
        rows = []
        for cell in self.cells:
            recovery = cell.recovery
            rows.append([
                f"{cell.rate:g}",
                *[f"{cell.mean_latency_ms.get(s, 0.0):.1f}" for s in SCHEMES],
                str(cell.injected_total),
                str(recovery.get("fault_transient_recovered", 0)),
                str(recovery.get("fault_chunks_dropped", 0)),
                str(recovery.get("fault_cold_refaults", 0)),
                "yes" if cell.ledger_consistent else "NO",
            ])
        table = render_table(
            "Chaos sweep: relaunch latency (mean ms) vs injected fault rate",
            ["Rate", *SCHEMES, "Injected", "Retried-ok", "Dropped",
             "Refaults", "Ledger"],
            rows,
        )
        verdict = (
            "every injected fault was retried or counted-degraded"
            if self.all_consistent
            else "LEDGER INCONSISTENT: some faults are unaccounted for"
        )
        return f"{table}\n{verdict}"


@register
class Chaos(Experiment):
    """Fault-rate sweep with recovery-ledger verification."""

    id = "chaos"
    title = "Fault-injection chaos sweep (Ariadne + SWAP)"
    anchor = "robustness"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        return [_rate_key(rate) for rate in
                (QUICK_RATES if quick else FULL_RATES)]

    def run_cell(self, key: str, quick: bool = False) -> ChaosCell:
        """Run one fault rate: a short light scenario per scheme.

        Cells are independent by construction — each builds its own
        systems and its own :class:`FaultPlan` per scheme (the decision
        streams are derived from the seed and the rate alone), so the
        sweep is deterministic across job counts and completion orders.
        """
        self._require_cell(key, quick)
        rates = QUICK_RATES if quick else FULL_RATES
        rate = next(r for r in rates if _rate_key(r) == key)
        duration = _QUICK_DURATION_S if quick else _DURATION_S
        relaunches: dict[str, int] = {}
        mean_ms: dict[str, float] = {}
        p95_ms: dict[str, float] = {}
        injected: dict[str, int] = {}
        recovery: dict[str, int] = {name: 0 for name in FAULT_COUNTERS}
        consistent = True
        for scheme in SCHEMES:
            system = scenario_build(scheme, workload_trace(n_apps=5))
            plan = FaultPlan(
                seed=DEFAULT_SEED,
                read_error_rate=rate,
                write_error_rate=rate,
                bitflip_rate=rate / 10.0,
            )
            install_fault_plan(system.ctx, plan)
            result = run_light_scenario(system, duration_s=duration)
            latencies = sorted(r.latency_ms for r in result.relaunches)
            count = len(latencies)
            relaunches[scheme] = count
            mean_ms[scheme] = sum(latencies) / count if count else 0.0
            p95_ms[scheme] = (
                latencies[int(0.95 * (count - 1))] if count else 0.0
            )
            for name, value in plan.injected().items():
                injected[name] = injected.get(name, 0) + value
            for name, value in recovery_summary(result.counters).items():
                recovery[name] += value
            consistent = consistent and bool(
                plan.ledger(system.ctx.counters)["consistent"]
            )
        return ChaosCell(
            rate=rate,
            relaunches=relaunches,
            mean_latency_ms=mean_ms,
            p95_latency_ms=p95_ms,
            injected=injected,
            recovery=recovery,
            ledger_consistent=consistent,
        )

    def merge(
        self, cell_results: dict[str, ChaosCell], quick: bool = False
    ) -> ChaosResult:
        ordered = self._ordered(cell_results, quick)
        return ChaosResult(cells=list(ordered.values()))
