"""Chaos sweep: compressed/flash swap under injected faults.

Not a paper figure — a robustness experiment for the reproduction
itself: it sweeps the fault-injection rate (:mod:`repro.faults`) across
a light switching scenario and reports how relaunch latency degrades
and how every injected fault was absorbed (retried to success,
abandoned to a counted cold refault, or caught by the digest check).

Each rate runs three schemes, because they stress complementary paths:
SWAP does raw flash I/O for every swap-out/in (flash command errors,
retry/backoff, drop-on-permanent), Ariadne compresses into the zpool
(bit-flip corruption caught by the digest check) and only touches
flash through cold writeback, and ZSWAP adds the batched writeback
path (a deferred batch per unrecoverable write, readahead aborts on
speculative reads).

Two properties the suite pins:

- the rate-0 column is *bit-identical* to a fault-free run — injection
  costs nothing when off;
- at any seeded rate the run is deterministic (same seed, same
  schedule) and the recovery ledger is consistent: every injected
  fault is accounted for and none crashed the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import FaultPlan, install_fault_plan
from ..metrics import FAULT_COUNTERS, recovery_summary
from ..sim.scenario import run_light_scenario
from .common import DEFAULT_SEED, render_table, scenario_build, workload_trace
from .registry import Experiment, ExperimentResult, register

#: Flash-command error rates swept (read and write alike; bit-flips at
#: one tenth — corruption is far rarer than command errors in practice).
FULL_RATES = (0.0, 0.0005, 0.002, 0.01, 0.05)
QUICK_RATES = (0.0, 0.01)

#: Schemes each rate runs (complementary fault surfaces; see module doc).
SCHEMES = ("Ariadne", "SWAP", "ZSWAP")

#: Scenario length (simulated seconds of app switching) per system.
_DURATION_S = 30.0
_QUICK_DURATION_S = 12.0


def _rate_key(rate: float) -> str:
    return f"rate-{rate:g}"


@dataclass
class ChaosCell:
    """One fault rate's measured outcome (picklable cell payload)."""

    rate: float
    relaunches: dict[str, int]           # scheme -> count
    mean_latency_ms: dict[str, float]    # scheme -> mean
    p95_latency_ms: dict[str, float]     # scheme -> p95
    injected: dict[str, int]             # summed across schemes
    recovery: dict[str, int]             # summed across schemes
    ledger_consistent: bool              # every scheme's ledger held

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())


@dataclass
class ChaosResult(ExperimentResult):
    """Relaunch degradation and recovery accounting per fault rate."""

    cells: list[ChaosCell]
    #: Full runs only: the faults-while-killing cell (fault injection
    #: active while the low-memory killer is live); ``None`` in quick
    #: runs and omitted from the JSON then, so the quick ``--json``
    #: document is byte-identical to before the cell existed.
    combined: dict | None = None

    @property
    def all_consistent(self) -> bool:
        """Every injected fault at every rate was fully accounted for."""
        cells_ok = all(cell.ledger_consistent for cell in self.cells)
        if self.combined is not None:
            cells_ok = cells_ok and bool(self.combined["consistent"])
        return cells_ok

    def to_json(self) -> dict:
        payload = super().to_json()
        if self.combined is None:
            del payload["combined"]
        return payload

    def render(self) -> str:
        rows = []
        for cell in self.cells:
            recovery = cell.recovery
            rows.append([
                f"{cell.rate:g}",
                *[f"{cell.mean_latency_ms.get(s, 0.0):.1f}" for s in SCHEMES],
                str(cell.injected_total),
                str(recovery.get("fault_transient_recovered", 0)),
                str(recovery.get("fault_chunks_dropped", 0)),
                str(recovery.get("fault_cold_refaults", 0)),
                "yes" if cell.ledger_consistent else "NO",
            ])
        table = render_table(
            "Chaos sweep: relaunch latency (mean ms) vs injected fault rate",
            ["Rate", *SCHEMES, "Injected", "Retried-ok", "Dropped",
             "Refaults", "Ledger"],
            rows,
        )
        verdict = (
            "every injected fault was retried or counted-degraded"
            if self.all_consistent
            else "LEDGER INCONSISTENT: some faults are unaccounted for"
        )
        if self.combined is not None:
            verdict += (
                "\ncombined faults+pressure cell: "
                f"{self.combined['injected_total']} faults injected, "
                f"{sum(self.combined['kills'].values())} kills, ledgers "
                + ("balanced" if self.combined["consistent"] else "BROKEN")
            )
        return f"{table}\n{verdict}"


@register
class Chaos(Experiment):
    """Fault-rate sweep with recovery-ledger verification."""

    id = "chaos"
    title = "Fault-injection chaos sweep (Ariadne + SWAP + ZSWAP)"
    anchor = "robustness"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        keys = [_rate_key(rate) for rate in
                (QUICK_RATES if quick else FULL_RATES)]
        if not quick:
            keys.append("combined")
        return keys

    def run_cell(self, key: str, quick: bool = False) -> ChaosCell:
        """Run one fault rate: a short light scenario per scheme.

        Cells are independent by construction — each builds its own
        systems and its own :class:`FaultPlan` per scheme (the decision
        streams are derived from the seed and the rate alone), so the
        sweep is deterministic across job counts and completion orders.
        """
        self._require_cell(key, quick)
        if key == "combined":
            return self._run_combined()
        rates = QUICK_RATES if quick else FULL_RATES
        rate = next(r for r in rates if _rate_key(r) == key)
        duration = _QUICK_DURATION_S if quick else _DURATION_S
        relaunches: dict[str, int] = {}
        mean_ms: dict[str, float] = {}
        p95_ms: dict[str, float] = {}
        injected: dict[str, int] = {}
        recovery: dict[str, int] = {name: 0 for name in FAULT_COUNTERS}
        consistent = True
        for scheme in SCHEMES:
            system = scenario_build(scheme, workload_trace(n_apps=5))
            plan = FaultPlan(
                seed=DEFAULT_SEED,
                read_error_rate=rate,
                write_error_rate=rate,
                bitflip_rate=rate / 10.0,
            )
            install_fault_plan(system.ctx, plan)
            result = run_light_scenario(system, duration_s=duration)
            latencies = sorted(r.latency_ms for r in result.relaunches)
            count = len(latencies)
            relaunches[scheme] = count
            mean_ms[scheme] = sum(latencies) / count if count else 0.0
            p95_ms[scheme] = (
                latencies[int(0.95 * (count - 1))] if count else 0.0
            )
            for name, value in plan.injected().items():
                injected[name] = injected.get(name, 0) + value
            for name, value in recovery_summary(result.counters).items():
                recovery[name] += value
            consistent = consistent and bool(
                plan.ledger(system.ctx.counters)["consistent"]
            )
        return ChaosCell(
            rate=rate,
            relaunches=relaunches,
            mean_latency_ms=mean_ms,
            p95_latency_ms=p95_ms,
            injected=injected,
            recovery=recovery,
            ledger_consistent=consistent,
        )

    def _run_combined(self) -> dict:
        """Faults while the low-memory killer is live.

        The hardest compound scenario the reproduction models: flash
        command errors and bit-flips injected *while* a tight-DRAM
        hybrid pressure plan escalates reclaim and kills apps.  Both
        accounting systems must keep balancing independently — every
        injected fault retried/dropped/refaulted, every kill traced to
        a decision — or the cell reports inconsistent.
        """
        from ..core import PressureConfig
        from ..lmk import PressurePlan, install_pressure
        from .pressure import _pressure_platform

        platform = _pressure_platform(0.55)
        rate = 0.01
        relaunches: dict[str, int] = {}
        kills: dict[str, int] = {}
        injected_total = 0
        consistent = True
        for scheme in SCHEMES:
            from ..sim import make_system
            from .common import _SHARED_SIZES

            system = make_system(
                scheme, workload_trace(n_apps=5), platform=platform
            )
            system.ctx.sizes = _SHARED_SIZES
            fault_plan = FaultPlan(
                seed=DEFAULT_SEED,
                read_error_rate=rate,
                write_error_rate=rate,
                bitflip_rate=rate / 10.0,
            )
            install_fault_plan(system.ctx, fault_plan)
            pressure_plan = PressurePlan(PressureConfig(
                policy="hybrid",
                some_threshold=0.02,
                full_threshold=0.10,
                kswapd_boost_max=3,
            ))
            install_pressure(system, pressure_plan)
            result = run_light_scenario(system, duration_s=_DURATION_S)
            relaunches[scheme] = len(result.relaunches)
            kills[scheme] = system.ctx.counters.get("lmk_kills")
            injected_total += sum(fault_plan.injected().values())
            consistent = consistent and bool(
                fault_plan.ledger(system.ctx.counters)["consistent"]
            ) and bool(
                pressure_plan.ledger(system.ctx.counters)["consistent"]
            )
        return {
            "fault_rate": rate,
            "relaunches": relaunches,
            "kills": kills,
            "injected_total": injected_total,
            "consistent": consistent,
        }

    def merge(
        self, cell_results: dict, quick: bool = False
    ) -> ChaosResult:
        ordered = self._ordered(cell_results, quick)
        combined = ordered.pop("combined", None)
        return ChaosResult(cells=list(ordered.values()), combined=combined)
