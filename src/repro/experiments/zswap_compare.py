"""ZSWAP comparison column: the full scheme matrix under a tight zpool.

Not a paper figure — the scenario-diversity column ROADMAP direction 2
asks for.  The paper compares Ariadne against ZRAM and flash SWAP; the
production Linux design point for many-idle-app workloads is ZSWAP
(SNIPPETS.md snippet 3), which this experiment adds to the matrix on
equal terms: every scheme runs the same light switching scenario on a
platform whose zpool is deliberately small relative to the workload's
cold data, so the hot/cold migration machinery (zswap's shrinker,
Ariadne's writeback) actually runs instead of idling below threshold.

Reported per scheme, fig2/fig3/table2-style: mean and p95 relaunch
latency, kswapd CPU seconds, flash bytes written, and — for ZSWAP —
the writeback/readahead counter block
(:data:`repro.metrics.ZSWAP_COUNTERS`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import PlatformConfig
from ..metrics import zswap_summary
from ..sim.scenario import run_light_scenario
from ..units import MIB
from .common import experiment_platform, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register

#: Matrix columns, in render order.
SCHEMES = ("DRAM", "ZRAM", "SWAP", "ZSWAP", "Ariadne")

#: zpool budget as a fraction of the workload's anonymous footprint —
#: small enough that compressed cold data overflows it and the
#: writeback tiers engage (the standard 3 GB-scaled pool never fills).
_ZPOOL_FRACTION = 0.04

#: DRAM budget fraction (the standard scenario platform's churn point).
_DRAM_FRACTION = 0.92

_DURATION_S = 25.0
_QUICK_DURATION_S = 10.0


def tight_zpool_platform() -> PlatformConfig:
    """The comparison platform: scenario DRAM churn, overflowing zpool."""
    trace = workload_trace(n_apps=5)
    total = sum(app.total_bytes() for app in trace.apps)
    base = experiment_platform(len(trace.apps))
    return PlatformConfig(
        dram_bytes=int(total * _DRAM_FRACTION),
        zpool_bytes=max(1, int(total * _ZPOOL_FRACTION)),
        swap_bytes=base.swap_bytes,
        scale=base.scale,
        parallelism=base.parallelism,
    )


def build_tight(scheme_name: str, zswap_config=None):
    """System on the tight-zpool platform, sharing the size cache."""
    from ..sim import make_system
    from .common import _SHARED_SIZES

    system = make_system(
        scheme_name,
        workload_trace(n_apps=5),
        platform=tight_zpool_platform(),
        zswap_config=zswap_config,
    )
    system.ctx.sizes = _SHARED_SIZES
    return system


@dataclass
class SchemeCell:
    """One scheme's measured outcome (picklable)."""

    scheme: str
    relaunches: int
    mean_latency_ms: float
    p95_latency_ms: float
    kswapd_cpu_s: float
    flash_written_mib: float
    zswap: dict[str, int]  # ZSWAP_COUNTERS snapshot (zeros elsewhere)


@dataclass
class ZswapCompareResult(ExperimentResult):
    """The scheme matrix under a tight zpool, ZSWAP column included."""

    cells: dict[str, SchemeCell]

    def render(self) -> str:
        rows = []
        for scheme in SCHEMES:
            cell = self.cells[scheme]
            rows.append([
                scheme,
                f"{cell.mean_latency_ms:.1f}",
                f"{cell.p95_latency_ms:.1f}",
                f"{cell.kswapd_cpu_s:.3f}",
                f"{cell.flash_written_mib:.1f}",
            ])
        table = render_table(
            "ZSWAP comparison: light scenario on an overflowing zpool",
            ["Scheme", "Mean (ms)", "p95 (ms)", "kswapd CPU (s)",
             "Flash wr (MiB)"],
            rows,
        )
        z = self.cells["ZSWAP"].zswap
        counters = (
            f"zswap: {z['zswap_writeback_batches']} writeback batches "
            f"({z['zswap_pages_written_back']} pages, max batch "
            f"{z['zswap_batch_pages_max']}), readahead "
            f"{z['zswap_readahead_reads']} reads / "
            f"{z['zswap_readahead_hits']} hits / "
            f"{z['zswap_readahead_wasted']} wasted"
        )
        return f"{table}\n{counters}"


@register
class ZswapCompare(Experiment):
    """Scheme matrix with the ZSWAP writeback tier as a column."""

    id = "zswap_compare"
    title = "ZSWAP writeback tier vs the scheme matrix (tight zpool)"
    anchor = "roadmap-2"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        return list(SCHEMES)

    def run_cell(self, key: str, quick: bool = False) -> SchemeCell:
        """One scheme's scenario run; cells are fully independent."""
        self._require_cell(key, quick)
        duration = _QUICK_DURATION_S if quick else _DURATION_S
        system = build_tight(key)
        result = run_light_scenario(system, duration_s=duration)
        latencies = sorted(r.latency_ms for r in result.relaunches)
        count = len(latencies)
        return SchemeCell(
            scheme=key,
            relaunches=count,
            mean_latency_ms=sum(latencies) / count if count else 0.0,
            p95_latency_ms=(
                latencies[int(0.95 * (count - 1))] if count else 0.0
            ),
            kswapd_cpu_s=result.kswapd_cpu_ns / 1e9,
            flash_written_mib=result.flash_bytes_written / MIB,
            zswap=zswap_summary(result.counters),
        )

    def merge(
        self, cell_results: dict, quick: bool = False
    ) -> ZswapCompareResult:
        return ZswapCompareResult(cells=self._ordered(cell_results, quick))
