"""Table 3: probability of accessing 2 / 4 consecutive zpool pages
during relaunch swap-in.

Measured from a live ZRAM run: the sector-access log captures the order
relaunch faults touch zpool sectors; sectors were assigned in
compression (eviction) order, so adjacent sectors mean sequential runs —
the locality PreDecomp exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import RelaunchScenario
from ..trace.analyze import consecutive_probability
from ..workload import profile_by_name
from .common import FIGURE_APPS, build, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Table3Result(ExperimentResult):
    """Measured vs paper consecutive-access probabilities."""

    p2: dict[str, float]
    p4: dict[str, float]

    def render(self) -> str:
        rows = []
        for app in self.p2:
            profile = profile_by_name(app)
            rows.append(
                [
                    app,
                    f"{self.p2[app]:.2f}",
                    f"{profile.locality_p2:.2f}",
                    f"{self.p4[app]:.2f}",
                    f"{profile.locality_p4:.2f}",
                ]
            )
        return render_table(
            "Table 3: P(consecutive zpool accesses), measured vs paper",
            ["App", "P2 (meas)", "P2 (paper)", "P4 (meas)", "P4 (paper)"],
            rows,
        )


@register
class Table3(Experiment):
    """Sector-access locality during ZRAM relaunch swap-ins."""

    id = "table3"
    title = "P(consecutive zpool accesses) during relaunch"
    anchor = "Table 3"

    def compute(self, quick: bool = False) -> Table3Result:
        """Measure sector-access locality during ZRAM relaunch swap-ins."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        system = build("ZRAM", trace)
        system.launch_all()
        p2: dict[str, float] = {}
        p4: dict[str, float] = {}
        for target in apps:
            uid = trace.app(target).uid
            system.prepare_relaunch(target, RelaunchScenario.AL)
            mark = len(system.scheme.sector_access_log)
            # Table 3 characterizes the relaunch swap-in stream
            # specifically, so post-relaunch execution accesses are
            # excluded.
            system.relaunch(target, run_execution=False)
            sectors = [
                sector
                for log_uid, sector in system.scheme.sector_access_log[mark:]
                if log_uid == uid
            ]
            p2[target] = consecutive_probability(sectors, 2)
            p4[target] = consecutive_probability(sectors, 4)
        return Table3Result(p2=p2, p4=p4)
