"""Shared experiment plumbing: cached traces, platforms, protocols,
and text-table rendering."""

from __future__ import annotations

from functools import lru_cache

from ..compression.chunking import SizeCache
from ..core import AriadneConfig, PlatformConfig, RelaunchScenario, pixel7_platform
from ..core.config import PAPER_CONFIGS
from ..metrics import RelaunchResult
from ..sim import MobileSystem, make_system
from ..trace import TraceGenerator, WorkloadTrace
from ..workload import APP_CATALOG, TABLE1_APPS

#: Seed used by every experiment unless overridden.
DEFAULT_SEED = 2025

#: Compressed sizes depend only on (payload, codec, chunk size), so all
#: experiment systems can share one memo cache; this removes most real
#: compression work from repeated runs without changing any number.
_SHARED_SIZES = SizeCache(max_entries=262144)

#: The five apps the paper's figures plot.
FIGURE_APPS = list(TABLE1_APPS)


@lru_cache(maxsize=8)
def workload_trace(
    n_apps: int = 5, sessions: int = 4, seed: int = DEFAULT_SEED
) -> WorkloadTrace:
    """Cached workload trace over the first ``n_apps`` catalog apps."""
    generator = TraceGenerator(seed=seed)
    return generator.generate_workload(
        profiles=APP_CATALOG[:n_apps], n_sessions=sessions
    )


def experiment_platform(n_apps: int) -> PlatformConfig:
    """Platform whose DRAM pressure matches the paper's 10-app setup.

    The paper runs ten apps (~4.9 GB anonymous data) against ~2.5 GB of
    available DRAM — a ~1.9x oversubscription.  We keep that ratio for
    any app count so smaller (faster) experiments see the same pressure.
    """
    return pixel7_platform(dram_gb=0.26 * n_apps)


def build(
    scheme_name: str,
    trace: WorkloadTrace,
    config: AriadneConfig | None = None,
    codec_name: str = "lzo",
) -> MobileSystem:
    """System factory bound to the experiment platform."""
    system = make_system(
        scheme_name,
        trace,
        platform=experiment_platform(len(trace.apps)),
        codec_name=codec_name,
        ariadne_config=config,
    )
    system.ctx.sizes = _SHARED_SIZES
    return system


def scenario_build(
    scheme_name: str,
    trace: WorkloadTrace,
    config: AriadneConfig | None = None,
) -> MobileSystem:
    """System factory for the 60 s switching scenarios (Fig. 3, Table 2).

    The paper's phone is not absolutely overcommitted during switching
    (12 GB DRAM vs ~4.9 GB of anonymous data); swap activity comes from
    watermark-driven reclaim at the margin.  The scenario platform keeps
    ~8% of the workload beyond the anonymous budget, which yields the
    moderate, continuous churn the scenario measurements rely on.
    """
    total = sum(app.total_bytes() for app in trace.apps)
    base = experiment_platform(len(trace.apps))
    platform = PlatformConfig(
        dram_bytes=int(total * 0.92),
        zpool_bytes=base.zpool_bytes,
        swap_bytes=base.swap_bytes,
        scale=base.scale,
        parallelism=base.parallelism,
    )
    system = make_system(
        scheme_name, trace, platform=platform, ariadne_config=config
    )
    system.ctx.sizes = _SHARED_SIZES
    return system


def scenario_for(scheme_name: str, config: AriadneConfig | None):
    """The relaunch data placement each scheme is measured under.

    DRAM never compresses; ZRAM/SWAP start with everything swapped (the
    state-of-practice); Ariadne follows its config's EHL/AL scenario.
    """
    if scheme_name == "DRAM":
        return None
    if config is not None:
        return config.scenario
    return RelaunchScenario.AL


def measured_relaunch(
    system: MobileSystem,
    target: str,
    session_index: int,
    scenario,
    pressure_apps: list[str],
) -> RelaunchResult:
    """The paper's measurement protocol for one relaunch.

    Let other apps run first (the paper restores memory pressure by
    launching the other nine apps), then establish the scenario's data
    placement — Section 5 defines EHL/AL as the state *at relaunch time*
    ("data in the hot list is in main memory while other data is in
    either ZRAM or flash") — and measure the target's relaunch.
    """
    for other in pressure_apps:
        if other != target:
            system.relaunch(other)
    system.prepare_relaunch(target, scenario)
    return system.relaunch(target, session_index)


def paper_scheme_matrix(quick: bool) -> list[tuple[str, AriadneConfig | None]]:
    """The scheme column set of Figures 10/11: DRAM, ZRAM, Ariadne configs."""
    configs = PAPER_CONFIGS[:2] if quick else PAPER_CONFIGS
    matrix: list[tuple[str, AriadneConfig | None]] = [
        ("DRAM", None),
        ("ZRAM", None),
    ]
    matrix.extend(("Ariadne", config) for config in configs)
    return matrix


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
