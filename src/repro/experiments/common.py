"""Shared experiment plumbing: cached traces, platforms, protocols,
and text-table rendering.

Traces and compressed sizes persist across processes through
:mod:`repro.cache` (disable with ``REPRO_CACHE_DIR=off``): repeated
benchmark/CI runs skip trace generation and first-touch compression
entirely.  Both artifacts are deterministic, so persistence can never
change a measured number.
"""

from __future__ import annotations

import atexit
from functools import lru_cache

from ..cache import (
    ArtifactCache,
    ExperimentResultCache,
    PersistentSizeCache,
    default_cache_root,
)
from ..compression.chunking import SizeCache
from ..core import AriadneConfig, PlatformConfig, RelaunchScenario, pixel7_platform
from ..core.config import PAPER_CONFIGS
from ..metrics import RelaunchResult
from ..sim import MobileSystem, make_system
from ..trace import TraceGenerator, WorkloadTrace
from ..trace.generate import GENERATOR_VERSION
from ..workload import APP_CATALOG, TABLE1_APPS

#: Seed used by every experiment unless overridden.
DEFAULT_SEED = 2025

#: The five apps the paper's figures plot.
FIGURE_APPS = list(TABLE1_APPS)


@lru_cache(maxsize=1)
def artifact_cache() -> ArtifactCache | None:
    """Process-wide on-disk artifact cache (``None`` when disabled)."""
    root = default_cache_root()
    if root is None:
        return None
    try:
        return ArtifactCache(root)
    except OSError:
        return None  # unwritable cache location: run without persistence


@lru_cache(maxsize=1)
def result_cache() -> ExperimentResultCache | None:
    """Process-wide experiment-result memo (``None`` when disabled).

    Shares the artifact cache's root (and its ``REPRO_CACHE_DIR``
    disable switch): a cached result is just another deterministic
    artifact, keyed by the source-tree fingerprint so any code change
    invalidates it wholesale.
    """
    cache = artifact_cache()
    if cache is None:
        return None
    try:
        return ExperimentResultCache(cache.root)
    except OSError:
        return None


def _make_shared_sizes() -> SizeCache:
    cache = artifact_cache()
    if cache is None:
        return SizeCache(max_entries=262144)
    sizes = PersistentSizeCache(cache)
    atexit.register(sizes.flush)
    return sizes


#: Compressed sizes depend only on (payload, codec, chunk size), so all
#: experiment systems share one memo cache — disk-backed when the
#: artifact cache is enabled, so later runs skip first-touch compression.
_SHARED_SIZES = _make_shared_sizes()


def flush_artifacts() -> None:
    """Persist any newly measured sizes (no-op without a disk cache)."""
    flush = getattr(_SHARED_SIZES, "flush", None)
    if flush is not None:
        flush()


@lru_cache(maxsize=8)
def workload_trace(
    n_apps: int = 5, sessions: int = 4, seed: int = DEFAULT_SEED
) -> WorkloadTrace:
    """Cached workload trace over the first ``n_apps`` catalog apps.

    Hits the on-disk trace store when possible (a serialized trace loads
    in a fraction of generation time); falls back to deterministic
    generation and persists the result for the next process.
    """
    profiles = tuple(APP_CATALOG[:n_apps])
    cache = artifact_cache()
    key = None
    if cache is not None:
        key = ArtifactCache.trace_key(
            seed=seed,
            profiles=profiles,
            n_sessions=sessions,
            duration_s=300.0,
            generator_version=GENERATOR_VERSION,
        )
        cached = cache.load_workload(key)
        if cached is not None:
            return cached
    generator = TraceGenerator(seed=seed)
    trace = generator.generate_workload(profiles=profiles, n_sessions=sessions)
    if cache is not None and key is not None:
        try:
            cache.store_workload(key, trace)
        except OSError:
            pass  # persistence is best-effort; the trace itself is valid
    return trace


def experiment_platform(n_apps: int) -> PlatformConfig:
    """Platform whose DRAM pressure matches the paper's 10-app setup.

    The paper runs ten apps (~4.9 GB anonymous data) against ~2.5 GB of
    available DRAM — a ~1.9x oversubscription.  We keep that ratio for
    any app count so smaller (faster) experiments see the same pressure.
    """
    return pixel7_platform(dram_gb=0.26 * n_apps)


def build(
    scheme_name: str,
    trace: WorkloadTrace,
    config: AriadneConfig | None = None,
    codec_name: str = "lzo",
) -> MobileSystem:
    """System factory bound to the experiment platform."""
    system = make_system(
        scheme_name,
        trace,
        platform=experiment_platform(len(trace.apps)),
        codec_name=codec_name,
        ariadne_config=config,
    )
    system.ctx.sizes = _SHARED_SIZES
    return system


def scenario_build(
    scheme_name: str,
    trace: WorkloadTrace,
    config: AriadneConfig | None = None,
) -> MobileSystem:
    """System factory for the 60 s switching scenarios (Fig. 3, Table 2).

    The paper's phone is not absolutely overcommitted during switching
    (12 GB DRAM vs ~4.9 GB of anonymous data); swap activity comes from
    watermark-driven reclaim at the margin.  The scenario platform keeps
    ~8% of the workload beyond the anonymous budget, which yields the
    moderate, continuous churn the scenario measurements rely on.
    """
    total = sum(app.total_bytes() for app in trace.apps)
    base = experiment_platform(len(trace.apps))
    platform = PlatformConfig(
        dram_bytes=int(total * 0.92),
        zpool_bytes=base.zpool_bytes,
        swap_bytes=base.swap_bytes,
        scale=base.scale,
        parallelism=base.parallelism,
    )
    system = make_system(
        scheme_name, trace, platform=platform, ariadne_config=config
    )
    system.ctx.sizes = _SHARED_SIZES
    return system


def scenario_for(scheme_name: str, config: AriadneConfig | None):
    """The relaunch data placement each scheme is measured under.

    DRAM never compresses; ZRAM/SWAP start with everything swapped (the
    state-of-practice); Ariadne follows its config's EHL/AL scenario.
    """
    if scheme_name == "DRAM":
        return None
    if config is not None:
        return config.scenario
    return RelaunchScenario.AL


def measured_relaunch(
    system: MobileSystem,
    target: str,
    session_index: int,
    scenario,
    pressure_apps: list[str],
) -> RelaunchResult:
    """The paper's measurement protocol for one relaunch.

    Let other apps run first (the paper restores memory pressure by
    launching the other nine apps), then establish the scenario's data
    placement — Section 5 defines EHL/AL as the state *at relaunch time*
    ("data in the hot list is in main memory while other data is in
    either ZRAM or flash") — and measure the target's relaunch.
    """
    for other in pressure_apps:
        if other != target:
            system.relaunch(other)
    system.prepare_relaunch(target, scenario)
    return system.relaunch(target, session_index)


def paper_scheme_matrix(quick: bool) -> list[tuple[str, AriadneConfig | None]]:
    """The scheme column set of Figures 10/11: DRAM, ZRAM, Ariadne configs."""
    configs = PAPER_CONFIGS[:2] if quick else PAPER_CONFIGS
    matrix: list[tuple[str, AriadneConfig | None]] = [
        ("DRAM", None),
        ("ZRAM", None),
    ]
    matrix.extend(("Ariadne", config) for config in configs)
    return matrix


def scheme_matrix_cells(
    quick: bool,
) -> list[tuple[str, str, AriadneConfig | None]]:
    """The matrix as named (scheme x config) cells.

    Each entry is ``(cell_key, scheme_name, config)``.  The key is the
    rendered column label (``DRAM`` / ``ZRAM`` / the Ariadne config
    label), which is stable across processes and runs — sharded
    experiments use it to address one independently executable unit of
    work, and the runner uses it to key scheduling and result merging.
    """
    cells: list[tuple[str, str, AriadneConfig | None]] = []
    for scheme_name, config in paper_scheme_matrix(quick):
        key = config.label if config is not None else scheme_name
        cells.append((key, scheme_name, config))
    return cells


def scheme_matrix_cell(
    key: str, quick: bool
) -> tuple[str, AriadneConfig | None]:
    """Resolve one matrix cell key back to ``(scheme_name, config)``."""
    for cell_key, scheme_name, config in scheme_matrix_cells(quick):
        if cell_key == key:
            return scheme_name, config
    raise KeyError(f"unknown scheme-matrix cell {key!r}")


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
