"""Experiment harness: one module per table/figure in the paper.

Every experiment exposes ``run(quick: bool = False) -> <Result>`` where
the result dataclass carries structured rows plus ``render()`` producing
a paper-style text table.  ``quick=True`` shrinks the workload for CI;
benchmarks run the full versions.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig10
    python -m repro.experiments all
"""

from . import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    platform_info,
    table1,
    table2,
    table3,
)

EXPERIMENTS = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "table3": table3.run,
    "platform": platform_info.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
}

#: Experiments that expose the sharded-cell protocol: ``cells(quick)``
#: lists independently executable (scheme x config) units, ``run_cell``
#: executes one, and ``merge`` assembles the figure from cell outputs.
#: The parallel runner schedules these per cell so a single heavyweight
#: figure no longer dominates the suite's critical path.  Every
#: scheme-matrix experiment now shards: ``run()`` is, in each module,
#: defined as the serial merge of its cells, so the sharded path is
#: equivalent by construction (and the per-cell result cache can serve
#: any of them on re-runs).
SHARDED_EXPERIMENTS = {
    "fig2": fig2,
    "fig3": fig3,
    "table2": table2,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

#: Experiments whose output embeds *live* wall-clock measurements
#: (fig6 times the real codecs with ``perf_counter``).  Their results
#: are hardware-truthful only at measurement time, so the result cache
#: must never serve them — every other experiment is a deterministic
#: function of the source tree and its arguments.
UNCACHED_EXPERIMENTS = {"fig6"}

__all__ = ["EXPERIMENTS", "SHARDED_EXPERIMENTS", "UNCACHED_EXPERIMENTS"]
