"""Experiment harness: one module per table/figure in the paper.

Each module declares a :class:`repro.experiments.registry.Experiment`
subclass with ``@register``: a declarative spec (``id``, ``title``,
paper ``anchor``, ``sharded`` / ``cacheable`` flags) plus the behavior —
unsharded experiments implement ``compute(quick)``, sharded ones
implement ``cell_keys`` / ``run_cell`` / ``merge`` and get ``run()``
as the serial merge of their cells for free.  Importing this package
imports every module, so the registry is complete afterwards; there is
no side-table of names to keep in sync.

Every experiment returns a structured result that renders the
paper-style text table (``render()``) *and* serializes to stable JSON
(``to_json()``) — the machine-readable contract CI artifacts, the
result cache, and trend tooling consume.  ``quick=True`` shrinks the
workload for CI; benchmarks run the full versions.

Run from the command line::

    python -m repro.experiments list            # or: list --json
    python -m repro.experiments fig10
    python -m repro.experiments 'fig1*' table2  # name globs
    python -m repro.experiments all --quick --json --jobs 2
"""

from .registry import (
    CellSpec,
    Experiment,
    ExperimentResult,
    all_experiments,
    experiment,
    experiment_ids,
    register,
    run_cached,
    select,
)

# Importing the modules registers their specs; the import order below is
# the paper's presentation order and therefore the registry (and
# ``list``) order.
from . import (  # noqa: E402  (registration side effects)
    table1,
    fig2,
    fig3,
    table2,
    fig4,
    fig5,
    fig6,
    table3,
    platform_info,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    chaos,
    pressure,
    zswap_compare,
    zswap_sensitivity,
    fleet,
)

__all__ = [
    "CellSpec",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "experiment",
    "experiment_ids",
    "register",
    "run_cached",
    "select",
]
