"""Table 4: the evaluation platform, as encoded in simulator defaults."""

from __future__ import annotations

from dataclasses import dataclass

from ..units import fmt_bytes
from .common import experiment_platform, render_table
from .registry import Experiment, ExperimentResult, register


@dataclass
class PlatformResult(ExperimentResult):
    """Rendered platform constants."""

    rows: list[list[str]]

    def render(self) -> str:
        return render_table(
            "Table 4 (simulated): platform configuration",
            ["Parameter", "Value"],
            self.rows,
        )


@register
class PlatformInfo(Experiment):
    """The simulated platform constants (paper Table 4 analogue)."""

    id = "platform"
    title = "Simulated platform configuration"
    anchor = "Table 4"

    def compute(self, quick: bool = False) -> PlatformResult:
        """Dump the simulated platform constants (paper Table 4 analogue)."""
        platform = experiment_platform(n_apps=10)
        rows = [
            ["Device (modeled)", "Google Pixel 7, Android 14"],
            ["DRAM budget for background anon data",
             f"{fmt_bytes(platform.dram_bytes)} (sim) x{platform.scale} scale"],
            ["zpool capacity (S)", f"{fmt_bytes(platform.zpool_bytes)} (sim)"],
            ["Flash swap area", f"{fmt_bytes(platform.swap_bytes)} (sim)"],
            ["Critical-path parallelism", str(platform.parallelism)],
            ["Flash queue depth", str(platform.flash_queue_depth)],
            ["Fault path cost / real page", f"{platform.fault_overhead_ns} ns"],
            ["Low / high watermarks",
             f"{platform.low_watermark:.1%} / {platform.high_watermark:.1%}"],
        ]
        return PlatformResult(rows=rows)
