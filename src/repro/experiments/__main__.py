"""Command-line entry point: ``python -m repro.experiments <name>...``.

Selection accepts exact ids, shell-style name globs (quote them:
``'fig1*'``), and ``all``.  ``list`` prints the registry; ``--json``
switches either mode to the machine-readable contract: progress lines
move to stderr and stdout carries one JSON document whose content is
deterministic — byte-identical across ``--jobs`` counts and cache
states — so CI can upload it as a per-commit artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .registry import all_experiments, experiment, select
from .common import flush_artifacts
from .runner import default_jobs, run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="+",
        metavar="name",
        help="experiment ids and/or name globs (e.g. fig10 'fig1*' "
        "table2), 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a reduced workload (for smoke testing)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one deterministic JSON document on stdout (progress "
        "goes to stderr); with 'list', dump the registry specs",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run independent experiment cells on N worker processes "
        f"(default: 1 for a single experiment, up to {default_jobs()} "
        "for suites, overridable via REPRO_JOBS); sharded experiments "
        "split into per-scheme cells; workers share the on-disk "
        "artifact and result caches",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any single cell exceeding this budget "
        "(multi-worker runs only; default: no timeout)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=1,
        metavar="N",
        help="resubmissions for a crashed or timed-out cell before it "
        "becomes a structured failure (default: 1)",
    )
    args = parser.parse_args(argv)

    if "list" in args.names:
        if args.names[0] != "list":
            print("put 'list' first: list [pattern...]", file=sys.stderr)
            return 2
        specs = all_experiments()
        if args.names[1:]:  # optional filter: list 'fig1*'
            try:
                keep = set(select(args.names[1:]))
            except KeyError as exc:
                print(f"{exc.args[0]}; try plain 'list'", file=sys.stderr)
                return 2
            specs = [spec for spec in specs if spec.id in keep]
        if args.json:
            print(json.dumps(
                [spec.describe() for spec in specs], indent=2, sort_keys=True
            ))
        else:
            for spec in specs:
                shard = " [sharded]" if spec.sharded else ""
                print(f"{spec.id:<10} {spec.anchor:<10} {spec.title}{shard}")
        return 0

    try:
        names = select(args.names)
    except KeyError as exc:
        print(f"{exc.args[0]}; try 'list'", file=sys.stderr)
        return 2
    jobs = args.jobs
    if jobs is None:
        # Suites parallelize across experiments; a single sharded
        # experiment still parallelizes across its own cells.
        parallelizes = len(names) > 1 or experiment(names[0]).sharded
        jobs = default_jobs(names) if parallelizes else 1
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2

    progress = sys.stderr if args.json else sys.stdout

    def show(outcome) -> None:
        if outcome.ok:
            if not args.json:
                print(outcome.rendered)
            sharded = (
                f" across {outcome.cells} cells" if outcome.cells > 1 else ""
            )
            cached = (
                f", {outcome.cached_tasks} from result cache"
                if outcome.cached_tasks
                else ""
            )
            print(
                f"[{outcome.name} finished in {outcome.elapsed_s:.1f}s"
                f"{sharded}{cached}]" + ("" if args.json else "\n"),
                file=progress,
                flush=True,
            )
        else:
            print(f"[{outcome.name} FAILED: {outcome.error}]\n", file=sys.stderr)

    start = time.perf_counter()
    outcomes = run_experiments(
        names,
        jobs=jobs,
        quick=args.quick,
        on_result=show,
        task_timeout_s=args.task_timeout,
        task_retries=args.task_retries,
    )
    failures = sum(1 for outcome in outcomes if not outcome.ok)
    if len(names) > 1:
        total = time.perf_counter() - start
        print(
            f"[suite: {len(names)} experiments in {total:.1f}s on {jobs} jobs]",
            file=progress,
        )
    if args.json:
        # The top-level errors section aggregates every structured task
        # failure so CI can grep one place; per-experiment detail stays
        # in each experiment's own "errors" list.  Sorted, so the
        # document stays deterministic across job counts.
        errors = sorted(
            (failure.to_json() for outcome in outcomes
             for failure in outcome.failures),
            key=lambda f: (f["experiment"], f["cell"] or "", f["kind"]),
        )
        document = {
            "quick": args.quick,
            "errors": errors,
            "experiments": [outcome.to_json() for outcome in outcomes],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    flush_artifacts()
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
