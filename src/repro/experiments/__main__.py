"""Command-line entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "name",
        help="experiment id (e.g. fig10, table1), 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a reduced workload (for smoke testing)",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for key in EXPERIMENTS:
            print(key)
        return 0

    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](quick=args.quick)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
