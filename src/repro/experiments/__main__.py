"""Command-line entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, SHARDED_EXPERIMENTS
from .common import flush_artifacts
from .runner import default_jobs, run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "name",
        help="experiment id (e.g. fig10, table1), 'list', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a reduced workload (for smoke testing)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run independent experiment cells on N worker processes "
        f"(default: 1 for a single experiment, up to {default_jobs()} "
        "for 'all'); scheme-matrix experiments (fig2/fig3/table2/"
        "fig10-fig13) split into per-scheme cells; workers share the "
        "on-disk artifact and result caches",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for key in EXPERIMENTS:
            print(key)
        return 0

    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    jobs = args.jobs
    if jobs is None:
        # Suites parallelize across experiments; a single sharded
        # experiment still parallelizes across its own cells.
        parallelizes = len(names) > 1 or names[0] in SHARDED_EXPERIMENTS
        jobs = default_jobs() if parallelizes else 1
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2

    def show(outcome) -> None:
        if outcome.ok:
            print(outcome.rendered)
            sharded = (
                f" across {outcome.cells} cells" if outcome.cells > 1 else ""
            )
            cached = (
                f", {outcome.cached_tasks} from result cache"
                if outcome.cached_tasks
                else ""
            )
            print(
                f"[{outcome.name} finished in {outcome.elapsed_s:.1f}s"
                f"{sharded}{cached}]\n",
                flush=True,
            )
        else:
            print(f"[{outcome.name} FAILED: {outcome.error}]\n", file=sys.stderr)

    start = time.perf_counter()
    outcomes = run_experiments(names, jobs=jobs, quick=args.quick, on_result=show)
    failures = sum(1 for outcome in outcomes if not outcome.ok)
    if len(names) > 1:
        total = time.perf_counter() - start
        print(f"[suite: {len(names)} experiments in {total:.1f}s on {jobs} jobs]")
    flush_artifacts()
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
