"""Pressure sweep: the memory-pressure lifecycle under shrinking DRAM.

Not a paper figure — a robustness experiment for the reproduction
itself: it sweeps RAM headroom (DRAM as a fraction of the workload's
anonymous footprint) against the low-memory policy (:mod:`repro.lmk`)
and reports how each scheme degrades: kill counts, the relaunch-latency
distribution (cold relaunches pay ``process_create_ns``), and the
pressure ledger that proves every kill, drop, and admission refusal
traces back to a recorded decision.

Three policies per headroom:

- ``lmk`` — kill as soon as the PSI signal crosses ``full_threshold``
  (classic Android lowmemorykiller);
- ``swap`` — never kill; escalate kswapd and fall back to counted
  chunk drops on hard exhaustion (compressed-swap-only);
- ``hybrid`` — SWAM-style: escalate swap first, kill only once reclaim
  boost is saturated and pressure still exceeds ``full_threshold``.

The ``off`` cell is the experiment's own bit-identity witness: each
scheme runs the standard scenario twice — once with no plan installed,
once with an inert plan (thresholds pinned to 1.0, boost capped at 1)
— and asserts the relaunch latencies and counters are identical, i.e.
the pressure machinery costs nothing when it never fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import PlatformConfig, PressureConfig
from ..lmk import PressurePlan, install_pressure
from ..sim.scenario import run_light_scenario
from .common import (
    experiment_platform,
    render_table,
    workload_trace,
)
from .registry import Experiment, ExperimentResult, register

#: DRAM budget as a fraction of the workload's anonymous footprint.
#: The standard scenario platform sits at 0.92; the sweep tightens it.
FULL_HEADROOMS = (0.85, 0.70, 0.55)
QUICK_HEADROOMS = (0.55,)

#: Low-memory policies swept at each headroom.
POLICIES = ("lmk", "swap", "hybrid")

#: Schemes each cell runs (the DRAM baseline tracks no free-memory
#: budget, so a pressure plan cannot install on it).
SCHEMES = ("Ariadne", "SWAP", "ZRAM", "ZSWAP")

#: Scenario length (simulated seconds of app switching) per system.
_DURATION_S = 25.0
_QUICK_DURATION_S = 10.0

#: The sweep's pressure thresholds.  More trigger-happy than the
#: :class:`~repro.core.config.PressureConfig` defaults so the tightest
#: headroom demonstrably kills under ``lmk``/``hybrid`` within the
#: scenario length (CI asserts exactly that).
_SOME_THRESHOLD = 0.02
_FULL_THRESHOLD = 0.10
_BOOST_MAX = 3

#: The inert plan for the ``off`` cell: thresholds no PSI sample can
#: exceed and a boost cap of 1, so no hook ever changes behavior.
_INERT = PressureConfig(
    policy="hybrid",
    some_threshold=1.0,
    full_threshold=1.0,
    kswapd_boost_max=1,
)


def _headroom_key(headroom: float) -> str:
    return f"h{round(headroom * 100)}"


def _sweep_keys(quick: bool) -> list[str]:
    headrooms = QUICK_HEADROOMS if quick else FULL_HEADROOMS
    return [
        f"{_headroom_key(h)}-{policy}" for h in headrooms
        for policy in POLICIES
    ]


def _pressure_platform(headroom: float) -> PlatformConfig:
    trace = workload_trace(n_apps=5)
    total = sum(app.total_bytes() for app in trace.apps)
    base = experiment_platform(len(trace.apps))
    return PlatformConfig(
        dram_bytes=int(total * headroom),
        zpool_bytes=base.zpool_bytes,
        swap_bytes=base.swap_bytes,
        scale=base.scale,
        parallelism=base.parallelism,
    )


def _build(scheme_name: str, platform: PlatformConfig):
    # Local import: sim imports core which is experiment-free, but
    # keeping the experiment layer's system construction in one place
    # (common._SHARED_SIZES) matters for cache behavior.
    from ..sim import make_system
    from .common import _SHARED_SIZES

    system = make_system(scheme_name, workload_trace(n_apps=5),
                         platform=platform)
    system.ctx.sizes = _SHARED_SIZES
    return system


def _run_one(
    scheme_name: str,
    platform: PlatformConfig,
    config: PressureConfig | None,
    duration_s: float,
):
    """One scheme under one (platform, pressure-config); returns the
    scenario result and the installed plan (``None`` when no config)."""
    system = _build(scheme_name, platform)
    plan = None
    if config is not None:
        plan = PressurePlan(config)
        install_pressure(system, plan)
    result = run_light_scenario(system, duration_s=duration_s)
    return system, result, plan


@dataclass
class PressureCell:
    """One (headroom, policy) point's measured outcome (picklable)."""

    headroom: float
    policy: str
    kills: dict[str, int]                 # scheme -> lmk kills
    cold_relaunches: dict[str, int]       # scheme -> cold (post-kill)
    relaunches: dict[str, int]            # scheme -> count
    mean_latency_ms: dict[str, float]     # scheme -> mean
    p95_latency_ms: dict[str, float]      # scheme -> p95
    ledger: dict[str, int]                # summed across schemes
    ledger_consistent: bool               # every scheme's ledger held

    @property
    def kills_total(self) -> int:
        return sum(self.kills.values())


@dataclass
class OffCell:
    """The pressure-off identity check's outcome (picklable)."""

    relaunches: dict[str, int]            # scheme -> count
    mean_latency_ms: dict[str, float]     # scheme -> mean
    bit_identical: bool                   # inert plan == no plan


@dataclass
class PressureResult(ExperimentResult):
    """Degradation and kill accounting per (headroom, policy) point."""

    off: OffCell
    cells: list[PressureCell]

    @property
    def all_consistent(self) -> bool:
        """Every cell's pressure ledger balanced."""
        return all(cell.ledger_consistent for cell in self.cells)

    def render(self) -> str:
        rows = [[
            "off", "-",
            *[f"{self.off.mean_latency_ms.get(s, 0.0):.1f}" for s in SCHEMES],
            "0", "0", "0",
            "identical" if self.off.bit_identical else "DRIFTED",
        ]]
        for cell in self.cells:
            rows.append([
                f"{cell.headroom:g}",
                cell.policy,
                *[f"{cell.mean_latency_ms.get(s, 0.0):.1f}" for s in SCHEMES],
                str(cell.kills_total),
                str(cell.ledger.get("pressure_overflow_drops", 0)),
                str(cell.ledger.get("pressure_admission_refusals", 0)),
                "yes" if cell.ledger_consistent else "NO",
            ])
        table = render_table(
            "Pressure sweep: relaunch latency (mean ms) vs RAM headroom",
            ["Headroom", "Policy", *SCHEMES, "Kills", "Drops", "Refused",
             "Ledger"],
            rows,
        )
        verdict = (
            "every kill, drop, and refusal traces to a recorded decision"
            if self.all_consistent and self.off.bit_identical
            else "LEDGER INCONSISTENT or pressure-off run drifted"
        )
        return f"{table}\n{verdict}"


@register
class Pressure(Experiment):
    """Headroom x policy sweep with kill-ledger verification."""

    id = "pressure"
    title = "Memory-pressure sweep (LMK / swap-only / hybrid)"
    anchor = "robustness"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        return ["off", *_sweep_keys(quick)]

    def run_cell(self, key: str, quick: bool = False):
        """Run one cell: the off-identity check or one sweep point.

        Cells are independent by construction — each builds its own
        systems and its own :class:`PressurePlan` per scheme, and the
        plan is deterministic (no RNG), so the sweep is identical
        across job counts and completion orders.
        """
        self._require_cell(key, quick)
        duration = _QUICK_DURATION_S if quick else _DURATION_S
        if key == "off":
            return self._run_off(duration)
        head_key, policy = key.split("-", 1)
        headrooms = QUICK_HEADROOMS if quick else FULL_HEADROOMS
        headroom = next(
            h for h in headrooms if _headroom_key(h) == head_key
        )
        return self._run_sweep_point(headroom, policy, duration)

    def _run_off(self, duration: float) -> OffCell:
        """Pressure-off identity: an inert plan changes nothing."""
        platform = _pressure_platform(0.92)
        relaunches: dict[str, int] = {}
        mean_ms: dict[str, float] = {}
        identical = True
        for scheme in SCHEMES:
            _, bare_result, _ = _run_one(scheme, platform, None, duration)
            inert_sys, inert_result, _ = _run_one(
                scheme, platform, _INERT, duration
            )
            bare = [r.latency_ns for r in bare_result.relaunches]
            inert = [r.latency_ns for r in inert_result.relaunches]
            identical = identical and bare == inert
            count = len(bare)
            relaunches[scheme] = count
            mean_ms[scheme] = (
                sum(bare) / count / 1e6 if count else 0.0
            )
            # The inert plan may sample PSI (pure observation); every
            # *behavioral* counter must agree with the bare run.
            for name in ("lmk_kills", "pressure_boost_evictions",
                         "pressure_overflow_drops",
                         "pressure_admission_refusals"):
                identical = identical and (
                    inert_sys.ctx.counters.get(name) == 0
                )
        return OffCell(
            relaunches=relaunches,
            mean_latency_ms=mean_ms,
            bit_identical=identical,
        )

    def _run_sweep_point(
        self, headroom: float, policy: str, duration: float
    ) -> PressureCell:
        platform = _pressure_platform(headroom)
        config = PressureConfig(
            policy=policy,
            some_threshold=_SOME_THRESHOLD,
            full_threshold=_FULL_THRESHOLD,
            kswapd_boost_max=_BOOST_MAX,
        )
        kills: dict[str, int] = {}
        cold: dict[str, int] = {}
        relaunches: dict[str, int] = {}
        mean_ms: dict[str, float] = {}
        p95_ms: dict[str, float] = {}
        ledger: dict[str, int] = {}
        consistent = True
        for scheme in SCHEMES:
            system, result, plan = _run_one(
                scheme, platform, config, duration
            )
            cell_ledger = plan.ledger(system.ctx.counters)
            consistent = consistent and bool(cell_ledger.pop("consistent"))
            for name, value in cell_ledger.items():
                ledger[name] = ledger.get(name, 0) + value
            kills[scheme] = system.ctx.counters.get("lmk_kills")
            cold[scheme] = system.ctx.counters.get("lmk_cold_relaunches")
            latencies = sorted(r.latency_ms for r in result.relaunches)
            count = len(latencies)
            relaunches[scheme] = count
            mean_ms[scheme] = sum(latencies) / count if count else 0.0
            p95_ms[scheme] = (
                latencies[int(0.95 * (count - 1))] if count else 0.0
            )
        return PressureCell(
            headroom=headroom,
            policy=policy,
            kills=kills,
            cold_relaunches=cold,
            relaunches=relaunches,
            mean_latency_ms=mean_ms,
            p95_latency_ms=p95_ms,
            ledger=ledger,
            ledger_consistent=consistent,
        )

    def merge(
        self, cell_results: dict, quick: bool = False
    ) -> PressureResult:
        ordered = self._ordered(cell_results, quick)
        off = ordered.pop("off")
        return PressureResult(off=off, cells=list(ordered.values()))
