"""Parallel experiment runner: the paper suite across a process pool.

Every experiment regenerates one independent figure/table — no state is
shared between them beyond the deterministic artifact cache — so the
full suite parallelizes embarrassingly.  Workers recompute nothing that
another run already measured: they share the on-disk artifact cache
(:mod:`repro.cache`), flushing newly measured compressed sizes after
every experiment so concurrent and later workers reuse them.

Used by ``python -m repro.experiments all --jobs N`` and importable
directly::

    from repro.experiments.runner import run_experiments
    outcomes = run_experiments(["fig2", "fig13"], jobs=4, quick=True)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass


@dataclass
class ExperimentOutcome:
    """One experiment's rendered result and timing."""

    name: str
    rendered: str
    elapsed_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: one per usable core.

    Uses the scheduler affinity mask (the cgroup/container allowance)
    rather than the host core count, and caps at 8 — the suite has ~15
    cells, so more workers than that only burns memory (each worker
    materializes its own traces and systems).
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        usable = os.cpu_count() or 1
    return max(1, min(usable, 8))


def _run_one(args: tuple[str, bool]) -> ExperimentOutcome:
    """Worker body: run one experiment and flush shared artifacts."""
    name, quick = args
    # Imported here so "spawn" contexts work and the parent can fork
    # before the (heavier) experiment modules are loaded.
    from . import EXPERIMENTS
    from .common import flush_artifacts

    start = time.perf_counter()
    try:
        result = EXPERIMENTS[name](quick=quick)
        rendered = result.render()
        error = None
    except Exception as exc:  # surface per-cell failures without killing the run
        rendered = ""
        error = f"{type(exc).__name__}: {exc}"
    flush_artifacts()
    return ExperimentOutcome(
        name=name,
        rendered=rendered,
        elapsed_s=time.perf_counter() - start,
        error=error,
    )


def run_experiments(
    names: list[str],
    jobs: int | None = None,
    quick: bool = False,
    on_result=None,
) -> list[ExperimentOutcome]:
    """Run ``names`` on up to ``jobs`` worker processes; ordered results.

    Results stream in submission order as they complete —
    ``on_result(outcome)`` fires per finished cell (the CLI prints each
    figure the moment it is ready, minutes before the suite ends).
    With ``jobs <= 1`` everything runs in-process (no pool overhead).
    Workers share the on-disk artifact cache, so a size measured by one
    cell is never re-measured by another — across this run or the next.
    """
    from . import EXPERIMENTS

    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {unknown}")
    workers = jobs if jobs is not None else default_jobs()
    workers = max(1, min(workers, len(names)))
    tasks = [(name, quick) for name in names]
    outcomes: list[ExperimentOutcome] = []
    if workers == 1:
        for task in tasks:
            outcome = _run_one(task)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes
    # fork keeps warm parent state (imported modules); experiments
    # re-derive everything else from their own contexts.
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(processes=workers) as pool:
        for outcome in pool.imap(_run_one, tasks):
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
    return outcomes
