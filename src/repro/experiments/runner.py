"""Parallel experiment runner: the paper suite across a process pool.

Every experiment regenerates one independent figure/table — no state is
shared between them beyond the deterministic artifact cache — so the
full suite parallelizes embarrassingly.  Scheduling is generic over the
registry (:mod:`repro.experiments.registry`): specs flagged ``sharded``
are expanded into their typed :class:`~repro.experiments.registry.CellSpec`
units and scheduled at (scheme x config) **cell** granularity, so no
single experiment dominates the suite's critical path on a multi-core
host.  Workers recompute nothing that another run already measured:
they share the on-disk artifact cache (:mod:`repro.cache`), flushing
newly measured compressed sizes after every task so concurrent and
later workers reuse them — and every finished task (cell or whole
experiment) is memoized in the
:class:`repro.cache.ExperimentResultCache` keyed by a source-tree
fingerprint, so an unchanged task on a re-run is a single disk read
instead of a simulation.  Specs flagged ``cacheable = False`` (live
wall-clock measurements) always re-measure.

Used by ``python -m repro.experiments all --jobs N`` and importable
directly::

    from repro.experiments.runner import run_experiments
    outcomes = run_experiments(["fig10", "fig13"], jobs=4, quick=True)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass

from .registry import CellSpec, ExperimentResult, experiment, to_jsonable


@dataclass
class ExperimentOutcome:
    """One experiment's structured result, rendered text, and timing.

    ``result`` is the experiment's structured result object (``None``
    on failure) — render it with ``rendered`` or serialize it with
    :meth:`to_json`.  ``elapsed_s`` is the experiment's critical-path
    time: the single task for unsharded experiments, the slowest cell
    for sharded ones (cells run concurrently, so their sum is not wall
    time).  ``cached_tasks`` counts tasks served from the persistent
    result cache instead of being re-measured.
    """

    name: str
    rendered: str
    elapsed_s: float
    error: str | None = None
    cells: int = 1
    cached_tasks: int = 0
    result: ExperimentResult | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        """Deterministic JSON-ready view of this outcome.

        Carries the spec's identity and the structured result but *no*
        timing or cache telemetry, so the serialized document is
        byte-identical across job counts and cache states (the
        machine-readable contract CI artifacts rely on).
        """
        spec = experiment(self.name)
        return {
            "id": spec.id,
            "title": spec.title,
            "anchor": spec.anchor,
            "ok": self.ok,
            "error": self.error,
            "result": to_jsonable(self.result) if self.result is not None else None,
            "rendered": self.rendered if self.ok else None,
        }


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: one per usable core.

    Uses the scheduler affinity mask (the cgroup/container allowance)
    rather than the host core count, and caps at 8 — the suite has ~20
    schedulable tasks once the scheme-matrix experiments shard into
    cells, so more workers than that only burns memory (each worker
    materializes its own traces and systems).
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        usable = os.cpu_count() or 1
    return max(1, min(usable, 8))


def _run_task(args: tuple[int, str, str | None, bool]):
    """Worker body: run one whole experiment or one sharded cell.

    Returns ``(group_id, cell_key, payload, elapsed_s, error, cached)``
    where ``payload`` is the structured result object for a whole
    experiment or the picklable cell payload for a sharded cell, and
    ``cached`` is whether it came from the persistent result cache
    instead of a fresh measurement.  Results are memoized per (code
    fingerprint, experiment, cell, args): on an unchanged tree a task
    is one disk read, and any source edit misses wholesale.
    """
    group_id, name, cell_key, quick = args
    # Imported here so "spawn" contexts work and the parent can fork
    # before the (heavier) experiment modules are loaded.
    from .common import flush_artifacts, result_cache

    spec = experiment(name)
    start = time.perf_counter()
    # Live-timing experiments are hardware-truthful only when freshly
    # measured; serving them from disk would present another machine's
    # (or another day's) wall clock as a measurement.
    results = result_cache() if spec.cacheable else None
    run_args = {"quick": quick}
    payload: object = None
    cached = False
    error = None
    try:
        if results is not None:
            hit = results.load(name, cell_key, run_args)
            if hit is not None:
                payload = hit
                cached = True
        if not cached:
            if cell_key is None:
                payload = spec.run(quick=quick)
            else:
                payload = spec.run_cell(cell_key, quick=quick)
            if results is not None:
                results.store(name, cell_key, run_args, payload)
    except Exception as exc:  # surface per-task failures without killing the run
        error = f"{type(exc).__name__}: {exc}"
    flush_artifacts()
    return (
        group_id, cell_key, payload, time.perf_counter() - start, error, cached,
    )


class _Group:
    """Parent-side bookkeeping for one requested experiment."""

    def __init__(self, name: str, cells: list[CellSpec] | None) -> None:
        self.name = name
        self.cells = cells
        self.partials: dict[str | None, object] = {}
        self.elapsed_s = 0.0
        self.error: str | None = None
        self.cached_tasks = 0
        self.pending = 1 if cells is None else len(cells)

    def consume(
        self, cell_key: str | None, payload, elapsed_s, error, cached
    ) -> bool:
        """Fold in one finished task; True when the group is complete."""
        self.elapsed_s = max(self.elapsed_s, elapsed_s)
        if error is not None and self.error is None:
            self.error = error
        if cached:
            self.cached_tasks += 1
        self.partials[cell_key] = payload
        self.pending -= 1
        return self.pending == 0

    def outcome(self, quick: bool) -> ExperimentOutcome:
        """Render the finished group (merging cells for sharded runs)."""
        result: ExperimentResult | None = None
        if self.error is None:
            try:
                if self.cells is None:
                    result = self.partials.get(None)  # type: ignore[assignment]
                else:
                    result = experiment(self.name).merge(
                        {
                            cell.key: self.partials[cell.key]
                            for cell in self.cells
                        },
                        quick=quick,
                    )
            except Exception as exc:  # pragma: no cover - merge is pure
                self.error = f"{type(exc).__name__}: {exc}"
        return ExperimentOutcome(
            name=self.name,
            rendered=result.render() if result is not None else "",
            elapsed_s=self.elapsed_s,
            error=self.error,
            cells=1 if self.cells is None else len(self.cells),
            cached_tasks=self.cached_tasks,
            result=result,
        )


def run_experiments(
    names: list[str],
    jobs: int | None = None,
    quick: bool = False,
    on_result=None,
) -> list[ExperimentOutcome]:
    """Run ``names`` on up to ``jobs`` worker processes; ordered results.

    Sharded experiments are expanded into per-cell tasks whenever more
    than one worker is available — including a *single* requested
    experiment, so ``run_experiments(["fig10"], jobs=4)`` parallelizes
    internally.  ``on_result(outcome)`` fires per finished experiment
    the moment its last task (cell) completes; the returned list is in
    request order regardless of completion order.  With one worker
    everything runs in-process, unsharded (no pool overhead).  Workers
    share the on-disk artifact cache, so a size measured by one cell is
    never re-measured by another — across this run or the next.
    """
    specs = [experiment(name) for name in names]  # raises on unknown ids
    workers = jobs if jobs is not None else default_jobs()
    tasks: list[tuple[int, str, str | None, bool]] = []
    groups: list[_Group] = []
    for group_id, spec in enumerate(specs):
        cells = spec.cells(quick) if spec.sharded and workers > 1 else []
        if cells:
            groups.append(_Group(spec.id, cells))
            tasks.extend(
                (group_id, spec.id, cell.key, quick) for cell in cells
            )
        else:
            # Unsharded — including the degenerate empty-cells case,
            # which would otherwise create a group no task ever
            # completes.
            groups.append(_Group(spec.id, None))
            tasks.append((group_id, spec.id, None, quick))
    workers = max(1, min(workers, len(tasks)))

    outcomes: dict[int, ExperimentOutcome] = {}

    def consume(result) -> None:
        group_id, cell_key, payload, elapsed_s, error, cached = result
        group = groups[group_id]
        if group.consume(cell_key, payload, elapsed_s, error, cached):
            outcome = group.outcome(quick)
            outcomes[group_id] = outcome
            if on_result is not None:
                on_result(outcome)

    if workers == 1:
        for task in tasks:
            consume(_run_task(task))
    else:
        # fork keeps warm parent state (imported modules); experiments
        # re-derive everything else from their own contexts.
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        with ctx.Pool(processes=workers) as pool:
            for result in pool.imap_unordered(_run_task, tasks):
                consume(result)
    return [outcomes[group_id] for group_id in range(len(names))]
